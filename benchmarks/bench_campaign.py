"""Experiment-campaign benchmark: scenario grid x backend grid x policy sets.

Replays a grid of arrival-process scenarios (homogeneous Poisson, diurnal
curve, bursty MMPP, flash crowd) through every serving substrate (FSD on the
simulated serverless cloud, the job-scoped server baseline, the managed
endpoint, H-SpFF) with and without scheduling policies, using
:class:`repro.experiments.Campaign`, and appends one fingerprinted record per
invocation to ``BENCH_campaign.json`` at the repo root:

* the *wall-clock* seconds to replay the whole grid (cells run concurrently;
  this is the number perf PRs push down), and
* the per-cell *simulated* summaries and content fingerprints plus the
  cross-cell pivots (cost/query, p95 latency, cold-start fraction by
  scenario x backend), all of which depend only on the scenario seeds and
  the cost model and must stay bit-for-bit identical across PRs unless the
  simulated semantics intentionally change.

Shared-timeline invariant check: the Poisson-scenario FSD cell with policies
off replays the *identical* trace through the *identical* backend as
``bench_serving.py``'s full run, so its summary must reproduce the
``pr3-event-loop`` fingerprint recorded in ``BENCH_serving.json`` exactly.
The full (non ``--quick``) run asserts this on every invocation.

``--paper-scale`` runs the grid with the paper's real per-core compute
throughputs (the ``FSD_BENCH_FULL=1`` calibration the serving benchmark's
paper-scale mode uses) instead of the scaled-down stand-ins.  Simulated
latencies and costs legitimately differ from the scaled records, so the
record is tagged ``paper_scale`` and the scaled-mode reference-fingerprint
assertion is skipped -- paper-scale fingerprints form their own trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_campaign.py [--quick] [--label NAME]
        [--serial] [--paper-scale]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

_HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(_HERE))
sys.path.insert(0, str(_HERE.parent / "src"))

from common import (  # noqa: E402
    SERVING_SEED,
    SERVING_WORKERS,
    append_record,
    git_rev,
    scaled_cloud,
    scaled_latency,
    serving_batch_builder,
    serving_bench_workloads,
    serving_fsd_backend,
    serving_grid,
)

from repro import (  # noqa: E402
    BatchCoalescingPolicy,
    BurstyProcess,
    Campaign,
    DiurnalProcess,
    EndpointServingBackend,
    FlashCrowdProcess,
    HPCServingBackend,
    PoissonProcess,
    QueryWorkloadFactory,
    QueueDepthAutoscaler,
    Scenario,
    ServerMode,
    ServerServingBackend,
)

RESULT_PATH = _HERE.parent / "BENCH_campaign.json"
SERVING_RESULT_PATH = _HERE.parent / "BENCH_serving.json"
#: the policy-free serving fingerprint the Poisson/FSD cell must reproduce.
SERVING_REFERENCE_LABEL = "pr3-event-loop"


def _scenarios(quick: bool) -> list:
    # The grid (and the Poisson scenario's seed) is bench_serving's trace,
    # shared via common.py: that is what makes the fingerprint-identity
    # assertion meaningful.
    neurons, batch, num_queries = serving_grid(quick)
    shared = dict(
        daily_samples=num_queries * batch, batch_size=batch, neuron_counts=neurons
    )
    scenarios = [
        Scenario("poisson", PoissonProcess(), seed=SERVING_SEED, **shared),
        Scenario(
            "bursty",
            BurstyProcess(burst_factor=12.0, mean_quiet_seconds=7200.0, mean_burst_seconds=1200.0),
            seed=37,
            **shared,
        ),
    ]
    if not quick:
        scenarios.extend(
            [
                Scenario("diurnal", DiurnalProcess(night_level=0.05), seed=31, **shared),
                Scenario(
                    "flash-crowd",
                    FlashCrowdProcess(
                        spike_start_fraction=0.55, spike_duration_fraction=0.02, spike_factor=25.0
                    ),
                    seed=41,
                    **shared,
                ),
            ]
        )
    return scenarios


def _backend_factories(quick: bool) -> dict:
    workloads = serving_bench_workloads(quick)
    # Pre-build the shared partition plans so concurrently running cells only
    # ever read the plan cache.
    for workload in workloads.values():
        workload.plan_for(SERVING_WORKERS)

    def factory() -> QueryWorkloadFactory:
        return QueryWorkloadFactory(
            model_builder=lambda n: workloads[n].model,
            batch_builder=serving_batch_builder(workloads),
        )

    factories = {
        # Identical substrate to bench_serving (shared via common.py): the
        # Poisson cell's summary must reproduce that bench's fingerprint.
        # detlint: allow[DET006] thread-executor bench; process campaigns use the Spec factories
        "fsd": lambda: serving_fsd_backend(workloads),
        # detlint: allow[DET006] thread-executor bench; process campaigns use the Spec factories
        "server-job": lambda: ServerServingBackend(
            scaled_cloud(), ServerMode.JOB_SCOPED, factory()
        ),
    }
    if not quick:
        # detlint: allow[DET006] thread-executor bench; process campaigns use the Spec factories
        factories["endpoint"] = lambda: EndpointServingBackend(scaled_cloud(), factory())
        # detlint: allow[DET006] thread-executor bench; process campaigns use the Spec factories
        factories["hpc-4"] = lambda: HPCServingBackend(4, factory(), latency=scaled_latency())
    return factories


def _policy_sets(quick: bool) -> dict:
    sets = {"none": tuple}
    if not quick:
        # Exercises the SLO-capped coalescing window and the hysteretic
        # autoscaler across the whole grid (policy-tagged fingerprints).
        # detlint: allow[DET006] thread-executor bench; process campaigns use PolicySetSpec
        sets["slo-coalesce"] = lambda: (
            BatchCoalescingPolicy(window_seconds=1800.0, max_hold_seconds=900.0),
            QueueDepthAutoscaler(
                min_limit=1, max_limit=4, queries_per_slot=2, scale_down_lag_ticks=2
            ),
        )
    return sets


def _check_serving_reference(report) -> None:
    """The Poisson/FSD/no-policy cell must equal BENCH_serving's fingerprint."""
    if not SERVING_RESULT_PATH.exists():
        print(f"  (no {SERVING_RESULT_PATH.name}; skipping reference fingerprint check)")
        return
    history = json.loads(SERVING_RESULT_PATH.read_text())
    references = [
        record
        for record in history.get("records", [])
        if record.get("label") == SERVING_REFERENCE_LABEL and not record.get("quick")
    ]
    if not references:
        print(f"  (no '{SERVING_REFERENCE_LABEL}' record; skipping reference fingerprint check)")
        return
    reference = references[-1]["replay"]["simulated"]
    cell = report.cell("poisson", "fsd", "none")
    if cell.summary != reference:
        diff = {
            key: (cell.summary.get(key), reference.get(key))
            for key in set(cell.summary) | set(reference)
            if cell.summary.get(key) != reference.get(key)
        }
        raise RuntimeError(
            "shared-timeline invariant violated: the campaign's poisson/fsd/none "
            f"cell no longer reproduces the '{SERVING_REFERENCE_LABEL}' serving "
            f"fingerprint; differing keys: {diff}"
        )
    print(
        f"  poisson/fsd/none reproduces the '{SERVING_REFERENCE_LABEL}' serving "
        "fingerprint exactly (shared-timeline invariant holds)"
    )


def run(
    quick: bool = False,
    label: str | None = None,
    serial: bool = False,
    paper_scale: bool = False,
) -> dict:
    if paper_scale and quick:
        raise ValueError("--paper-scale and --quick are mutually exclusive")
    saved_full = os.environ.get("FSD_BENCH_FULL")
    if paper_scale:
        # The workload grid is shared with bench_serving; paper scale swaps in
        # the real (unscaled) compute throughputs, exactly like running the
        # serving benchmark under FSD_BENCH_FULL=1.  The previous value is
        # restored below so later run() calls in the same process are not
        # silently promoted to paper scale.
        os.environ["FSD_BENCH_FULL"] = "1"
    try:
        scenarios = _scenarios(quick)
        backends = _backend_factories(quick)
        policy_sets = _policy_sets(quick)
        campaign = Campaign(scenarios, backends, policy_sets=policy_sets)

        start = time.perf_counter()
        report = campaign.run(max_workers=1 if serial else None)
        wall_seconds = time.perf_counter() - start
    finally:
        if paper_scale:
            if saved_full is None:
                os.environ.pop("FSD_BENCH_FULL", None)
            else:
                os.environ["FSD_BENCH_FULL"] = saved_full

    record = {
        "label": label or git_rev(),
        "git_rev": git_rev(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "quick": quick,
        "paper_scale": paper_scale,
        "grid": {
            "scenarios": [scenario.describe() for scenario in scenarios],
            "backends": sorted(backends),
            "policy_sets": sorted(policy_sets),
        },
        "wall_seconds": wall_seconds,
        "campaign": report.to_dict(),
    }

    # The reference fingerprint was recorded with the scaled compute
    # calibration; paper-scale latencies legitimately differ.  A failed check
    # aborts before the history file is touched.
    append_record(
        RESULT_PATH,
        record,
        reference_check=(
            None if quick or paper_scale else lambda: _check_serving_reference(report)
        ),
    )

    print(f"campaign benchmark -- label={record['label']} rev={record['git_rev']}")
    print(
        f"  {len(report.cells)} cells ({len(scenarios)} scenarios x "
        f"{len(backends)} backends x {len(policy_sets)} policy sets) "
        f"replayed in {wall_seconds:.3f}s wall-clock"
    )
    for policy_set in report.policy_sets:
        print()
        print(report.render_markdown("cost_per_query", policy_set))
        print()
        print(report.render_markdown("p95_latency_seconds", policy_set))
    return record


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="tiny 2x2 grid (CI smoke)")
    parser.add_argument("--label", default=None, help="trajectory label for this record")
    parser.add_argument(
        "--serial", action="store_true", help="replay cells serially (profiling)"
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's real compute throughputs (FSD_BENCH_FULL=1; slow)",
    )
    args = parser.parse_args()
    run(quick=args.quick, label=args.label, serial=args.serial, paper_scale=args.paper_scale)


if __name__ == "__main__":
    main()

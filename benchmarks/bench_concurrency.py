"""Wall-clock + simulated-fingerprint benchmark of the concurrency engine.

Replays one *flash crowd* -- a burst of near-simultaneous queries on the
shared serving substrate (``common.py``'s scaled cloud and prepared FSD
workloads) -- twice over:

* **serialized**: the default ``ServingConfig`` event loop, where in-flight
  executions never contend (each query observes its solo latency), and
* **interleaved + contended**: ``ServingConfig(concurrency=...)`` with a
  bounded :class:`repro.ContentionConfig` (a platform FaaS invocation quota
  plus a per-queue transfer capacity), where the fair-share arbiter
  stretches overlapping timelines.

One record per invocation is appended to ``BENCH_concurrency.json`` at the
repo root, carrying both summaries, the p99 inflation factor and the
per-resource peak utilization/backlog -- all *simulated* quantities that
depend only on the workload seed and the contention config, so they must
stay bit-for-bit identical across PRs unless the contention semantics
intentionally change.

Both serves are replayed **twice** and the record is only written when the
two passes agree exactly -- the benchmark doubles as a determinism check.
The harness also asserts the contended p99 strictly exceeds the serialized
p99: a flash crowd that nothing contends over means the config is
miscalibrated, not that the engine is fast.

Usage::

    PYTHONPATH=src python benchmarks/bench_concurrency.py [--quick] [--label NAME]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

_HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(_HERE))
sys.path.insert(0, str(_HERE.parent / "src"))

from common import (  # noqa: E402
    append_record,
    git_rev,
    serving_bench_workloads,
    serving_fsd_backend,
    serving_grid,
)

from repro import (  # noqa: E402
    ConcurrencyConfig,
    ContentionConfig,
    InferenceQuery,
    InferenceServer,
    ServingConfig,
    SporadicWorkload,
)

RESULT_PATH = _HERE.parent / "BENCH_concurrency.json"

#: the benchmark's canonical bounded contention model: a platform-wide
#: concurrent-invocation quota plus a per-queue transfer capacity.
BENCH_CONTENTION = ContentionConfig(faas_invocations=4.0, queue_capacity=2.0)

#: flash-crowd arrival spacing (seconds): far below a query's service time,
#: so the whole crowd is genuinely in flight together.
CROWD_SPACING_SECONDS = 0.25


def flash_crowd(quick: bool) -> SporadicWorkload:
    """A burst of near-simultaneous queries on the benchmark's model sizes."""
    neurons, batch_size, num_queries = serving_grid(quick)
    queries = [
        InferenceQuery(
            query_id=i,
            arrival_time=CROWD_SPACING_SECONDS * i,
            neurons=neurons[i % len(neurons)],
            samples=batch_size,
        )
        for i in range(num_queries)
    ]
    return SporadicWorkload(queries=queries)


def _serve_pair(quick: bool) -> dict:
    workload = flash_crowd(quick)
    workloads = serving_bench_workloads(quick)

    serialized_server = InferenceServer(serving_fsd_backend(workloads))
    start = time.perf_counter()
    serialized = serialized_server.serve(workload)
    serialized_wall = time.perf_counter() - start

    contended_server = InferenceServer(
        serving_fsd_backend(workloads),
        ServingConfig(concurrency=ConcurrencyConfig(contention=BENCH_CONTENTION)),
    )
    start = time.perf_counter()
    contended = contended_server.serve(workload)
    contended_wall = time.perf_counter() - start

    serialized_p99 = serialized.latency_percentile(99.0)
    contended_p99 = contended.latency_percentile(99.0)
    neurons, batch_size, _ = serving_grid(quick)
    return {
        "neurons": list(neurons),
        "batch_size": batch_size,
        "num_queries": workload.num_queries,
        "wall_seconds_serialized": serialized_wall,
        "wall_seconds_contended": contended_wall,
        "simulated": {
            "serialized": serialized.summary(),
            "contended": contended.summary(),
            "p99_inflation": contended_p99 / serialized_p99,
        },
    }


def _fingerprint(simulated: dict) -> str:
    canonical = json.dumps(simulated, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def run(quick: bool = False, label: str | None = None) -> dict:
    first = _serve_pair(quick)
    second = _serve_pair(quick)
    if first["simulated"] != second["simulated"]:
        raise AssertionError(
            "interleaved replay is non-deterministic: two serves under the "
            "same contention config produced different summaries"
        )

    serialized_p99 = first["simulated"]["serialized"]["p99_latency_seconds"]
    contended_p99 = first["simulated"]["contended"]["p99_latency_seconds"]
    if not contended_p99 > serialized_p99:
        raise AssertionError(
            f"contention did not inflate the flash crowd's tail "
            f"(serialized p99 {serialized_p99!r}, contended p99 "
            f"{contended_p99!r}); the contention config is miscalibrated"
        )

    record = {
        "label": label or git_rev(),
        "git_rev": git_rev(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "quick": quick,
        "fingerprint": _fingerprint(first["simulated"]),
        "replay": first,
    }

    append_record(RESULT_PATH, record)

    replay = record["replay"]
    concurrency = replay["simulated"]["contended"]["concurrency"]
    print(f"concurrency benchmark -- label={record['label']} rev={record['git_rev']}")
    print(
        f"  flash crowd of {replay['num_queries']} queries over sizes "
        f"{replay['neurons']}: serialized {replay['wall_seconds_serialized']:.3f}s, "
        f"contended {replay['wall_seconds_contended']:.3f}s wall-clock "
        f"(fingerprint {record['fingerprint']}, identical across 2 replays)"
    )
    print(
        f"  p99 {serialized_p99:.3f}s -> {contended_p99:.3f}s "
        f"({replay['simulated']['p99_inflation']:.2f}x inflation), "
        f"{concurrency['interfered_query_count']} queries interfered, "
        f"{concurrency['interference_total_seconds']:.1f}s total interference"
    )
    for resource, stats in concurrency["resources"].items():
        if stats.get("capacity") is None:
            continue
        print(
            f"  {resource}: peak weight {stats['peak_weight']:.0f} over capacity "
            f"{stats['capacity']:.0f} (utilization {stats['peak_utilization']:.2f}, "
            f"backlog {stats['peak_backlog']:.0f})"
        )
    return record


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small crowd only (CI smoke)")
    parser.add_argument("--label", default=None, help="trajectory label for this record")
    args = parser.parse_args()
    run(quick=args.quick, label=args.label)


if __name__ == "__main__":
    main()

"""Wall-clock + simulated-fingerprint benchmark of the chaos layer.

Replays the shared serving trace (``common.py``'s substrate -- the same
trace/backend ``bench_serving.py`` and ``bench_campaign.py`` use) through
:class:`repro.serving.InferenceServer` under a seeded fault storm: Poisson
transient queue/pubsub faults, a scheduled FaaS preemption window, a
cold-start storm after a mid-day deploy, query-level retries with seeded
jittered backoff and a per-query deadline.  One record per invocation is
appended to ``BENCH_chaos.json`` at the repo root, mirroring
``bench_serving.py``:

* the *wall-clock* seconds to replay the storm (the overhead chaos adds to
  the serve loop), and
* the *simulated* reliability fingerprint (availability, goodput, retries,
  outcome/fault counts plus the full serving summary) which depends only on
  the workload, the fault plan and the seeds -- so it must stay bit-for-bit
  identical across PRs unless the chaos semantics intentionally change.

The storm is replayed **twice** and the record is only written if both
replays produce the identical summary -- the benchmark doubles as a
determinism check.  The harness also asserts the storm actually degraded
service (``availability < 1.0``): a storm nothing survives of, or one that
injects nothing, is a configuration bug, not a benchmark.

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py [--quick] [--label NAME]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

_HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(_HERE))
sys.path.insert(0, str(_HERE.parent / "src"))

from common import (  # noqa: E402
    SERVING_SEED,
    append_record,
    git_rev,
    serving_bench_workloads,
    serving_fsd_backend,
    serving_grid,
)

from repro import (  # noqa: E402
    ChaosConfig,
    ColdStartStorm,
    FaultPlan,
    InferenceServer,
    PoissonFaultProcess,
    PreemptionWindows,
    RetryPolicy,
    ServingConfig,
    generate_sporadic_workload,
)

RESULT_PATH = _HERE.parent / "BENCH_chaos.json"

#: the benchmark's canonical fault storm (seeded; every knob exercised).
CHAOS_SEED = 41


def bench_chaos_config() -> ChaosConfig:
    return ChaosConfig(
        plan=FaultPlan(
            processes=(
                PoissonFaultProcess("queue", rate_per_hour=2.0),
                PoissonFaultProcess("pubsub", rate_per_hour=1.0),
                PreemptionWindows(windows=((6 * 3600.0, 9 * 3600.0),)),
                ColdStartStorm(deploy_times=(12 * 3600.0,)),
            ),
            seed=CHAOS_SEED,
        ),
        retry=RetryPolicy(max_attempts=3, initial_backoff_seconds=2.0, seed=CHAOS_SEED),
        channel_retry=RetryPolicy(
            max_attempts=5, initial_backoff_seconds=0.05, seed=CHAOS_SEED + 1
        ),
        deadline_seconds=3600.0,
    )


def _serve_once(quick: bool) -> dict:
    neurons, batch_size, num_queries = serving_grid(quick)
    workload = generate_sporadic_workload(
        daily_samples=num_queries * batch_size,
        batch_size=batch_size,
        neuron_counts=neurons,
        seed=SERVING_SEED,
    )
    backend = serving_fsd_backend(serving_bench_workloads(quick))
    server = InferenceServer(backend, ServingConfig(chaos=bench_chaos_config()))
    start = time.perf_counter()
    report = server.serve(workload)
    wall_seconds = time.perf_counter() - start
    return {
        "neurons": list(neurons),
        "batch_size": batch_size,
        "num_queries": workload.num_queries,
        "wall_seconds": wall_seconds,
        "simulated": report.summary(),
    }


def _fingerprint(simulated: dict) -> str:
    canonical = json.dumps(simulated, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def run(quick: bool = False, label: str | None = None) -> dict:
    first = _serve_once(quick)
    second = _serve_once(quick)
    if first["simulated"] != second["simulated"]:
        raise AssertionError(
            "chaos replay is non-deterministic: two serves under the same "
            "seeded fault plan produced different summaries"
        )

    chaos = first["simulated"]["chaos"]
    if chaos["availability"] is None or chaos["availability"] >= 1.0:
        raise AssertionError(
            f"the benchmark storm did not degrade service "
            f"(availability={chaos['availability']!r}); the fault plan is miscalibrated"
        )

    record = {
        "label": label or git_rev(),
        "git_rev": git_rev(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "quick": quick,
        "fingerprint": _fingerprint(first["simulated"]),
        "replay": first,
    }

    append_record(RESULT_PATH, record)

    replay = record["replay"]
    print(f"chaos benchmark -- label={record['label']} rev={record['git_rev']}")
    print(
        f"  {replay['num_queries']} queries over sizes {replay['neurons']}: "
        f"stormed in {replay['wall_seconds']:.3f}s wall-clock "
        f"(fingerprint {record['fingerprint']}, identical across 2 replays)"
    )
    print(
        f"  reliability: availability {chaos['availability']:.3f}, "
        f"goodput {chaos['goodput_queries_per_hour']:.2f} q/h, "
        f"{chaos['retry_count']} query retries, {chaos['channel_retries']} channel retries"
    )
    print(
        f"  outcomes {chaos['outcome_counts']}, faults {chaos['fault_counts']}, "
        f"failure reasons {chaos['failure_reasons']}"
    )
    return record


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small trace only (CI smoke)")
    parser.add_argument("--label", default=None, help="trajectory label for this record")
    args = parser.parse_args()
    run(quick=args.quick, label=args.label)


if __name__ == "__main__":
    main()

"""Figure 5 -- query latency of FSD-Inference vs server baselines and H-SpFF.

For each (scaled) model size the benchmark runs one batch query on:

* FSD-Inference (the best of its parallel variants for that size),
* Server-Always-On with the model hot in memory (AO-Hot),
* Server-Always-On with a cold model fetched from object storage (AO-Cold),
* Server-Job-Scoped (JS), paying the instance provisioning delay, and
* the H-SpFF style HPC baseline.

The paper's qualitative claims checked here: JS suffers very high latency for
every size; FSD-Inference closes the gap to (and eventually beats) AO-Hot as
the model grows; H-SpFF remains the fastest platform.
"""

import pytest

from repro import ServerMode, Variant, run_hpc_query, run_server_query

from common import (
    scaled_cloud,
    bench_neurons,
    build_workload,
    paper_equivalent,
    print_table,
    run_engine,
)


def _best_parallel_latency(workload):
    """Best latency over the two parallel variants with a mid-size worker pool."""
    results = []
    for variant in (Variant.QUEUE, Variant.OBJECT):
        result = run_engine(workload, variant, workers=8)
        results.append((result.latency_seconds, variant.value, result))
    results.sort()
    return results[0]


@pytest.mark.parametrize("neurons", bench_neurons())
def test_fig5_query_latency(benchmark, neurons):
    workload = build_workload(neurons)

    fsd_latency, fsd_variant, _ = benchmark.pedantic(
        lambda: _best_parallel_latency(workload), rounds=1, iterations=1
    )

    cloud = scaled_cloud()
    hot = run_server_query(cloud, workload.model, workload.batch, ServerMode.ALWAYS_ON_HOT)
    cold = run_server_query(cloud, workload.model, workload.batch, ServerMode.ALWAYS_ON_COLD)
    job = run_server_query(cloud, workload.model, workload.batch, ServerMode.JOB_SCOPED)
    hpc = run_hpc_query(workload.model, workload.batch, ranks=16)

    print_table(
        f"Figure 5 -- query latency (s), scaled N={neurons} "
        f"(stands in for paper N={paper_equivalent(neurons)})",
        ["platform", "latency (s)", "notes"],
        [
            ["FSD-Inf", fsd_latency, f"best parallel variant: {fsd_variant}"],
            ["AO-Hot", hot.latency_seconds, hot.instance_type],
            ["AO-Cold", cold.latency_seconds, cold.instance_type],
            ["JS", job.latency_seconds, f"{job.instance_type}, startup {job.startup_seconds:.0f}s"],
            ["H-SpFF", hpc.latency_seconds, "16 MPI ranks"],
        ],
    )

    # Qualitative shape of Figure 5.
    assert job.latency_seconds > hot.latency_seconds, "job-scoped must pay the provisioning delay"
    assert job.latency_seconds > fsd_latency, "FSD-Inference beats job-scoped servers"
    assert hot.latency_seconds < cold.latency_seconds
    assert hpc.latency_seconds < job.latency_seconds

"""Ablations of FSD-Inference design choices discussed in the paper.

Four design decisions called out in Sections III and IV are ablated here on a
mid-size scaled workload:

* **Long vs short polling** of the per-worker queue (Section III-C1): long
  polling should need fewer queue API requests, reducing SQS cost.
* **ZLIB compression on vs off** (Section IV-B): compression should reduce the
  communicated bytes and hence pub/sub delivery charges.
* **Number of pub/sub topics** (Section III-A): a pool of topics spreads
  publish traffic; a single topic must absorb every publish.
* **Launch-tree branching factor** (Section II-B): wider trees shorten the
  time until the full worker pool is running.
"""

import pytest

from repro import CloudEnvironment, EngineConfig, FSDInference, Variant
from repro.cloud import FunctionConfig, VirtualClock
from repro.core import launch_worker_tree

from common import (
    scaled_cloud,
    MEMORY_OVERHEAD_MB,
    bench_neurons,
    build_workload,
    print_table,
    worker_memory_for,
)

WORKERS = 4


def _run(workload, **overrides):
    cloud = scaled_cloud()
    config = EngineConfig(
        variant=Variant.QUEUE,
        workers=WORKERS,
        worker_memory_mb=worker_memory_for(workload.neurons),
        memory_overhead_mb=MEMORY_OVERHEAD_MB,
        **overrides,
    )
    engine = FSDInference(cloud, config)
    plan = workload.plan_for(WORKERS)
    return engine.infer(workload.model, workload.batch, plan)


def test_ablation_long_vs_short_polling(benchmark):
    workload = build_workload(bench_neurons()[1])

    def run_both():
        return {
            "long polling (W=5s)": _run(workload, use_long_polling=True),
            "short polling (W=0)": _run(workload, use_long_polling=False),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        [name, r.metrics.total_poll_calls, r.cost.communication_cost, r.latency_seconds]
        for name, r in results.items()
    ]
    print_table(
        "Ablation -- queue polling mode",
        ["polling", "poll API calls", "communication $", "latency (s)"],
        rows,
    )
    long_poll = results["long polling (W=5s)"]
    short_poll = results["short polling (W=0)"]
    assert long_poll.metrics.total_poll_calls <= short_poll.metrics.total_poll_calls
    assert long_poll.cost.communication_cost <= short_poll.cost.communication_cost


def test_ablation_compression(benchmark):
    workload = build_workload(bench_neurons()[1])

    def run_both():
        return {
            "zlib compression": _run(workload, compress=True),
            "no compression": _run(workload, compress=False),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        [name, r.metrics.total_bytes_sent, r.cost.communication_cost, r.latency_seconds]
        for name, r in results.items()
    ]
    print_table(
        "Ablation -- payload compression",
        ["configuration", "bytes sent", "communication $", "latency (s)"],
        rows,
    )
    assert (
        results["zlib compression"].metrics.total_bytes_sent
        < results["no compression"].metrics.total_bytes_sent
    )


def test_ablation_topic_pool_size(benchmark):
    workload = build_workload(bench_neurons()[1])

    def run_sweep():
        return {topics: _run(workload, num_topics=topics) for topics in (1, 2, 10)}

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        [topics, r.metrics.total_publish_calls, r.latency_seconds, r.cost.communication_cost]
        for topics, r in results.items()
    ]
    print_table(
        "Ablation -- pub/sub topic pool size",
        ["topics", "publish calls", "latency (s)", "communication $"],
        rows,
    )
    # Correctness and cost must be insensitive to the topic pool size (it only
    # spreads API load); every configuration produced a bill and a result.
    costs = [r.cost.communication_cost for r in results.values()]
    assert max(costs) <= min(costs) * 1.05


def test_ablation_launch_branching_factor(benchmark):
    cloud = CloudEnvironment()
    cloud.faas.create_function(FunctionConfig(name="ablation-worker", memory_mb=1024))

    def launch_all():
        spans = {}
        for branching in (1, 2, 4, 8):
            result = launch_worker_tree(
                cloud.faas, "ablation-worker", 62, branching, VirtualClock()
            )
            spans[branching] = result.completed_at
        return spans

    spans = benchmark.pedantic(launch_all, rounds=1, iterations=1)
    rows = [[branching, finish] for branching, finish in spans.items()]
    print_table(
        "Ablation -- hierarchical launch branching factor (62 workers)",
        ["branching factor", "time until last worker starts (s)"],
        rows,
    )
    # A tree (branching >= 2) fills the worker pool faster than a chain.
    assert spans[4] < spans[1]
    assert spans[8] < spans[1]

"""Wall-clock + simulated-fingerprint benchmark of the serving layer.

Replays a full sporadic daily workload (mixed model sizes, Poisson arrivals)
through :class:`repro.serving.InferenceServer` on one shared
``CloudEnvironment`` timeline and appends one record per invocation to
``BENCH_serving.json`` at the repo root, mirroring ``bench_hotpath.py``:

* the *wall-clock* seconds to replay the trace (the number perf PRs push
  down), and
* the *simulated* fingerprints (daily cost total, p50/p95/p99 latency,
  cold/warm start counts, peak concurrency) which depend only on the
  workload and the cost model, so they must stay bit-for-bit identical
  across PRs unless the simulated semantics intentionally change.

``--coalesce-window SECONDS`` enables the serving layer's
``BatchCoalescingPolicy`` (same-model queries arriving within the window are
merged into one batch, gated by the analytical cost model); the resulting
record is policy-tagged -- its ``simulated`` block gains ``policies``,
``coalesced_query_count`` and ``execution_count`` keys -- so it is never
confused with the policy-free fingerprint, which must stay bit-identical.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py [--quick] [--label NAME]
        [--coalesce-window SECONDS]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

_HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(_HERE))
sys.path.insert(0, str(_HERE.parent / "src"))

from common import (  # noqa: E402
    SERVING_LAYERS,
    SERVING_SEED,
    SERVING_WORKERS,
    git_rev,
    serving_bench_workloads,
    serving_fsd_backend,
    serving_grid,
    worker_memory_for,
)

from repro import (  # noqa: E402
    BatchCoalescingPolicy,
    CoalescingProfile,
    InferenceServer,
    ServingConfig,
    Variant,
    generate_sporadic_workload,
)

RESULT_PATH = _HERE.parent / "BENCH_serving.json"


def _build_server(quick, coalesce_window=None):
    """An InferenceServer over the scaled bench workloads (queue variant).

    The trace/backend substrate is shared with ``bench_campaign.py`` via
    ``common.py`` -- the campaign's Poisson/FSD cell must reproduce this
    bench's fingerprint bit-for-bit.
    """
    backend = serving_fsd_backend(serving_bench_workloads(quick))
    policies = ()
    if coalesce_window is not None:
        # Gate merging through the analytical cost model: the per-query fixed
        # charges (invocations, coordinator, per-batch polling) are what the
        # policy saves, so this predicts a win for the bench workloads.
        def profile_for(query):
            return CoalescingProfile(
                variant=Variant.QUEUE,
                workers=SERVING_WORKERS,
                layers=SERVING_LAYERS,
                per_query_runtime_seconds=2.5,
                worker_memory_mb=worker_memory_for(query.neurons),
            )

        policies = (
            BatchCoalescingPolicy(window_seconds=coalesce_window, profile_for=profile_for),
        )
    return InferenceServer(backend, ServingConfig(policies=policies))


def _replay(quick: bool, coalesce_window: float | None = None) -> dict:
    neurons, batch_size, num_queries = serving_grid(quick)
    workload = generate_sporadic_workload(
        daily_samples=num_queries * batch_size,
        batch_size=batch_size,
        neuron_counts=neurons,
        seed=SERVING_SEED,
    )
    server = _build_server(quick, coalesce_window)

    start = time.perf_counter()
    report = server.serve(workload)
    wall_seconds = time.perf_counter() - start

    summary = report.summary()
    replay = {
        "neurons": list(neurons),
        "batch_size": batch_size,
        "num_queries": workload.num_queries,
        "wall_seconds": wall_seconds,
        "simulated": summary,
    }
    if coalesce_window is not None:
        replay["coalesce_window_seconds"] = coalesce_window
    return replay


def _fmt_latency(value) -> str:
    """Percentiles are ``None`` for empty replays -- print that honestly."""
    return "n/a" if value is None else f"{value:.3f}s"


def run(
    quick: bool = False,
    label: str | None = None,
    coalesce_window: float | None = None,
) -> dict:
    record = {
        "label": label or git_rev(),
        "git_rev": git_rev(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "quick": quick,
        "replay": _replay(quick, coalesce_window),
    }

    history = {"records": []}
    if RESULT_PATH.exists():
        try:
            history = json.loads(RESULT_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            pass
    history.setdefault("records", []).append(record)
    RESULT_PATH.write_text(json.dumps(history, indent=2) + "\n")

    replay = record["replay"]
    simulated = replay["simulated"]
    print(f"serving benchmark -- label={record['label']} rev={record['git_rev']}")
    print(
        f"  {replay['num_queries']} queries over sizes {replay['neurons']}: "
        f"replayed in {replay['wall_seconds']:.3f}s wall-clock"
    )
    print(
        f"  simulated: cost ${simulated['cost_total']:.6f}, "
        f"p50 {_fmt_latency(simulated['p50_latency_seconds'])}, "
        f"p95 {_fmt_latency(simulated['p95_latency_seconds'])}, "
        f"p99 {_fmt_latency(simulated['p99_latency_seconds'])}, "
        f"{simulated['cold_start_count']} cold / {simulated['warm_start_count']} warm starts, "
        f"peak {simulated['peak_concurrent_workers']} workers"
    )
    if "policies" in simulated:
        print(
            f"  policies: {[p['name'] for p in simulated['policies']]} -- "
            f"{simulated['coalesced_query_count']} of {simulated['num_queries']} "
            f"queries coalesced into {simulated['execution_count']} executions"
        )
    return record


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small trace only (CI smoke)")
    parser.add_argument("--label", default=None, help="trajectory label for this record")
    parser.add_argument(
        "--coalesce-window",
        type=float,
        default=None,
        metavar="SECONDS",
        help="enable BatchCoalescingPolicy with this window (policy-tagged record)",
    )
    args = parser.parse_args()
    run(quick=args.quick, label=args.label, coalesce_window=args.coalesce_window)


if __name__ == "__main__":
    main()

"""Wall-clock + simulated-fingerprint benchmark of the serving layer.

Replays a full sporadic daily workload (mixed model sizes, Poisson arrivals)
through :class:`repro.serving.InferenceServer` on one shared
``CloudEnvironment`` timeline and appends one record per invocation to
``BENCH_serving.json`` at the repo root, mirroring ``bench_hotpath.py``:

* the *wall-clock* seconds to replay the trace (the number perf PRs push
  down), and
* the *simulated* fingerprints (daily cost total, p50/p95/p99 latency,
  cold/warm start counts, peak concurrency) which depend only on the
  workload and the cost model, so they must stay bit-for-bit identical
  across PRs unless the simulated semantics intentionally change.

``--coalesce-window SECONDS`` enables the serving layer's
``BatchCoalescingPolicy`` (same-model queries arriving within the window are
merged into one batch, gated by the analytical cost model); the resulting
record is policy-tagged -- its ``simulated`` block gains ``policies``,
``coalesced_query_count`` and ``execution_count`` keys -- so it is never
confused with the policy-free fingerprint, which must stay bit-identical.

``--scale`` switches to the vectorized-replay sweep: Poisson day traces up
to a million queries replayed through the columnar event core with outcome
memoisation on, recorded as a queries/second trajectory (with the exact
loop's q/s measured on a downsampled head).  Every row asserts the fast
path's head summary is bit-identical to the exact loop's under the same
cache setting; the full sweep additionally asserts the million-query replay
beats the exact loop by >= 100x.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py [--quick] [--label NAME]
        [--coalesce-window SECONDS] [--scale]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

_HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(_HERE))
sys.path.insert(0, str(_HERE.parent / "src"))

from common import (  # noqa: E402
    SERVING_LAYERS,
    SERVING_SEED,
    SERVING_WORKERS,
    append_record,
    git_rev,
    serving_bench_workloads,
    serving_fsd_backend,
    serving_grid,
    serving_scale_plan,
    worker_memory_for,
)

from repro import (  # noqa: E402
    BatchCoalescingPolicy,
    CoalescingProfile,
    InferenceServer,
    ServingConfig,
    Variant,
    generate_sporadic_workload,
)

RESULT_PATH = _HERE.parent / "BENCH_serving.json"


def _build_server(quick, coalesce_window=None):
    """An InferenceServer over the scaled bench workloads (queue variant).

    The trace/backend substrate is shared with ``bench_campaign.py`` via
    ``common.py`` -- the campaign's Poisson/FSD cell must reproduce this
    bench's fingerprint bit-for-bit.
    """
    backend = serving_fsd_backend(serving_bench_workloads(quick))
    policies = ()
    if coalesce_window is not None:
        # Gate merging through the analytical cost model: the per-query fixed
        # charges (invocations, coordinator, per-batch polling) are what the
        # policy saves, so this predicts a win for the bench workloads.
        def profile_for(query):
            return CoalescingProfile(
                variant=Variant.QUEUE,
                workers=SERVING_WORKERS,
                layers=SERVING_LAYERS,
                per_query_runtime_seconds=2.5,
                worker_memory_mb=worker_memory_for(query.neurons),
            )

        policies = (
            BatchCoalescingPolicy(window_seconds=coalesce_window, profile_for=profile_for),
        )
    return InferenceServer(backend, ServingConfig(policies=policies))


def _replay(quick: bool, coalesce_window: float | None = None) -> dict:
    neurons, batch_size, num_queries = serving_grid(quick)
    workload = generate_sporadic_workload(
        daily_samples=num_queries * batch_size,
        batch_size=batch_size,
        neuron_counts=neurons,
        seed=SERVING_SEED,
    )
    server = _build_server(quick, coalesce_window)

    start = time.perf_counter()
    report = server.serve(workload)
    wall_seconds = time.perf_counter() - start

    summary = report.summary()
    replay = {
        "neurons": list(neurons),
        "batch_size": batch_size,
        "num_queries": workload.num_queries,
        "wall_seconds": wall_seconds,
        "simulated": summary,
    }
    if coalesce_window is not None:
        replay["coalesce_window_seconds"] = coalesce_window
    return replay


def _fmt_latency(value) -> str:
    """Percentiles are ``None`` for empty replays -- print that honestly."""
    return "n/a" if value is None else f"{value:.3f}s"


# -- the --scale sweep ---------------------------------------------------------


def _summary_digest(summary: dict) -> str:
    canonical = json.dumps(summary, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _scale_serve(quick: bool, workload, *, replay_mode: str, outcome_cache: bool):
    """One timed serve on a fresh backend; returns (summary, wall_seconds)."""
    backend = serving_fsd_backend(serving_bench_workloads(quick))
    server = InferenceServer(
        backend, ServingConfig(replay_mode=replay_mode, outcome_cache=outcome_cache)
    )
    start = time.perf_counter()
    report = server.serve(workload)
    wall = time.perf_counter() - start
    return report.summary(), wall


def _scale_row(quick: bool, num_queries: int, head_queries: int) -> dict:
    """One --scale sweep row: build, exact head baseline, fast-path replay.

    The exact loop replays tens of queries per second, so its baseline is
    measured on a downsampled head and reported as queries/second -- the
    same unit the fast path reports over the full trace.  The row also
    re-serves the head through both cores with identical cache settings and
    asserts the summaries are bit-identical (the fast path is a replay
    *implementation*, never a semantics change).
    """
    neurons, batch_size, _ = serving_grid(quick)

    build_start = time.perf_counter()
    workload = generate_sporadic_workload(
        daily_samples=num_queries * batch_size,
        batch_size=batch_size,
        neuron_counts=neurons,
        seed=SERVING_SEED,
    )
    build_seconds = time.perf_counter() - build_start
    head = workload.head(head_queries)

    # Exact-loop baseline on the head (cache off: the historical replay path).
    _, exact_wall = _scale_serve(quick, head, replay_mode="exact", outcome_cache=False)
    exact_qps = head.num_queries / exact_wall

    # Bit-identity gate: both cores over the head, same cache setting.
    exact_summary, _ = _scale_serve(quick, head, replay_mode="exact", outcome_cache=True)
    fast_summary, _ = _scale_serve(quick, head, replay_mode="columnar", outcome_cache=True)
    if fast_summary != exact_summary:
        diff = {
            key: (fast_summary.get(key), exact_summary.get(key))
            for key in set(fast_summary) | set(exact_summary)
            if fast_summary.get(key) != exact_summary.get(key)
        }
        raise RuntimeError(
            f"fast-path summary diverged from the exact loop on the "
            f"{head.num_queries}-query head; differing keys: {diff}"
        )

    # The fast path over the full trace: columnar event core + outcome cache.
    full_summary, fast_wall = _scale_serve(
        quick, workload, replay_mode="columnar", outcome_cache=True
    )
    fast_qps = workload.num_queries / fast_wall

    return {
        "num_queries": workload.num_queries,
        "batch_size": batch_size,
        "neurons": list(neurons),
        "build_seconds": build_seconds,
        "exact_head_queries": head.num_queries,
        "exact_head_wall_seconds": exact_wall,
        "exact_queries_per_second": exact_qps,
        "fast_wall_seconds": fast_wall,
        "fast_queries_per_second": fast_qps,
        "speedup": fast_qps / exact_qps,
        "head_bit_identical": True,
        "summary_digest": _summary_digest(full_summary),
        "cost_total": full_summary["cost_total"],
        "p95_latency_seconds": full_summary["p95_latency_seconds"],
    }


def _scale_sweep(quick: bool) -> dict:
    sizes, head_queries = serving_scale_plan(quick)
    rows = [_scale_row(quick, size, head_queries) for size in sizes]
    sweep = {"head_queries": head_queries, "rows": rows}
    if not quick:
        # Acceptance gate: the million-query day must beat the exact loop by
        # two orders of magnitude in queries/second.
        largest = rows[-1]
        if largest["speedup"] < 100.0:
            raise RuntimeError(
                f"--scale speedup regression: {largest['num_queries']}-query replay "
                f"ran at {largest['fast_queries_per_second']:.0f} q/s, only "
                f"{largest['speedup']:.1f}x the exact loop (need >= 100x)"
            )
    return sweep


def run(
    quick: bool = False,
    label: str | None = None,
    coalesce_window: float | None = None,
    scale: bool = False,
) -> dict:
    record = {
        "label": label or git_rev(),
        "git_rev": git_rev(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "quick": quick,
    }
    # --scale records carry a "scale" trajectory instead of a "replay" block,
    # so fingerprint consumers (bench_campaign/bench_planner reference checks,
    # which match on label + replay.simulated) never confuse the two.
    if scale:
        record["scale"] = _scale_sweep(quick)
    else:
        record["replay"] = _replay(quick, coalesce_window)

    append_record(RESULT_PATH, record)

    if scale:
        sweep = record["scale"]
        print(f"serving scale sweep -- label={record['label']} rev={record['git_rev']}")
        for row in sweep["rows"]:
            print(
                f"  {row['num_queries']:>9} queries: fast path "
                f"{row['fast_queries_per_second']:.0f} q/s "
                f"({row['fast_wall_seconds']:.2f}s wall), exact loop "
                f"{row['exact_queries_per_second']:.1f} q/s on a "
                f"{row['exact_head_queries']}-query head -> {row['speedup']:.0f}x; "
                f"head summaries bit-identical, digest {row['summary_digest']}"
            )
        return record

    replay = record["replay"]
    simulated = replay["simulated"]
    print(f"serving benchmark -- label={record['label']} rev={record['git_rev']}")
    print(
        f"  {replay['num_queries']} queries over sizes {replay['neurons']}: "
        f"replayed in {replay['wall_seconds']:.3f}s wall-clock"
    )
    print(
        f"  simulated: cost ${simulated['cost_total']:.6f}, "
        f"p50 {_fmt_latency(simulated['p50_latency_seconds'])}, "
        f"p95 {_fmt_latency(simulated['p95_latency_seconds'])}, "
        f"p99 {_fmt_latency(simulated['p99_latency_seconds'])}, "
        f"{simulated['cold_start_count']} cold / {simulated['warm_start_count']} warm starts, "
        f"peak {simulated['peak_concurrent_workers']} workers"
    )
    if "policies" in simulated:
        print(
            f"  policies: {[p['name'] for p in simulated['policies']]} -- "
            f"{simulated['coalesced_query_count']} of {simulated['num_queries']} "
            f"queries coalesced into {simulated['execution_count']} executions"
        )
    return record


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small trace only (CI smoke)")
    parser.add_argument("--label", default=None, help="trajectory label for this record")
    parser.add_argument(
        "--coalesce-window",
        type=float,
        default=None,
        metavar="SECONDS",
        help="enable BatchCoalescingPolicy with this window (policy-tagged record)",
    )
    parser.add_argument(
        "--scale",
        action="store_true",
        help="run the vectorized-replay scale sweep (queries/second trajectory; "
        "full mode ends on a million-query day and asserts >= 100x over the "
        "exact loop)",
    )
    args = parser.parse_args()
    if args.scale and args.coalesce_window is not None:
        parser.error("--scale replays policy-free traces; drop --coalesce-window")
    run(
        quick=args.quick,
        label=args.label,
        coalesce_window=args.coalesce_window,
        scale=args.scale,
    )


if __name__ == "__main__":
    main()

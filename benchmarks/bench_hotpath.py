"""Wall-clock micro-benchmark of the simulator's hot path.

Unlike the paper-figure benchmarks (which report *virtual-time* results),
this harness measures real wall-clock seconds of the two components that
dominate a `bench_fig6_scaling.py` sweep:

* the per-worker layer loop (send / local compute / receive / finalize)
  driven through a full engine run on both channels, and
* the offline ``HypergraphPartitioner`` assignment.

It appends one record per invocation to ``BENCH_hotpath.json`` at the repo
root, so successive PRs accumulate a seed-vs-now trajectory.  Each record
also carries the *simulated* fingerprints (``latency_seconds`` and
``CostReport.total`` per run): the virtual-clock/cost model charges by
sparsity structure, not wall-clock, so these numbers must stay bit-for-bit
identical while the wall-clock numbers shrink.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--quick] [--label NAME]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

_HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(_HERE))
sys.path.insert(0, str(_HERE.parent / "src"))

from common import build_workload, run_engine, scaled_cloud  # noqa: E402

from repro import HypergraphPartitioner, Variant  # noqa: E402

RESULT_PATH = _HERE.parent / "BENCH_hotpath.json"

#: (neurons, layers, samples, workers) scales; the largest matches the top of
#: the default scaled Figure-6 sweep (N=2048 stands in for the paper's 65536).
SCALES = [
    (512, 8, 32, 4),
    (1024, 8, 32, 8),
    (2048, 8, 32, 8),
]
QUICK_SCALES = [(512, 8, 32, 4)]


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=_HERE.parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
        return out.stdout.strip() or "unknown"
    except Exception:
        return "unknown"


def _time_scale(neurons: int, layers: int, samples: int, workers: int, repeats: int) -> dict:
    workload = build_workload(neurons, layers, samples)

    partition_s = []
    for _ in range(repeats):
        partitioner = HypergraphPartitioner(seed=1)
        start = time.perf_counter()
        partitioner.partition(workload.model, workers)
        partition_s.append(time.perf_counter() - start)

    # Build (and cache) the plan once, like the Figure-6 sweep does, so the
    # engine timings below measure the per-query layer loop, not planning.
    workload.plan_for(workers)

    fingerprints = {}
    channel_s = {}
    for variant in (Variant.QUEUE, Variant.OBJECT):
        samples_s = []
        for _ in range(repeats):
            start = time.perf_counter()
            result = run_engine(workload, variant, workers, cloud=scaled_cloud())
            samples_s.append(time.perf_counter() - start)
        channel_s[variant.value] = min(samples_s)
        fingerprints[variant.value] = {
            "latency_seconds": result.latency_seconds,
            "cost_total": result.cost.total,
            "output_nnz": int(result.output.nnz),
        }

    return {
        "neurons": neurons,
        "layers": layers,
        "samples": samples,
        "workers": workers,
        "partition_s": min(partition_s),
        "queue_s": channel_s[Variant.QUEUE.value],
        "object_s": channel_s[Variant.OBJECT.value],
        "total_s": min(partition_s) + channel_s[Variant.QUEUE.value] + channel_s[Variant.OBJECT.value],
        "simulated": fingerprints,
    }


def run(quick: bool = False, label: str | None = None, repeats: int = 2) -> dict:
    scales = QUICK_SCALES if quick else SCALES
    record = {
        "label": label or _git_rev(),
        "git_rev": _git_rev(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "quick": quick,
        "scales": [_time_scale(*scale, repeats=repeats) for scale in scales],
    }
    record["total_s"] = sum(scale["total_s"] for scale in record["scales"])

    history = {"records": []}
    if RESULT_PATH.exists():
        try:
            history = json.loads(RESULT_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            pass
    history.setdefault("records", []).append(record)
    RESULT_PATH.write_text(json.dumps(history, indent=2) + "\n")

    print(f"hotpath benchmark -- label={record['label']} rev={record['git_rev']}")
    for scale in record["scales"]:
        print(
            f"  N={scale['neurons']:5d} L={scale['layers']} S={scale['samples']} "
            f"P={scale['workers']}: partition {scale['partition_s']:.3f}s, "
            f"queue {scale['queue_s']:.3f}s, object {scale['object_s']:.3f}s"
        )
    baseline = next(
        (r for r in history["records"] if r.get("quick") == quick and r is not record),
        None,
    )
    if baseline is not None:
        speedup = baseline["total_s"] / record["total_s"] if record["total_s"] else float("inf")
        print(
            f"  total {record['total_s']:.3f}s vs first comparable record "
            f"'{baseline['label']}' {baseline['total_s']:.3f}s -> {speedup:.2f}x"
        )
        record["speedup_vs_baseline"] = speedup
        RESULT_PATH.write_text(json.dumps(history, indent=2) + "\n")
    else:
        print(f"  total {record['total_s']:.3f}s (first record at this scale set)")
    return record


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smallest scale only (CI smoke)")
    parser.add_argument("--label", default=None, help="trajectory label for this record")
    parser.add_argument("--repeats", type=int, default=2, help="best-of-N wall-clock repeats")
    args = parser.parse_args()
    run(quick=args.quick, label=args.label, repeats=args.repeats)


if __name__ == "__main__":
    main()

"""Figure 6 -- per-sample runtime and cost vs worker parallelism.

For every (scaled) model size and every worker count in the sweep, the
benchmark runs the full batch through both FSD-Inf-Queue and FSD-Inf-Object
and reports the per-sample runtime (virtual milliseconds) and per-sample cost
(USD), i.e. the two y-axes of Figure 6.

Qualitative claims checked: for the larger models, parallelism improves
per-sample runtime relative to the smallest pool; object-channel costs grow
(roughly linearly) with worker count and exceed queue-channel costs at the
highest parallelism level.
"""

import pytest

from repro import Variant

from common import (
    bench_neurons,
    bench_workers,
    build_workload,
    paper_equivalent,
    print_table,
    run_engine,
)


def _sweep(workload, variant, workers_list):
    series = []
    for workers in workers_list:
        result = run_engine(workload, variant, workers)
        series.append(
            {
                "workers": workers,
                "per_sample_ms": result.per_sample_ms,
                "per_sample_cost": result.per_sample_cost,
                "comm_cost": result.cost.communication_cost,
            }
        )
    return series


@pytest.mark.parametrize("neurons", bench_neurons())
def test_fig6_per_sample_runtime_and_cost(benchmark, neurons):
    workload = build_workload(neurons)
    workers_list = list(bench_workers())

    def run_sweeps():
        return {
            Variant.QUEUE: _sweep(workload, Variant.QUEUE, workers_list),
            Variant.OBJECT: _sweep(workload, Variant.OBJECT, workers_list),
        }

    sweeps = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)

    rows = []
    for variant, series in sweeps.items():
        for point in series:
            rows.append(
                [
                    variant.value,
                    point["workers"],
                    point["per_sample_ms"],
                    point["per_sample_cost"],
                    point["comm_cost"],
                ]
            )
    print_table(
        f"Figure 6 -- per-sample runtime/cost, scaled N={neurons} "
        f"(stands in for paper N={paper_equivalent(neurons)})",
        ["variant", "workers", "per-sample ms", "per-sample $", "comm $ per batch"],
        rows,
    )

    queue_series = sweeps[Variant.QUEUE]
    object_series = sweeps[Variant.OBJECT]

    # Object-channel communication cost grows with parallelism and exceeds the
    # queue channel's at the largest worker pool (Section VI-D discussion).
    assert object_series[-1]["comm_cost"] > object_series[0]["comm_cost"]
    assert object_series[-1]["per_sample_cost"] > queue_series[-1]["per_sample_cost"]

    if neurons >= max(bench_neurons()):
        # For the largest model, more workers improve per-sample runtime
        # relative to the smallest pool (Figure 6, N = 65536 panel).
        assert queue_series[-1]["per_sample_ms"] < queue_series[0]["per_sample_ms"]

"""Deployment-planner benchmark: SLO-constrained search over the serving space.

Runs the :class:`repro.planner.DeploymentPlanner` over the shared serving
trace (and, in full mode, a diurnal reshaping of it): a declarative
(backend x coalescing knob) search space is pruned analytically, the Pareto
finalists replay through the campaign machinery, and one fingerprinted
record per invocation is appended to ``BENCH_planner.json`` at the repo
root:

* the *wall-clock* seconds for the whole plan (calibration probes + analytic
  scoring + parallel finalist replays; the number perf PRs push down), and
* per-plan *simulated* outputs -- each finalist's untouched
  :meth:`~repro.serving.ServingReport.summary` plus a sha256 fingerprint
  over (scenario, candidate, summary) -- the exact fingerprint policy of
  ``BENCH_campaign.json``: simulated values only, never wall-clock, so fixed
  scenario seeds reproduce every fingerprint bit-for-bit across runs.

Shared-timeline invariant check: the planner's ``fsd`` candidate with all
knobs neutral replays the *identical* trace through the *identical* backend
as ``bench_serving.py``'s full run, so whenever that candidate appears in
the Poisson plan's frontier its summary must reproduce the
``pr3-event-loop`` fingerprint recorded in ``BENCH_serving.json`` exactly.
The full (non ``--quick``) run asserts this on every invocation.

The bench replays finalists on the thread executor: its backend factories
close over prebuilt bench workloads (that sharing is what makes the
reference-fingerprint assertion meaningful), so they cannot ship to a
process pool.  Thread/process report identity is regression-tested in
``tests/test_planner.py`` with the picklable spec factories.

Usage::

    PYTHONPATH=src python benchmarks/bench_planner.py [--quick] [--label NAME]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

_HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(_HERE))
sys.path.insert(0, str(_HERE.parent / "src"))

from common import (  # noqa: E402
    SERVING_SEED,
    append_record,
    git_rev,
    scaled_cloud,
    serving_batch_builder,
    serving_bench_workloads,
    serving_fsd_backend,
    serving_grid,
)

from repro import (  # noqa: E402
    DeploymentPlanner,
    DiurnalProcess,
    PoissonProcess,
    QueryWorkloadFactory,
    Scenario,
    SearchSpace,
    ServerMode,
    ServerServingBackend,
    SLOSpec,
    policies_from_knobs,
)

RESULT_PATH = _HERE.parent / "BENCH_planner.json"
SERVING_RESULT_PATH = _HERE.parent / "BENCH_serving.json"
#: the policy-free serving fingerprint the neutral fsd candidate must match.
SERVING_REFERENCE_LABEL = "pr3-event-loop"
#: the p95 bound the plans are solved against (seconds).
SLO_P95_SECONDS = 900.0


def _scenarios(quick: bool) -> list:
    # The Poisson scenario is bench_serving's exact trace (grid + seed shared
    # via common.py): that is what makes the fingerprint-identity assertion
    # meaningful.  The diurnal scenario reshapes the same daily volume.
    neurons, batch, num_queries = serving_grid(quick)
    shared = dict(
        daily_samples=num_queries * batch, batch_size=batch, neuron_counts=neurons
    )
    scenarios = [Scenario("poisson", PoissonProcess(), seed=SERVING_SEED, **shared)]
    if not quick:
        scenarios.append(
            Scenario("diurnal", DiurnalProcess(night_level=0.05), seed=31, **shared)
        )
    return scenarios


def _search_space(quick: bool) -> SearchSpace:
    workloads = serving_bench_workloads(quick)
    for workload in workloads.values():
        workload.plan_for(4)  # pre-warm the shared plan cache (see bench_campaign)

    def factory() -> QueryWorkloadFactory:
        return QueryWorkloadFactory(
            model_builder=lambda n: workloads[n].model,
            batch_builder=serving_batch_builder(workloads),
        )

    # detlint: allow[DET006] thread-executor bench; process planner runs use the Spec factories
    backends = {"fsd": lambda: serving_fsd_backend(workloads)}
    knobs = {"coalesce_window_seconds": (0.0, 1800.0)}
    if not quick:
        # detlint: allow[DET006] thread-executor bench; process planner runs use the Spec factories
        backends["server-job"] = lambda: ServerServingBackend(
            scaled_cloud(), ServerMode.JOB_SCOPED, factory()
        )
        knobs["coalesce_max_hold_seconds"] = (None, 900.0)
    return SearchSpace(backends=backends, knobs=knobs)


def _neutral_fsd_result(report):
    """The frontier's fsd candidate with no constructed policies, if any."""
    for result in report.frontier:
        if result.candidate.backend == "fsd" and not policies_from_knobs(
            result.candidate.knob_dict
        ):
            return result
    return None


def _check_serving_reference(report) -> None:
    """A neutral-knob fsd frontier cell must equal BENCH_serving's fingerprint."""
    neutral = _neutral_fsd_result(report)
    if neutral is None:
        print("  (no neutral fsd candidate in the frontier; skipping reference check)")
        return
    if not SERVING_RESULT_PATH.exists():
        print(f"  (no {SERVING_RESULT_PATH.name}; skipping reference fingerprint check)")
        return
    history = json.loads(SERVING_RESULT_PATH.read_text())
    references = [
        record
        for record in history.get("records", [])
        if record.get("label") == SERVING_REFERENCE_LABEL and not record.get("quick")
    ]
    if not references:
        print(f"  (no '{SERVING_REFERENCE_LABEL}' record; skipping reference fingerprint check)")
        return
    reference = references[-1]["replay"]["simulated"]
    if neutral.summary != reference:
        diff = {
            key: (neutral.summary.get(key), reference.get(key))
            for key in set(neutral.summary) | set(reference)
            if neutral.summary.get(key) != reference.get(key)
        }
        raise RuntimeError(
            "shared-timeline invariant violated: the planner's neutral fsd "
            f"candidate no longer reproduces the '{SERVING_REFERENCE_LABEL}' "
            f"serving fingerprint; differing keys: {diff}"
        )
    print(
        f"  frontier cell {neutral.label!r} reproduces the "
        f"'{SERVING_REFERENCE_LABEL}' serving fingerprint exactly "
        "(shared-timeline invariant holds)"
    )


def run(quick: bool = False, label: str | None = None) -> dict:
    scenarios = _scenarios(quick)
    space = _search_space(quick)
    slo = SLOSpec(p95_latency_seconds=SLO_P95_SECONDS)
    planner = DeploymentPlanner(space, slo, refine_rounds=1, max_finalists=6)

    start = time.perf_counter()
    reports = {scenario.name: planner.plan(scenario) for scenario in scenarios}
    wall_seconds = time.perf_counter() - start

    record = {
        "label": label or git_rev(),
        "git_rev": git_rev(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "quick": quick,
        "slo": slo.describe(),
        "search_space": {
            "backends": sorted(space.backends),
            "knobs": {key: list(values) for key, values in space.knobs.items()},
        },
        "wall_seconds": wall_seconds,
        "plans": {name: report.to_dict() for name, report in reports.items()},
    }

    # A failed reference check aborts before the history file is touched.
    append_record(
        RESULT_PATH,
        record,
        reference_check=(
            None if quick else lambda: _check_serving_reference(reports["poisson"])
        ),
    )

    print(f"planner benchmark -- label={record['label']} rev={record['git_rev']}")
    for name, report in reports.items():
        print(
            f"  {name}: {len(report.candidates)} candidates scored, "
            f"{len(report.finalists)} finalists replayed, frontier="
            f"{report.frontier_labels}, winner={report.winner_label}"
        )
        print()
        print(report.render_markdown())
        print()
    print(f"  total wall-clock {wall_seconds:.3f}s")
    return record


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="tiny search space (CI smoke)")
    parser.add_argument("--label", default=None, help="trajectory label for this record")
    args = parser.parse_args()
    run(quick=args.quick, label=args.label)


if __name__ == "__main__":
    main()

"""Table III -- hypergraph partitioning (HGP-DNN) vs random partitioning (RP).

The paper evaluates both partitioners at N = 16384, P = 42 with the
object-storage channel and reports the total data volume sent between
workers, the average nonzeros shipped per target, and the per-sample runtime.
The scaled stand-in uses the third scaled model size with a moderately large
worker pool, runs FSD-Inf-Object under both plans, and reports the same three
columns from the captured run metrics.

Qualitative claim checked: HGP-DNN reduces the communicated data volume by a
large factor (the paper reports almost one order of magnitude) and improves
per-sample runtime.
"""

import pytest

from repro import HypergraphPartitioner, RandomPartitioner, Variant, EngineConfig, FSDInference

from common import (
    scaled_cloud,
    MEMORY_OVERHEAD_MB,
    bench_neurons,
    bench_workers,
    build_workload,
    paper_equivalent,
    print_table,
    worker_memory_for,
)


def _run_with_plan(workload, plan, workers):
    cloud = scaled_cloud()
    config = EngineConfig(
        variant=Variant.OBJECT,
        workers=workers,
        worker_memory_mb=worker_memory_for(workload.neurons),
        memory_overhead_mb=MEMORY_OVERHEAD_MB,
    )
    engine = FSDInference(cloud, config)
    result = engine.infer(workload.model, workload.batch, plan)
    metrics = result.metrics
    transfers = max(1, metrics.total_messages_sent)
    return {
        "bytes_sent": metrics.total_bytes_sent,
        "nnz_per_target": metrics.total_nnz_sent / transfers,
        "per_sample_ms": result.per_sample_ms,
        "rows_sent": metrics.total_rows_sent,
    }


def test_table3_partitioning_comparison(benchmark):
    neurons = bench_neurons()[-2]  # the "N = 16384" stand-in
    workers = max(bench_workers())
    workload = build_workload(neurons)

    def run_both():
        hgp_plan = HypergraphPartitioner(seed=1).partition(workload.model, workers)
        rp_plan = RandomPartitioner(seed=1).partition(workload.model, workers)
        return {
            "HGP-DNN": _run_with_plan(workload, hgp_plan, workers),
            "RP": _run_with_plan(workload, rp_plan, workers),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    print_table(
        f"Table III -- FSD-Inf-Object communication under HGP-DNN vs RP "
        f"(scaled N={neurons}, P={workers}; paper N={paper_equivalent(neurons)}, P=42)",
        ["partitioning", "data volume sent (bytes)", "NNZ sent per target", "per-sample ms", "rows sent"],
        [
            ["HGP-DNN", results["HGP-DNN"]["bytes_sent"], results["HGP-DNN"]["nnz_per_target"],
             results["HGP-DNN"]["per_sample_ms"], results["HGP-DNN"]["rows_sent"]],
            ["RP", results["RP"]["bytes_sent"], results["RP"]["nnz_per_target"],
             results["RP"]["per_sample_ms"], results["RP"]["rows_sent"]],
        ],
    )

    reduction = results["RP"]["bytes_sent"] / max(1, results["HGP-DNN"]["bytes_sent"])
    print(f"communication volume reduction (RP / HGP-DNN): {reduction:.2f}x "
          f"(paper reports ~9.3x at full scale)")

    # Qualitative shape: a substantial reduction in communicated volume and a
    # per-sample runtime that is no worse.  (At paper scale the volume
    # reduction also translates into a large runtime win because transfers are
    # bandwidth-bound; at the scaled sizes communication is latency-bound, so
    # the runtime effect is small.)
    assert results["HGP-DNN"]["bytes_sent"] < 0.5 * results["RP"]["bytes_sent"]
    assert results["HGP-DNN"]["per_sample_ms"] <= results["RP"]["per_sample_ms"] * 1.05

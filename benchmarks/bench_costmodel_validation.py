"""Section VI-F -- validation of the analytical cost model.

The paper captures fine-grained metrics from a run (N = 16384, P = 20,
10 000 samples), predicts the bill with the cost model of Section IV, and
compares against the AWS Cost & Usage report, finding agreement to the cent
for both FSD-Inf-Queue and FSD-Inf-Object.

The benchmark repeats the experiment on the simulated substrate: it runs the
"N = 16384" stand-in with a mid-size worker pool under both channels,
predicts compute and communication charges from the captured metrics alone,
and compares them against the simulated billing ledger.
"""

import pytest

from repro import Variant, validate_cost_model

from common import (
    bench_neurons,
    bench_workers,
    build_workload,
    paper_equivalent,
    print_table,
    run_engine,
    worker_memory_for,
)


def test_costmodel_prediction_vs_billed(benchmark):
    neurons = bench_neurons()[-2]  # the "N = 16384" stand-in
    workers = sorted(bench_workers())[len(bench_workers()) // 2]  # mid-size pool ("P = 20")
    workload = build_workload(neurons)

    def run_and_validate():
        reports = {}
        for variant in (Variant.QUEUE, Variant.OBJECT):
            result = run_engine(workload, variant, workers)
            memory = worker_memory_for(neurons)
            reports[variant] = validate_cost_model(result, worker_memory_mb=memory)
        return reports

    reports = benchmark.pedantic(run_and_validate, rounds=1, iterations=1)

    rows = []
    for variant, report in reports.items():
        summary = report.summary()
        rows.append(
            [
                f"FSD-Inf-{variant.value.capitalize()} predicted",
                summary["predicted_compute"],
                summary["predicted_communication"],
                summary["predicted_total"],
            ]
        )
        rows.append(
            [
                f"FSD-Inf-{variant.value.capitalize()} actual",
                summary["actual_compute"],
                summary["actual_communication"],
                summary["actual_total"],
            ]
        )
    print_table(
        f"Section VI-F -- cost model validation (scaled N={neurons}, P={workers}; "
        f"paper N={paper_equivalent(neurons)}, P=20)",
        ["configuration", "compute $", "communication $", "total $"],
        rows,
    )
    for variant, report in reports.items():
        print(
            f"{variant.value}: compute error {report.compute_error:.2%}, "
            f"communication error {report.communication_error:.2%}, "
            f"total error {report.total_error:.2%}"
        )

    # The paper reports cent-exact agreement; the simulated reproduction
    # reconstructs billing increments from aggregate metrics, so a few percent
    # of error is tolerated.
    for report in reports.values():
        assert report.total_error < 0.10
        assert report.compute_error < 0.10
        assert report.communication_error < 0.15

"""Section IV-C -- design recommendations: when serial, queue or object wins.

The paper concludes its cost analysis with a decision procedure: serial
execution for models that fit one FaaS instance, the pub-sub/queueing channel
once distribution is required (cheapest with growing parallelism), and object
storage for very large per-target data volumes.

This benchmark sweeps the scaled model sizes, measures the per-query cost and
latency of all three variants where they can run, and checks that the
recommendation procedure (driven only by workload statistics, not by the
measurements) picks a variant that is at least cost-competitive among the
feasible ones.
"""

import pytest

from repro import (
    FunctionTimeoutError,
    OutOfMemoryError,
    Variant,
    WorkloadProfile,
    recommend_variant,
)

from common import (
    SCALED_SERIAL_MEMORY_MB,
    bench_neurons,
    build_workload,
    paper_equivalent,
    print_table,
    run_engine,
)

#: scaled "single instance" capacity fed to the recommendation procedure.  At
#: paper scale the reference capacity is the 10 GB Lambda cap; the scaled
#: serial variant has ~10 MB of headroom beyond the runtime overhead, so the
#: decision procedure is driven by the same ratio: the three smaller scaled
#: models (0.2-2.6 MB) fit comfortably, the largest (~8.6 MB) does not.
SCALED_PROFILE_MEMORY_MB = 10


def _measure_all_variants(workload):
    measurements = {}
    try:
        measurements[Variant.SERIAL] = run_engine(
            workload, Variant.SERIAL, workers=1, serial_memory_mb=SCALED_SERIAL_MEMORY_MB
        )
    except (OutOfMemoryError, FunctionTimeoutError):
        # The model either does not fit the single instance or cannot finish
        # within the FaaS runtime limit -- serial execution is infeasible.
        measurements[Variant.SERIAL] = None
    measurements[Variant.QUEUE] = run_engine(workload, Variant.QUEUE, workers=8)
    measurements[Variant.OBJECT] = run_engine(workload, Variant.OBJECT, workers=8)
    return measurements


def test_design_recommendation_sweep(benchmark):
    neurons_list = bench_neurons()

    def sweep():
        outcome = {}
        for neurons in neurons_list:
            workload = build_workload(neurons)
            measurements = _measure_all_variants(workload)
            plan = workload.plan_for(8)
            queue_result = measurements[Variant.QUEUE]
            # Expected compressed bytes each worker ships per target per layer.
            transfers = max(1, queue_result.metrics.total_messages_sent)
            per_target_bytes = queue_result.metrics.total_bytes_sent / transfers
            profile = WorkloadProfile(
                model_bytes=workload.model.nbytes(),
                workers=8,
                per_target_layer_bytes=per_target_bytes,
                max_faas_memory_mb=SCALED_PROFILE_MEMORY_MB,
            )
            outcome[neurons] = (measurements, recommend_variant(profile))
        return outcome

    outcome = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for neurons, (measurements, recommendation) in outcome.items():
        def cell(variant):
            result = measurements[variant]
            return "OOM" if result is None else f"{result.cost.total:.2e} / {result.latency_seconds:.2f}s"

        rows.append(
            [
                f"{neurons} (paper {paper_equivalent(neurons)})",
                cell(Variant.SERIAL),
                cell(Variant.QUEUE),
                cell(Variant.OBJECT),
                recommendation.variant.value,
            ]
        )
    print_table(
        "Section IV-C -- per-query cost / latency per variant and the recommended choice",
        ["N", "serial ($/latency)", "queue ($/latency)", "object ($/latency)", "recommended"],
        rows,
    )

    smallest_measurements, smallest_rec = outcome[neurons_list[0]]
    largest_measurements, largest_rec = outcome[neurons_list[-1]]
    # Small models: serial execution is feasible and recommended.
    assert smallest_measurements[Variant.SERIAL] is not None
    assert smallest_rec.variant is Variant.SERIAL
    # The largest scaled model does not fit the scaled single-instance memory,
    # so a distributed variant must be recommended.
    assert largest_measurements[Variant.SERIAL] is None
    assert largest_rec.variant in (Variant.QUEUE, Variant.OBJECT)
    # The queue channel is the cheaper distributed option at this parallelism.
    assert (
        largest_measurements[Variant.QUEUE].cost.total
        <= largest_measurements[Variant.OBJECT].cost.total
    )

"""Table II -- end-to-end per-sample runtime of the serverless platforms.

Per (scaled) model size, the benchmark reports per-sample runtime for the best
parallel FSD-Inference configuration, for FSD-Inf-Serial, and for the managed
serverless endpoint baseline (Sage-SL-Inf).

Qualitative claims checked: the serial variant wins for the smallest model,
the parallel variants win for the larger models, and the managed endpoint is
never faster than FSD-Inf-Serial (and cannot run the largest model at all).
"""

import pytest

from repro import (
    EndpointInfeasibleError,
    OutOfMemoryError,
    Variant,
    run_endpoint_query,
)

from common import (
    scaled_cloud,
    bench_neurons,
    bench_workers,
    build_workload,
    paper_equivalent,
    print_table,
    run_engine,
)


def _best_parallel(workload):
    best = None
    for variant in (Variant.QUEUE, Variant.OBJECT):
        for workers in bench_workers():
            result = run_engine(workload, variant, workers)
            key = (result.per_sample_ms, variant.value, workers)
            if best is None or key < best:
                best = key
    return best


def _serial_per_sample(workload):
    try:
        result = run_engine(workload, Variant.SERIAL, workers=1)
        return result.per_sample_ms
    except OutOfMemoryError:
        return None


def _endpoint_per_sample(workload):
    try:
        result = run_endpoint_query(scaled_cloud(), workload.model, workload.batch)
        return result.per_sample_ms, result.processed_samples
    except EndpointInfeasibleError:
        return None, 0


def test_table2_per_sample_runtime(benchmark):
    rows = []
    measurements = {}
    neurons_list = bench_neurons()

    def collect():
        data = {}
        for neurons in neurons_list:
            workload = build_workload(neurons)
            best_ms, best_variant, best_workers = _best_parallel(workload)
            serial_ms = _serial_per_sample(workload)
            endpoint_ms, endpoint_samples = _endpoint_per_sample(workload)
            data[neurons] = {
                "parallel_ms": best_ms,
                "parallel_config": f"{best_variant}, P={best_workers}",
                "serial_ms": serial_ms,
                "endpoint_ms": endpoint_ms,
                "endpoint_samples": endpoint_samples,
            }
        return data

    measurements = benchmark.pedantic(collect, rounds=1, iterations=1)

    for neurons, row in measurements.items():
        rows.append(
            [
                f"{neurons} (paper {paper_equivalent(neurons)})",
                row["parallel_ms"],
                row["parallel_config"],
                row["serial_ms"] if row["serial_ms"] is not None else "OOM",
                row["endpoint_ms"] if row["endpoint_ms"] is not None else "infeasible",
            ]
        )
    print_table(
        "Table II -- end-to-end per-sample runtime (ms)",
        ["N", "FSD-Inf-Parallel", "best parallel config", "FSD-Inf-Serial", "Sage-SL-Inf"],
        rows,
    )

    smallest = measurements[neurons_list[0]]
    largest = measurements[neurons_list[-1]]
    # Serial wins for small models; parallel wins for the largest model.
    assert smallest["serial_ms"] is not None
    assert smallest["serial_ms"] < smallest["parallel_ms"]
    if largest["serial_ms"] is not None:
        assert largest["parallel_ms"] < largest["serial_ms"]
    # The managed endpoint is never a dramatic improvement over FSD-Inf-Serial
    # (Table II shows it slightly behind serial at paper scale; at the scaled
    # batch size the per-batch fixed overheads favour the endpoint slightly,
    # see EXPERIMENTS.md).
    for row in measurements.values():
        if row["endpoint_ms"] is not None and row["serial_ms"] is not None:
            assert row["endpoint_ms"] >= row["serial_ms"] * 0.3

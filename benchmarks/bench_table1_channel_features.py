"""Table I -- feature matrix of candidate inter-worker communication channels.

The paper's Table I compares cloud service categories on the properties an
inter-worker channel needs.  The two channels FSD-Inference actually builds
(pub-sub + queues, object storage) are implemented in this repository, so
their columns are reproduced from the live channel capability metadata; the
benchmark also measures how quickly each channel's resources can be prepared
for a 62-worker deployment (the "no reconfiguration needed" property).
"""

from repro import CloudEnvironment, ObjectChannel, QueueChannel

from common import print_table


def _capability_rows():
    channels = [QueueChannel(CloudEnvironment()), ObjectChannel(CloudEnvironment())]
    rows = []
    for channel in channels:
        caps = channel.capabilities
        rows.append(
            [
                caps.name,
                "yes" if caps.serverless else "no",
                "yes" if caps.low_latency_high_throughput else "no",
                "yes" if caps.cost_effective else "partial",
                "yes" if caps.flexible_payloads else "no",
                "yes" if caps.many_producers_consumers else "no",
                "yes" if caps.service_side_filtering else "no",
                "yes" if caps.direct_consumer_access else "no",
            ]
        )
    return rows


def test_table1_channel_feature_matrix(benchmark):
    def prepare_channels():
        cloud = CloudEnvironment()
        queue_channel = QueueChannel(cloud)
        object_channel = ObjectChannel(cloud)
        queue_channel.prepare(62)
        object_channel.prepare(62)
        return cloud

    cloud = benchmark.pedantic(prepare_channels, rounds=3, iterations=1)

    rows = _capability_rows()
    print_table(
        "Table I -- communication channel feature profiles (implemented channels)",
        [
            "channel",
            "serverless",
            "low lat/high thr",
            "cost-effective",
            "flexible payloads",
            "many prod/cons",
            "service-side filtering",
            "direct consumer access",
        ],
        rows,
    )

    # The qualitative profile of Table I's two selected columns.
    queue_caps = QueueChannel.capabilities
    object_caps = ObjectChannel.capabilities
    assert queue_caps.serverless and object_caps.serverless
    assert queue_caps.service_side_filtering and not object_caps.service_side_filtering
    assert object_caps.flexible_payloads and not queue_caps.flexible_payloads
    # Preparing resources for 62 workers touches 10 topics + 62 queues + 10 buckets.
    assert len(cloud.queues.list_queues()) == 62

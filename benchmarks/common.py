"""Shared scaffolding for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures on the
simulated substrate.  The paper-scale workloads (N up to 65 536 neurons,
120 layers, 10 000-sample batches, up to 62 workers) are far beyond what a
laptop-scale pure-Python run should execute per benchmark, so each paper
configuration is mapped to a scaled-down stand-in with the same *structure*
(relative model sizes, same worker sweep shape, same per-N memory story).
The mapping is documented here and in EXPERIMENTS.md; the paper-scale values
can be requested with environment variables:

* ``FSD_BENCH_NEURONS``  -- comma-separated neuron counts (default scaled set)
* ``FSD_BENCH_LAYERS``   -- layer count (default 8)
* ``FSD_BENCH_SAMPLES``  -- batch size (default 32)
* ``FSD_BENCH_WORKERS``  -- comma-separated worker counts (default 2,4,6,8)
* ``FSD_BENCH_FULL=1``   -- use the paper's full configuration (slow)

Performance note: the engine's per-layer loop computes in *compacted local
dimensions* (see "Performance architecture" in ROADMAP.md).  Simulated
latencies/costs depend only on sparsity structure, so wall-clock benchmark
work (``bench_hotpath.py``) can shrink while every simulated number stays
bit-for-bit fixed; benchmarks must never rely on wall-clock timing for the
paper's figures.
"""

from __future__ import annotations

import json
import os
import subprocess
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import (
    CloudEnvironment,
    EngineConfig,
    FSDInference,
    GraphChallengeConfig,
    HypergraphPartitioner,
    InferenceResult,
    LatencyModel,
    PartitionPlan,
    Variant,
    build_graph_challenge_model,
    generate_input_batch,
)

#: scaled-down neuron counts standing in for the paper's 1024/4096/16384/65536.
SCALED_NEURONS = (256, 512, 1024, 2048)
#: which paper neuron count each scaled value represents.
SCALED_TO_PAPER = {256: 1024, 512: 4096, 1024: 16384, 2048: 65536}
#: scaled-down worker sweep standing in for the paper's 8/20/42/62.
SCALED_WORKERS = (2, 4, 6, 8)
SCALED_LAYERS = 8
SCALED_SAMPLES = 32
#: per-worker memory (MB) per scaled neuron count, shaped like the paper's
#: 1000/1500/2000/4000 MB allocations.
SCALED_WORKER_MEMORY = {256: 512, 512: 768, 1024: 1024, 2048: 2048}
#: FaaS runtime overhead assumed for the memory story (Python + numpy/scipy).
MEMORY_OVERHEAD_MB = 118.0
#: single-instance memory used for the scaled serial variant.  Together with
#: the runtime overhead this reproduces the paper's memory story: the largest
#: scaled model does not fit a single instance, the others do.
SCALED_SERIAL_MEMORY_MB = 128
#: The scaled workloads execute roughly two to three orders of magnitude less
#: arithmetic than the paper's 120-layer, 10 000-sample batches, while the
#: modelled communication latencies stay at their realistic absolute values.
#: To keep the compute-to-communication ratio of the paper-scale workloads
#: (which is what determines where parallelism starts to pay off), every
#: platform's modelled per-core arithmetic throughput is scaled down by the
#: same factor.  A full-scale run (``FSD_BENCH_FULL=1``) uses real throughputs.
COMPUTE_SCALE = 0.0005


def scaled_latency() -> LatencyModel:
    """Latency model with uniformly scaled compute throughputs (see above)."""
    if os.environ.get("FSD_BENCH_FULL") == "1":
        return LatencyModel()
    # One shared implementation of the four-field throughput scaling (the
    # serving backend specs use the same helper), so the calibration cannot
    # drift between bench-built and spec-built backends.
    from repro.serving.factories import compute_scaled_latency

    return compute_scaled_latency(COMPUTE_SCALE)


def scaled_cloud() -> CloudEnvironment:
    """A fresh cloud environment using the scaled compute calibration."""
    return CloudEnvironment(latency=scaled_latency())


def _env_ints(name: str, default: Tuple[int, ...]) -> Tuple[int, ...]:
    raw = os.environ.get(name)
    if not raw:
        return default
    return tuple(int(part) for part in raw.split(",") if part.strip())


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    return int(raw) if raw else default


def bench_neurons() -> Tuple[int, ...]:
    if os.environ.get("FSD_BENCH_FULL") == "1":
        return (1024, 4096, 16384, 65536)
    return _env_ints("FSD_BENCH_NEURONS", SCALED_NEURONS)


def bench_workers() -> Tuple[int, ...]:
    if os.environ.get("FSD_BENCH_FULL") == "1":
        return (8, 20, 42, 62)
    return _env_ints("FSD_BENCH_WORKERS", SCALED_WORKERS)


def bench_layers() -> int:
    if os.environ.get("FSD_BENCH_FULL") == "1":
        return 120
    return _env_int("FSD_BENCH_LAYERS", SCALED_LAYERS)


def bench_samples() -> int:
    if os.environ.get("FSD_BENCH_FULL") == "1":
        return 10_000
    return _env_int("FSD_BENCH_SAMPLES", SCALED_SAMPLES)


def paper_equivalent(neurons: int) -> int:
    """The paper neuron count a scaled configuration stands in for."""
    return SCALED_TO_PAPER.get(neurons, neurons)


def worker_memory_for(neurons: int) -> Optional[int]:
    return SCALED_WORKER_MEMORY.get(neurons)


@dataclass
class BenchWorkload:
    """One prepared (model, batch, plan cache) benchmark workload."""

    neurons: int
    layers: int
    samples: int
    model: object
    batch: object
    plans: Dict[Tuple[int, str], PartitionPlan]

    def plan_for(self, workers: int, partitioner=None) -> PartitionPlan:
        partitioner = partitioner or HypergraphPartitioner(seed=1)
        key = (workers, partitioner.name)
        if key not in self.plans:
            self.plans[key] = partitioner.partition(self.model, workers)
        return self.plans[key]


_WORKLOAD_CACHE: Dict[Tuple[int, int, int], BenchWorkload] = {}


def build_workload(neurons: int, layers: Optional[int] = None, samples: Optional[int] = None) -> BenchWorkload:
    """Build (and cache) the synthetic Graph Challenge workload for ``neurons``."""
    layers = layers if layers is not None else bench_layers()
    samples = samples if samples is not None else bench_samples()
    key = (neurons, layers, samples)
    if key in _WORKLOAD_CACHE:
        return _WORKLOAD_CACHE[key]
    config = GraphChallengeConfig(
        neurons=neurons,
        layers=layers,
        nnz_per_row=min(64, max(8, neurons // 32)),
        num_communities=max(16, neurons // 32),
        community_link_fraction=0.93,
        seed=7,
    )
    model = build_graph_challenge_model(config)
    batch = generate_input_batch(neurons, samples=samples, density=0.25, seed=11)
    workload = BenchWorkload(
        neurons=neurons, layers=layers, samples=samples, model=model, batch=batch, plans={}
    )
    _WORKLOAD_CACHE[key] = workload
    return workload


def run_engine(
    workload: BenchWorkload,
    variant: Variant,
    workers: int,
    cloud: Optional[CloudEnvironment] = None,
    **config_overrides,
) -> InferenceResult:
    """Run one FSD-Inference query over ``workload`` and return the result."""
    cloud = cloud or scaled_cloud()
    if variant is Variant.SERIAL:
        config = EngineConfig(
            variant=variant,
            workers=1,
            memory_overhead_mb=MEMORY_OVERHEAD_MB,
            **config_overrides,
        )
        engine = FSDInference(cloud, config)
        return engine.infer(workload.model, workload.batch)
    config = EngineConfig(
        variant=variant,
        workers=workers,
        worker_memory_mb=config_overrides.pop("worker_memory_mb", worker_memory_for(workload.neurons)),
        memory_overhead_mb=MEMORY_OVERHEAD_MB,
        **config_overrides,
    )
    engine = FSDInference(cloud, config)
    plan = workload.plan_for(workers)
    return engine.infer(workload.model, workload.batch, plan)


def print_table(title: str, headers: List[str], rows: List[List[object]]) -> None:
    """Render a simple aligned text table (the benches print paper-style rows)."""
    formatted = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in formatted)) if formatted else len(headers[col])
        for col in range(len(headers))
    ]
    line = " | ".join(header.ljust(width) for header, width in zip(headers, widths))
    separator = "-+-".join("-" * width for width in widths)
    print(f"\n=== {title} ===")
    print(line)
    print(separator)
    for row in formatted:
        print(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    print()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def append_record(path: Path, record: dict, reference_check=None) -> None:
    """Append one benchmark record to the JSON history file at ``path``.

    Every benchmark harness shares this exact read-modify-write: a missing or
    corrupt history starts fresh, the record is appended, and the file is
    rewritten with a trailing newline.  ``reference_check`` is an optional
    zero-argument callable run *before* anything is written (the serving
    reference-fingerprint assertions of bench_campaign/bench_planner), so a
    failed cross-benchmark invariant leaves the history untouched.
    """
    if reference_check is not None:
        reference_check()
    history = {"records": []}
    if path.exists():
        try:
            history = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            pass
    history.setdefault("records", []).append(record)
    path.write_text(json.dumps(history, indent=2) + "\n")


def git_rev() -> str:
    """Short git revision of the repo (benchmark record provenance)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent.parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
        return out.stdout.strip() or "unknown"
    except Exception:
        return "unknown"


# -- shared serving-bench substrate -------------------------------------------
#
# bench_serving.py and bench_campaign.py must replay the SAME trace through
# the SAME FSD backend: the campaign's poisson/fsd/no-policy cell is asserted
# to reproduce bench_serving's recorded fingerprint bit-for-bit, so the grid
# constants and backend construction live here, in exactly one place.

#: full serving trace: >= 100 queries of mixed model sizes over a 24 h horizon.
SERVING_FULL_NEURONS = (256, 512)
SERVING_FULL_BATCH = 16
SERVING_FULL_QUERIES = 104  # 52 queries per model size
SERVING_QUICK_NEURONS = (256,)
SERVING_QUICK_BATCH = 8
SERVING_QUICK_QUERIES = 12
SERVING_LAYERS = 6
SERVING_WORKERS = 4
#: arrival seed of the serving trace (and of the campaign's Poisson scenario).
SERVING_SEED = 29


#: ``--scale`` trace sizes (query counts) for the vectorized replay sweep.
#: The full sweep ends on a million-query Poisson day; quick mode (the CI
#: smoke) replays one ~100k-query trace.
SERVING_SCALE_SIZES_FULL = (10_000, 100_000, 1_000_000)
SERVING_SCALE_SIZES_QUICK = (100_000,)
#: queries in the downsampled head used for the exact-loop baseline + the
#: bit-identity check (the exact loop replays ~tens of queries per second,
#: so the baseline is measured on a head and reported as queries/second).
SERVING_SCALE_HEAD_FULL = 128
SERVING_SCALE_HEAD_QUICK = 64


def serving_grid(quick: bool) -> Tuple[Tuple[int, ...], int, int]:
    """(neuron counts, batch size, query count) of the serving benchmarks."""
    if quick:
        return SERVING_QUICK_NEURONS, SERVING_QUICK_BATCH, SERVING_QUICK_QUERIES
    return SERVING_FULL_NEURONS, SERVING_FULL_BATCH, SERVING_FULL_QUERIES


def serving_scale_plan(quick: bool) -> Tuple[Tuple[int, ...], int]:
    """(trace sizes, exact-head query count) of the ``--scale`` sweep."""
    if quick:
        return SERVING_SCALE_SIZES_QUICK, SERVING_SCALE_HEAD_QUICK
    return SERVING_SCALE_SIZES_FULL, SERVING_SCALE_HEAD_FULL


def serving_bench_workloads(quick: bool) -> Dict[int, BenchWorkload]:
    """The prepared per-size bench workloads the serving benchmarks share."""
    neurons, batch_size, _ = serving_grid(quick)
    return {n: build_workload(n, SERVING_LAYERS, batch_size) for n in neurons}


def serving_batch_builder(workloads: Dict[int, BenchWorkload]):
    """``QueryWorkloadFactory`` batch builder over prepared bench workloads."""

    def batch_for(neurons: int, samples: int):
        prepared = workloads[neurons].batch
        if samples == prepared.shape[1]:
            return prepared
        if samples < prepared.shape[1]:
            return prepared[:, :samples]
        # Tail-absorbing queries can exceed the prepared width; regenerate
        # with the build_workload parameters rather than silently truncating.
        return generate_input_batch(neurons, samples=samples, density=0.25, seed=11)

    return batch_for


def serving_fsd_backend(workloads: Dict[int, BenchWorkload]):
    """The serving benchmarks' FSD backend (fresh scaled cloud per call)."""
    from repro import FSDServingBackend, QueryWorkloadFactory

    factory = QueryWorkloadFactory(
        model_builder=lambda n: workloads[n].model,
        batch_builder=serving_batch_builder(workloads),
    )
    return FSDServingBackend(
        scaled_cloud(),
        factory,
        config_for=lambda n: EngineConfig(
            variant=Variant.QUEUE,
            workers=SERVING_WORKERS,
            worker_memory_mb=worker_memory_for(n),
            memory_overhead_mb=MEMORY_OVERHEAD_MB,
        ),
        plan_for=lambda n, model: workloads[n].plan_for(SERVING_WORKERS),
    )

"""Figure 4 -- daily cost vs query volume under a sporadic workload.

The paper projects the daily cost of serving a sporadic workload (queries of
10 000 samples spread evenly over the four model sizes) with three
provisioning strategies:

* FSD-Inference (per-query serverless cost; the cheapest adequate variant is
  chosen per model size),
* Server-Always-On (a standing fleet of two c5.12xlarge instances, billed
  around the clock regardless of load), and
* Server-Job-Scoped (a right-sized instance booted per query and billed for
  the query duration only).

The benchmark measures the per-query cost of each strategy once per model
size on the scaled workload and projects daily totals across the paper's
query-volume sweep.  Qualitative claims checked: always-on cost is flat in
query volume and dominates at low volumes; FSD-Inference is far cheaper than
always-on until very high daily volumes; job-scoped is price-competitive with
FSD-Inference but (per Figure 5) at much higher latency.
"""

import pytest

from repro import (
    OutOfMemoryError,
    ServerMode,
    Variant,
    always_on_daily_cost,
    generate_sporadic_workload,
    run_server_query,
)

from common import (
    scaled_cloud,
    bench_neurons,
    bench_samples,
    build_workload,
    paper_equivalent,
    print_table,
    run_engine,
)

#: daily sample volumes swept in Figure 4 (thousands of samples per 24 hours).
DAILY_SAMPLE_VOLUMES = (10_000, 40_000, 160_000, 640_000, 2_560_000, 5_120_000)


def _fsd_cost_per_query(workload):
    """Cheapest adequate FSD-Inference variant cost for one query."""
    costs = []
    try:
        serial = run_engine(workload, Variant.SERIAL, workers=1)
        costs.append(serial.cost.total)
    except OutOfMemoryError:
        pass
    queue = run_engine(workload, Variant.QUEUE, workers=4)
    costs.append(queue.cost.total)
    return min(costs)


def test_fig4_daily_cost_vs_query_volume(benchmark):
    neurons_list = bench_neurons()

    def measure_per_query_costs():
        fsd, job_scoped = {}, {}
        for neurons in neurons_list:
            workload = build_workload(neurons)
            fsd[neurons] = _fsd_cost_per_query(workload)
            job = run_server_query(
                scaled_cloud(), workload.model, workload.batch, ServerMode.JOB_SCOPED
            )
            job_scoped[neurons] = job.cost
        return fsd, job_scoped

    fsd_cost, job_cost = benchmark.pedantic(measure_per_query_costs, rounds=1, iterations=1)

    always_on = always_on_daily_cost(scaled_cloud(), instances=2, hours=24.0)
    samples_per_query = bench_samples()

    rows = []
    crossover_found = False
    for daily_samples in DAILY_SAMPLE_VOLUMES:
        workload_plan = generate_sporadic_workload(
            daily_samples, batch_size=samples_per_query, neuron_counts=neurons_list, seed=5
        )
        queries_by_n = {n: len(qs) for n, qs in workload_plan.queries_by_neurons().items()}
        fsd_daily = sum(fsd_cost[n] * count for n, count in queries_by_n.items())
        job_daily = sum(job_cost[n] * count for n, count in queries_by_n.items())
        rows.append([daily_samples, fsd_daily, always_on, job_daily])
        if fsd_daily > always_on:
            crossover_found = True

    print_table(
        "Figure 4 -- daily cost ($) vs daily sample volume "
        f"(scaled query size = {samples_per_query} samples; model sizes "
        f"{[paper_equivalent(n) for n in neurons_list]} at paper scale)",
        ["samples/day", "FSD-Inference", "Server-Always-On", "Server-Job-Scoped"],
        rows,
    )

    # Qualitative shape of Figure 4: always-on is flat and dominates at low
    # volume; FSD is much cheaper at the low end; job-scoped tracks FSD within
    # an order of magnitude.
    low_volume = rows[0]
    assert low_volume[1] < low_volume[2] / 10, "FSD must be >10x cheaper than always-on at low volume"
    assert all(row[2] == pytest.approx(always_on) for row in rows)
    assert rows[-1][1] > rows[0][1] * 100, "FSD cost grows with query volume"

"""Figure 4 -- daily cost vs query volume under a sporadic workload.

The paper projects the daily cost of serving a sporadic workload (queries of
10 000 samples spread evenly over the four model sizes) with three
provisioning strategies:

* FSD-Inference (per-query serverless cost; the cheapest adequate variant is
  chosen per model size),
* Server-Always-On (a standing fleet of two c5.12xlarge instances, billed
  around the clock regardless of load), and
* Server-Job-Scoped (a right-sized instance booted per query and billed for
  the query duration only).

Since the serving layer landed, the per-query measurements run through
:class:`repro.serving.InferenceServer`: a small sporadic measurement trace
(a few queries per model size) is replayed through the *identical*
event-driven scheduler for both the FSD backend (one shared cloud timeline,
warm-environment reuse between queries) and the job-scoped server backend,
and the measured mean per-query costs are projected across the paper's
query-volume sweep.  Qualitative claims checked: always-on cost is flat in
query volume and dominates at low volumes; FSD-Inference is far cheaper than
always-on until very high daily volumes; job-scoped is price-competitive with
FSD-Inference but (per Figure 5) at much higher latency.

A fourth strategy exercises the serving layer's ``BatchCoalescingPolicy``:
the same measurement trace is replayed with same-model queries arriving
within a one-hour window merged into single batches (gated by the analytical
cost model), which must not cost more than the unbatched FSD replay -- the
per-query fixed charges are paid once per merged batch.
"""

import pytest

from repro import (
    BatchCoalescingPolicy,
    EngineConfig,
    FSDServingBackend,
    InferenceServer,
    OutOfMemoryError,
    QueryWorkloadFactory,
    ServerMode,
    ServerServingBackend,
    ServingConfig,
    Variant,
    always_on_daily_cost,
    generate_input_batch,
    generate_sporadic_workload,
)

from common import (
    MEMORY_OVERHEAD_MB,
    scaled_cloud,
    bench_neurons,
    bench_samples,
    build_workload,
    paper_equivalent,
    print_table,
    run_engine,
    worker_memory_for,
)

#: daily sample volumes swept in Figure 4 (thousands of samples per 24 hours).
DAILY_SAMPLE_VOLUMES = (10_000, 40_000, 160_000, 640_000, 2_560_000, 5_120_000)
#: queries per model size in the serving-layer measurement trace.
MEASURE_QUERIES_PER_SIZE = 3
FSD_WORKERS = 4
#: coalescing window of the batched FSD measurement (one hour: wide enough to
#: merge the measurement trace's close same-model arrivals).
COALESCE_WINDOW_SECONDS = 3600.0


def _cheapest_variant(workload):
    """Cheapest adequate FSD-Inference variant for one query (probe runs)."""
    candidates = []
    try:
        serial = run_engine(workload, Variant.SERIAL, workers=1)
        candidates.append((serial.cost.total, Variant.SERIAL))
    except OutOfMemoryError:
        pass
    queue = run_engine(workload, Variant.QUEUE, workers=FSD_WORKERS)
    candidates.append((queue.cost.total, Variant.QUEUE))
    return min(candidates)[1]


def _serving_factory(workloads):
    def batch_for(neurons: int, samples: int):
        batch = workloads[neurons].batch
        if samples == batch.shape[1]:
            return batch
        if samples < batch.shape[1]:
            return batch[:, :samples]
        # Tail-absorbing queries can exceed the prepared width; regenerate
        # with the build_workload parameters rather than silently truncating.
        return generate_input_batch(neurons, samples=samples, density=0.25, seed=11)

    return QueryWorkloadFactory(
        model_builder=lambda neurons: workloads[neurons].model,
        batch_builder=batch_for,
    )


def test_fig4_daily_cost_vs_query_volume(benchmark):
    neurons_list = bench_neurons()
    samples_per_query = bench_samples()
    workloads = {n: build_workload(n) for n in neurons_list}
    measurement_trace = generate_sporadic_workload(
        daily_samples=MEASURE_QUERIES_PER_SIZE * samples_per_query * len(neurons_list),
        batch_size=samples_per_query,
        neuron_counts=neurons_list,
        seed=5,
    )

    def measure_per_query_costs():
        variants = {n: _cheapest_variant(workloads[n]) for n in neurons_list}

        def fsd_config(neurons):
            if variants[neurons] is Variant.SERIAL:
                return EngineConfig(
                    variant=Variant.SERIAL, workers=1, memory_overhead_mb=MEMORY_OVERHEAD_MB
                )
            return EngineConfig(
                variant=Variant.QUEUE,
                workers=FSD_WORKERS,
                worker_memory_mb=worker_memory_for(neurons),
                memory_overhead_mb=MEMORY_OVERHEAD_MB,
            )

        def fsd_server(policies=()):
            return InferenceServer(
                FSDServingBackend(
                    scaled_cloud(),
                    _serving_factory(workloads),
                    config_for=fsd_config,
                    plan_for=lambda n, model: workloads[n].plan_for(FSD_WORKERS),
                ),
                ServingConfig(policies=policies),
            )

        fsd_report = fsd_server().serve(measurement_trace)
        coalesced_report = fsd_server(
            policies=(BatchCoalescingPolicy(window_seconds=COALESCE_WINDOW_SECONDS),)
        ).serve(measurement_trace)

        job_server = InferenceServer(
            ServerServingBackend(
                scaled_cloud(), ServerMode.JOB_SCOPED, _serving_factory(workloads)
            )
        )
        job_report = job_server.serve(measurement_trace)
        return (
            fsd_report.mean_cost_per_query_by_neurons(),
            coalesced_report.mean_cost_per_query_by_neurons(),
            job_report.mean_cost_per_query_by_neurons(),
            coalesced_report.coalesced_query_count,
        )

    fsd_cost, coalesced_cost, job_cost, coalesced_queries = benchmark.pedantic(
        measure_per_query_costs, rounds=1, iterations=1
    )
    assert set(fsd_cost) == set(neurons_list)
    assert set(coalesced_cost) == set(neurons_list)
    assert set(job_cost) == set(neurons_list)
    # The one-hour window must actually merge some of the trace's close
    # same-model arrivals, and merging must not cost more than replaying the
    # queries unbatched (the cost model's per-query-economics prediction).
    assert coalesced_queries >= 2
    for n in neurons_list:
        assert coalesced_cost[n] <= fsd_cost[n] * (1 + 1e-9)
    assert sum(coalesced_cost.values()) < sum(fsd_cost.values())

    always_on = always_on_daily_cost(scaled_cloud(), instances=2, hours=24.0)

    rows = []
    for daily_samples in DAILY_SAMPLE_VOLUMES:
        workload_plan = generate_sporadic_workload(
            daily_samples, batch_size=samples_per_query, neuron_counts=neurons_list, seed=5
        )
        queries_by_n = {n: len(qs) for n, qs in workload_plan.queries_by_neurons().items()}
        fsd_daily = sum(fsd_cost[n] * count for n, count in queries_by_n.items())
        coalesced_daily = sum(coalesced_cost[n] * count for n, count in queries_by_n.items())
        job_daily = sum(job_cost[n] * count for n, count in queries_by_n.items())
        rows.append([daily_samples, fsd_daily, coalesced_daily, always_on, job_daily])

    print_table(
        "Figure 4 -- daily cost ($) vs daily sample volume "
        f"(scaled query size = {samples_per_query} samples; model sizes "
        f"{[paper_equivalent(n) for n in neurons_list]} at paper scale; "
        "per-query costs measured through the serving layer)",
        [
            "samples/day",
            "FSD-Inference",
            "FSD-Coalesced",
            "Server-Always-On",
            "Server-Job-Scoped",
        ],
        rows,
    )

    # Qualitative shape of Figure 4: always-on is flat and dominates at low
    # volume; FSD is much cheaper at the low end; job-scoped tracks FSD within
    # an order of magnitude; coalescing only ever lowers the FSD line.
    low_volume = rows[0]
    assert low_volume[1] < low_volume[3] / 10, "FSD must be >10x cheaper than always-on at low volume"
    assert all(row[3] == pytest.approx(always_on) for row in rows)
    assert rows[-1][1] > rows[0][1] * 100, "FSD cost grows with query volume"
    assert all(row[2] < row[1] for row in rows), "coalescing must drop the measured FSD daily cost"

"""Benchmark harness configuration.

``pytest benchmarks/ --benchmark-only`` regenerates every table and figure of
the paper's evaluation section on the simulated substrate.  Benchmarks print
their tables/series to stdout (run with ``-s`` to see them inline; they are
also summarised in EXPERIMENTS.md).
"""

import sys
from pathlib import Path

# Make the sibling ``common`` module importable regardless of rootdir.
sys.path.insert(0, str(Path(__file__).parent))

"""Tests for the metrics containers and smoke tests for the shipped examples."""

import runpy
import sys
from pathlib import Path

import pytest

from repro.core import InferenceMetrics, LayerMetrics, WorkerMetrics

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestLayerMetrics:
    def test_merge_counts_accumulates(self):
        layer = LayerMetrics(layer=0)
        layer.merge_counts(bytes_sent=100, publish_calls=2)
        layer.merge_counts(bytes_sent=50, poll_calls=1)
        assert layer.bytes_sent == 150
        assert layer.publish_calls == 2
        assert layer.poll_calls == 1


class TestInferenceMetrics:
    def _metrics(self):
        metrics = InferenceMetrics(
            variant="queue", num_workers=2, num_layers=2, num_neurons=16, batch_size=4
        )
        metrics.per_layer.append(
            LayerMetrics(layer=0, bytes_sent=10, publish_calls=1, poll_calls=2, compute_seconds=0.5)
        )
        metrics.per_layer.append(
            LayerMetrics(layer=1, bytes_sent=20, publish_calls=2, poll_calls=3, compute_seconds=1.5)
        )
        metrics.per_worker.append(WorkerMetrics(worker=0, runtime_seconds=3.0))
        metrics.per_worker.append(WorkerMetrics(worker=1, runtime_seconds=5.0))
        return metrics

    def test_totals_sum_layers(self):
        metrics = self._metrics()
        assert metrics.total_bytes_sent == 30
        assert metrics.total_publish_calls == 3
        assert metrics.total_poll_calls == 5
        assert metrics.total_compute_seconds == pytest.approx(2.0)

    def test_reduce_comm_included_in_totals(self):
        metrics = self._metrics()
        metrics.reduce_comm = LayerMetrics(layer=2, bytes_sent=5, publish_calls=1)
        assert metrics.total_bytes_sent == 35
        assert metrics.total_publish_calls == 4
        # but not in the per-layer compute aggregate
        assert metrics.total_compute_seconds == pytest.approx(2.0)

    def test_worker_runtime_aggregates(self):
        metrics = self._metrics()
        assert metrics.mean_worker_runtime_seconds == pytest.approx(4.0)
        assert metrics.max_worker_runtime_seconds == pytest.approx(5.0)

    def test_empty_metrics_are_zero(self):
        metrics = InferenceMetrics(
            variant="serial", num_workers=1, num_layers=0, num_neurons=4, batch_size=1
        )
        assert metrics.total_bytes_sent == 0
        assert metrics.mean_worker_runtime_seconds == 0.0
        assert metrics.batch_summary()["total_publish_calls"] == 0

    def test_per_layer_table_has_one_row_per_layer(self):
        metrics = self._metrics()
        table = metrics.per_layer_table()
        assert len(table) == 2
        assert table[0]["layer"] == 0
        assert table[1]["bytes_sent"] == 20


@pytest.mark.parametrize(
    "example",
    [
        "quickstart.py",
        "partitioning_study.py",
        "cost_model_walkthrough.py",
        "trace_query.py",
    ],
)
def test_examples_run_end_to_end(example, capsys):
    """The shipped examples execute without errors and produce output."""
    runpy.run_path(str(EXAMPLES_DIR / example), run_name="__main__")
    captured = capsys.readouterr()
    assert captured.out.strip()

"""Tests for the simulated FaaS platform (Lambda analogue)."""

import pytest

from repro.cloud import (
    ConcurrencyLimitError,
    FunctionConfig,
    FunctionTimeoutError,
    InvalidRequestError,
    OutOfMemoryError,
    ResourceAlreadyExistsError,
    ResourceNotFoundError,
    VirtualClock,
)
from repro.cloud.billing import SERVICE_FAAS
from repro.cloud.faas import MAX_MEMORY_MB, MEMORY_MB_PER_VCPU, MIN_MEMORY_MB


class TestFunctionConfig:
    def test_vcpu_proportional_to_memory(self):
        config = FunctionConfig(name="f", memory_mb=int(MEMORY_MB_PER_VCPU))
        assert config.vcpus == pytest.approx(1.0, rel=1e-3)
        assert FunctionConfig(name="f", memory_mb=MAX_MEMORY_MB).vcpus > 5.5

    def test_memory_bounds_enforced(self):
        with pytest.raises(InvalidRequestError):
            FunctionConfig(name="f", memory_mb=MIN_MEMORY_MB - 1)
        with pytest.raises(InvalidRequestError):
            FunctionConfig(name="f", memory_mb=MAX_MEMORY_MB + 1)

    def test_timeout_bounds_enforced(self):
        with pytest.raises(InvalidRequestError):
            FunctionConfig(name="f", timeout_seconds=0)
        with pytest.raises(InvalidRequestError):
            FunctionConfig(name="f", timeout_seconds=16 * 60)

    def test_name_required(self):
        with pytest.raises(InvalidRequestError):
            FunctionConfig(name="")


class TestControlPlane:
    def test_create_get_delete(self, cloud):
        config = FunctionConfig(name="fn", memory_mb=512)
        cloud.faas.create_function(config)
        assert cloud.faas.get_function("fn") is config
        assert "fn" in cloud.faas
        cloud.faas.delete_function("fn")
        assert "fn" not in cloud.faas

    def test_duplicate_rejected(self, cloud):
        cloud.faas.create_function(FunctionConfig(name="fn"))
        with pytest.raises(ResourceAlreadyExistsError):
            cloud.faas.create_function(FunctionConfig(name="fn"))

    def test_missing_function_raises(self, cloud):
        with pytest.raises(ResourceNotFoundError):
            cloud.faas.get_function("missing")
        with pytest.raises(ResourceNotFoundError):
            cloud.faas.start_invocation("missing")


class TestInvocationLifecycle:
    def test_first_invocation_is_cold_then_warm(self, cloud):
        cloud.faas.create_function(FunctionConfig(name="fn", memory_mb=1024))
        first = cloud.faas.start_invocation("fn", at_time=0.0)
        assert first.cold
        first.finish()
        second = cloud.faas.start_invocation("fn", at_time=100.0)
        assert not second.cold
        second.finish()

    def test_cold_start_delays_user_code(self, cloud):
        cloud.faas.create_function(FunctionConfig(name="fn", memory_mb=2048))
        invocation = cloud.faas.start_invocation("fn", at_time=5.0)
        assert invocation.started_at > 5.0

    def test_invoker_clock_advanced_by_invoke_api(self, cloud):
        cloud.faas.create_function(FunctionConfig(name="fn"))
        invoker = VirtualClock(1.0)
        cloud.faas.start_invocation("fn", invoker_clock=invoker)
        assert invoker.now > 1.0

    def test_charge_compute_scales_with_memory(self, cloud):
        cloud.faas.create_function(FunctionConfig(name="small", memory_mb=1024))
        cloud.faas.create_function(FunctionConfig(name="large", memory_mb=8192))
        small = cloud.faas.start_invocation("small", at_time=0.0)
        large = cloud.faas.start_invocation("large", at_time=0.0)
        assert small.charge_compute(1e9) > large.charge_compute(1e9)

    def test_memory_accounting_raises_oom(self, cloud):
        cloud.faas.create_function(FunctionConfig(name="fn", memory_mb=128))
        invocation = cloud.faas.start_invocation("fn", at_time=0.0)
        invocation.account_memory(64 * 1024 * 1024)
        with pytest.raises(OutOfMemoryError):
            invocation.account_memory(256 * 1024 * 1024)

    def test_timeout_enforced_on_finish(self, cloud):
        cloud.faas.create_function(FunctionConfig(name="fn", memory_mb=512, timeout_seconds=10))
        invocation = cloud.faas.start_invocation("fn", at_time=0.0)
        invocation.charge_duration(30.0)
        with pytest.raises(FunctionTimeoutError):
            invocation.finish()

    def test_check_timeout_midway(self, cloud):
        cloud.faas.create_function(FunctionConfig(name="fn", memory_mb=512, timeout_seconds=5))
        invocation = cloud.faas.start_invocation("fn", at_time=0.0)
        invocation.charge_duration(1.0)
        invocation.check_timeout()
        invocation.charge_duration(10.0)
        with pytest.raises(FunctionTimeoutError):
            invocation.check_timeout()

    def test_finish_is_idempotent(self, cloud):
        cloud.faas.create_function(FunctionConfig(name="fn"))
        invocation = cloud.faas.start_invocation("fn", at_time=0.0)
        runtime = invocation.finish()
        assert invocation.finish() == runtime

    def test_concurrency_limit(self, cloud):
        limited = type(cloud)(faas_concurrency_limit=2)
        limited.faas.create_function(FunctionConfig(name="fn"))
        limited.faas.start_invocation("fn", at_time=0.0)
        limited.faas.start_invocation("fn", at_time=0.0)
        with pytest.raises(ConcurrencyLimitError):
            limited.faas.start_invocation("fn", at_time=0.0)


class TestBillingAndHandlers:
    def test_invocation_and_gb_seconds_billed(self, cloud):
        cloud.faas.create_function(FunctionConfig(name="fn", memory_mb=2048))
        invocation = cloud.faas.start_invocation("fn", at_time=0.0)
        invocation.charge_duration(10.0)
        invocation.finish()
        operations = {r.operation for r in cloud.ledger.filter(service=SERVICE_FAAS)}
        assert operations == {"invocation", "gb_seconds"}
        gb_seconds = cloud.ledger.total_quantity(SERVICE_FAAS, "gb_seconds")
        assert gb_seconds == pytest.approx((2048 / 1024) * invocation.runtime_seconds)

    def test_invocation_records_capture_run(self, cloud):
        cloud.faas.create_function(FunctionConfig(name="fn", memory_mb=512))
        invocation = cloud.faas.start_invocation("fn", at_time=0.0)
        invocation.charge_duration(1.0)
        invocation.finish()
        record = cloud.faas.invocation_records[-1]
        assert record.function_name == "fn"
        assert record.cold
        assert record.runtime_seconds == pytest.approx(invocation.runtime_seconds)

    def test_registered_handler_invocation(self, cloud):
        def handler(invocation, payload):
            invocation.charge_duration(0.5)
            return {"echo": payload}

        cloud.faas.create_function(FunctionConfig(name="echo", memory_mb=256), handler)
        result = cloud.faas.invoke("echo", payload="hi", at_time=0.0)
        assert result == {"echo": "hi"}
        assert cloud.faas.warm_environment_count("echo") == 1

    def test_invoke_without_handler_raises(self, cloud):
        cloud.faas.create_function(FunctionConfig(name="no-handler"))
        with pytest.raises(ResourceNotFoundError):
            cloud.faas.invoke("no-handler")

    def test_handler_exception_still_bills_invocation(self, cloud):
        def handler(invocation, payload):
            invocation.charge_duration(0.1)
            raise RuntimeError("boom")

        cloud.faas.create_function(FunctionConfig(name="bad", memory_mb=256), handler)
        with pytest.raises(RuntimeError):
            cloud.faas.invoke("bad", at_time=0.0)
        assert cloud.ledger.filter(service=SERVICE_FAAS, operation="invocation")

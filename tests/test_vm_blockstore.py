"""Tests for the simulated EC2 instances and EBS volumes."""

import pytest

from repro.cloud import InstanceSpec, InvalidRequestError, ResourceNotFoundError, VirtualClock
from repro.cloud.billing import SERVICE_BLOCK, SERVICE_VM
from repro.cloud.pricing import EC2_HOURLY_PRICES


class TestInstanceSpec:
    def test_known_types(self):
        spec = InstanceSpec.for_type("c5.12xlarge")
        assert spec.vcpus == 48
        assert spec.memory_gib == 96
        assert spec.memory_bytes == 96 * 1024 ** 3

    def test_unknown_type_rejected(self):
        with pytest.raises(InvalidRequestError):
            InstanceSpec.for_type("x1e.gigantic")


class TestVirtualMachine:
    def test_job_scoped_startup_is_slow(self, cloud):
        vm = cloud.vms.launch("c5.2xlarge", always_on=False)
        ready_at = vm.start()
        assert ready_at >= 100.0  # minutes-scale provisioning delay

    def test_always_on_dispatch_is_fast(self, cloud):
        vm = cloud.vms.launch("c5.12xlarge", always_on=True)
        ready_at = vm.start()
        assert ready_at < 1.0

    def test_stop_bills_elapsed_duration(self, cloud):
        vm = cloud.vms.launch("c5.2xlarge", always_on=False)
        vm.start()
        vm.run_compute(1e12)
        duration = vm.stop()
        records = cloud.ledger.filter(service=SERVICE_VM)
        assert len(records) == 1
        expected = (duration / 3600.0) * EC2_HOURLY_PRICES["c5.2xlarge"]
        assert records[0].cost == pytest.approx(expected)

    def test_stop_before_start_rejected(self, cloud):
        vm = cloud.vms.launch("c5.2xlarge")
        with pytest.raises(InvalidRequestError):
            vm.stop()

    def test_always_on_period_billing(self, cloud):
        vm = cloud.vms.launch("c5.12xlarge", always_on=True)
        cost = vm.bill_always_on_period(24.0)
        assert cost == pytest.approx(24.0 * EC2_HOURLY_PRICES["c5.12xlarge"])

    def test_compute_faster_with_more_vcpus(self, cloud):
        small = cloud.vms.launch("c5.2xlarge")
        big = cloud.vms.launch("c5.12xlarge")
        small.start()
        big.start()
        t_small = small.run_compute(1e12)
        t_big = big.run_compute(1e12)
        assert t_big < t_small

    def test_model_load_paths_differ(self, cloud):
        vm = cloud.vms.launch("c5.12xlarge", always_on=True)
        vm.start()
        ebs = vm.load_from_block(10 ** 9)
        s3 = vm.load_from_object_storage(10 ** 9)
        assert s3 > ebs  # object storage is the slower, "cold" path

    def test_memory_fit_check(self, cloud):
        vm = cloud.vms.launch("c5.2xlarge")
        assert vm.fits_in_memory(8 * 1024 ** 3)
        assert not vm.fits_in_memory(64 * 1024 ** 3)

    def test_registry(self, cloud):
        vm = cloud.vms.launch("c5.2xlarge", name="my-vm")
        assert cloud.vms.get("my-vm") is vm
        assert "my-vm" in cloud.vms
        with pytest.raises(ResourceNotFoundError):
            cloud.vms.get("missing")


class TestBlockStorage:
    def test_create_and_read(self, cloud):
        volume = cloud.block_storage.create_volume("vol", size_gb=100)
        clock = VirtualClock()
        duration = volume.read(500 * 1024 * 1024, clock)
        assert duration > 0
        assert clock.now == pytest.approx(duration)
        assert volume.total_bytes_read == 500 * 1024 * 1024

    def test_invalid_volume_parameters(self, cloud):
        with pytest.raises(InvalidRequestError):
            cloud.block_storage.create_volume("v", size_gb=0)
        volume = cloud.block_storage.create_volume("v", size_gb=10)
        with pytest.raises(InvalidRequestError):
            volume.read(-1, VirtualClock())

    def test_monthly_and_prorated_cost(self, cloud):
        volume = cloud.block_storage.create_volume("vol", size_gb=100)
        monthly = volume.monthly_cost()
        assert monthly == pytest.approx(100 * cloud.prices.block_price_per_gb_month)
        day = volume.charge_for_duration(24 * 3600, timestamp=0.0)
        assert day == pytest.approx(monthly / 30.0)
        assert cloud.ledger.filter(service=SERVICE_BLOCK)

    def test_registry(self, cloud):
        cloud.block_storage.create_volume("vol", 10)
        assert "vol" in cloud.block_storage
        with pytest.raises(ResourceNotFoundError):
            cloud.block_storage.get_volume("missing")

"""Tests for the vectorized replay core (Tier A/B/C fast paths).

Locks the replay-performance contracts:

1. *Bit-identity under the same cache setting*: the columnar event core
   produces a ``summary()`` bit-identical to the exact event loop's, with the
   outcome cache off AND with it on (property-style over several seeds).
2. *Cold and warm entries never shadow each other*: the FaaS claim-replay
   check rejects a cached warm execution when the live pool would resolve
   cold (and vice versa), so cached replays preserve exact cold/warm counts.
3. *Chaos bypasses the cache entirely*: a chaos-configured serve never
   activates (or even constructs) the outcome cache and always runs the
   exact event loop, byte-identical to a cache-free chaos serve.
4. ``peak_overlap_arrays`` is the array twin of ``peak_overlap`` (random
   interval sets including zero-length and touching intervals).
5. Fluid mode is tagged and approximately exact; the sorted-latency memo
   invalidates on record-count changes; ``from_queries`` vectorized
   validation keeps the scalar walk's messages and precedence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Campaign,
    ChaosConfig,
    CloudEnvironment,
    EngineConfig,
    FaultPlan,
    FSDServingBackend,
    GraphChallengeConfig,
    InferenceQuery,
    InferenceServer,
    QueryWorkloadFactory,
    ServingConfig,
    SporadicWorkload,
    Variant,
    build_graph_challenge_model,
    generate_sporadic_workload,
)
from repro.experiments.campaign import CampaignCell, CellResult
from repro.serving import peak_overlap, peak_overlap_arrays
from repro.serving.replaycore import LazyRecordList


@pytest.fixture(scope="module")
def tiny_model():
    config = GraphChallengeConfig(
        neurons=64, layers=2, nnz_per_row=4, num_communities=4, seed=7
    )
    return build_graph_challenge_model(config)


def _serial_backend(model, warm_keepalive_seconds=900.0):
    factory = QueryWorkloadFactory(model_builder=lambda neurons: model)
    return FSDServingBackend(
        CloudEnvironment(),
        factory,
        config_for=lambda neurons: EngineConfig(variant=Variant.SERIAL, workers=1),
        warm_keepalive_seconds=warm_keepalive_seconds,
    )


def _serve(model, workload, keepalive=900.0, **config_kwargs):
    backend = _serial_backend(model, warm_keepalive_seconds=keepalive)
    server = InferenceServer(backend, ServingConfig(**config_kwargs))
    return backend, server.serve(workload)


def _workload(seed):
    return generate_sporadic_workload(
        daily_samples=30 * 4, batch_size=4, neuron_counts=(64,), seed=seed
    )


class TestColumnarExactParity:
    """Tier B: the columnar core is a replay *implementation*, not a change."""

    @pytest.mark.parametrize("seed", [3, 9, 17])
    def test_summary_bit_identical_cache_off(self, tiny_model, seed):
        workload = _workload(seed)
        _, exact = _serve(tiny_model, workload)
        _, fast = _serve(tiny_model, workload, replay_mode="columnar")
        assert fast.replay_mode == "columnar"
        assert exact.replay_mode is None
        assert fast.summary() == exact.summary()

    @pytest.mark.parametrize("seed", [3, 9, 17])
    def test_summary_bit_identical_cache_on(self, tiny_model, seed):
        workload = _workload(seed)
        _, exact = _serve(tiny_model, workload, outcome_cache=True)
        _, fast = _serve(
            tiny_model, workload, replay_mode="columnar", outcome_cache=True
        )
        assert fast.summary() == exact.summary()

    def test_records_materialise_identically(self, tiny_model):
        workload = _workload(5)
        _, exact = _serve(tiny_model, workload)
        _, fast = _serve(tiny_model, workload, replay_mode="columnar")
        assert isinstance(fast.records, LazyRecordList)
        assert len(fast.records) == len(exact.records)
        for fast_record, exact_record in zip(fast.records, exact.records):
            assert fast_record == exact_record

    def test_auto_mode_falls_back_for_policies_or_bound(self, tiny_model):
        # A bounded-admission serve cannot use the flat loop; "auto" must
        # quietly take the exact path and report no fast-path mode.
        workload = _workload(5)
        backend = _serial_backend(tiny_model)
        report = InferenceServer(
            backend, ServingConfig(replay_mode="auto", max_concurrent_queries=1)
        ).serve(workload)
        assert report.replay_mode is None

    def test_empty_workload_falls_back(self, tiny_model):
        backend = _serial_backend(tiny_model)
        report = InferenceServer(backend, ServingConfig(replay_mode="auto")).serve(
            SporadicWorkload(queries=[])
        )
        assert report.replay_mode is None
        assert report.num_queries == 0


class TestOutcomeCacheSemantics:
    """Tier A: memoised replays preserve cold/warm truth; chaos opts out."""

    def _gapped_workload(self):
        # 0/5/10 warm cluster, then a gap far past the keepalive: the cache
        # must hold distinct cold and warm entries and pick by claim replay.
        arrivals = [0.0, 5.0, 10.0, 2000.0, 2005.0, 2010.0, 4000.0]
        queries = [
            InferenceQuery(query_id=i, arrival_time=t, neurons=64, samples=4)
            for i, t in enumerate(arrivals)
        ]
        return SporadicWorkload.from_queries(queries, horizon_seconds=5000.0)

    def test_cold_and_warm_entries_miss_each_other(self, tiny_model):
        workload = self._gapped_workload()
        _, plain = _serve(tiny_model, workload, keepalive=60.0)
        backend, cached = _serve(
            tiny_model, workload, keepalive=60.0, outcome_cache=True
        )
        # Cold/warm classification is integer-exact under the cache: a cached
        # warm outcome replayed where the pool is empty (or stale) would flip
        # these counts.
        assert cached.cold_start_count == plain.cold_start_count
        assert cached.warm_start_count == plain.warm_start_count
        assert [r.cold_starts for r in cached.records] == [
            r.cold_starts for r in plain.records
        ]
        # The key's bucket really holds both flavours of entry.
        (bucket,) = backend.outcome_cache._entries.values()
        kinds = {entry.cold_starts > 0 for entry in bucket}
        assert kinds == {True, False}

    def test_cached_replay_matches_exact_closely(self, tiny_model):
        workload = self._gapped_workload()
        _, plain = _serve(tiny_model, workload, keepalive=60.0)
        _, cached = _serve(tiny_model, workload, keepalive=60.0, outcome_cache=True)
        # Time translation drifts floats in the last bits only.
        assert cached.cost.total == pytest.approx(plain.cost.total, rel=1e-9)
        for fast, exact in zip(cached.sorted_latencies(), plain.sorted_latencies()):
            assert fast == pytest.approx(exact, rel=1e-9)

    def test_chaos_bypasses_cache_entirely(self, tiny_model):
        workload = _workload(5)
        chaos = ChaosConfig(plan=FaultPlan())
        backend_plain, plain = _serve(tiny_model, workload, chaos=chaos)
        backend_cached, cached = _serve(
            tiny_model,
            workload,
            chaos=chaos,
            outcome_cache=True,
            replay_mode="auto",
        )
        # The chaos serve must run the exact loop and never even construct
        # the cache, let alone leave it active.
        assert cached.replay_mode is None
        assert backend_cached.outcome_cache is None
        assert backend_cached._cache_active is False
        assert cached.summary() == plain.summary()


class TestPeakOverlapArrays:
    """The array peak is the scalar peak, on every interval shape."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_scalar_peak_on_random_intervals(self, seed):
        rng = np.random.default_rng(seed)
        n = 200
        starts = rng.uniform(0.0, 100.0, size=n)
        lengths = rng.uniform(0.0, 10.0, size=n)
        # Force zero-length, touching and duplicated intervals into the mix.
        lengths[rng.random(n) < 0.25] = 0.0
        starts[10] = starts[11]  # coinciding zero-length candidates
        ends = starts + lengths
        ends[20] = starts[21]  # touching endpoints
        intervals = list(zip(starts.tolist(), ends.tolist()))
        assert peak_overlap_arrays(starts, ends) == peak_overlap(intervals)

    def test_empty(self):
        assert peak_overlap_arrays(np.empty(0), np.empty(0)) == 0


class TestFluidMode:
    """Tier C: tagged, approximate, never mistaken for an exact replay."""

    def test_fluid_is_tagged_and_close(self, tiny_model):
        workload = _workload(5)
        _, exact = _serve(tiny_model, workload)
        _, fluid = _serve(tiny_model, workload, replay_mode="fluid")
        assert fluid.replay_mode == "fluid"
        assert fluid.summary()["replay_mode"] == "fluid"
        assert "replay_mode" not in exact.summary()
        assert fluid.num_queries == exact.num_queries
        assert fluid.cost.total == pytest.approx(exact.cost.total, rel=0.05)
        assert fluid.p50_latency_seconds == pytest.approx(
            exact.p50_latency_seconds, rel=0.05
        )


class TestSortedLatencyMemo:
    def test_percentiles_use_memo_and_invalidate_on_append(self, tiny_model):
        workload = _workload(5)
        _, report = _serve(tiny_model, workload)
        first = report.sorted_latencies()
        assert report.sorted_latencies() is first  # memo hit, same array
        p95 = report.latency_percentile(95)
        assert p95 == float(np.percentile(first, 95))
        # Appending a record (retry bookkeeping does this) must invalidate.
        report.records.append(report.records[0])
        second = report.sorted_latencies()
        assert second is not first
        assert len(second) == len(first) + 1


class TestFromQueriesValidation:
    """The vectorized checks keep the scalar walk's messages and precedence."""

    def _q(self, i, t):
        return InferenceQuery(query_id=i, arrival_time=t, neurons=64, samples=4)

    def test_invalid_arrival_message(self):
        with pytest.raises(ValueError, match=r"query #1 \(id 1\) has invalid arrival"):
            SporadicWorkload.from_queries([self._q(0, 1.0), self._q(1, float("nan"))])
        with pytest.raises(ValueError, match=r"query #0 \(id 0\) has invalid arrival"):
            SporadicWorkload.from_queries([self._q(0, -2.0)])

    def test_out_of_order_message(self):
        with pytest.raises(
            ValueError, match=r"query #1 \(id 1\) arrives at 1.0 before its predecessor at 5.0"
        ):
            SporadicWorkload.from_queries([self._q(0, 5.0), self._q(1, 1.0)])

    def test_past_horizon_message(self):
        with pytest.raises(ValueError, match=r"past the workload horizon of 10.0 seconds"):
            SporadicWorkload.from_queries([self._q(0, 11.0)], horizon_seconds=10.0)

    def test_invalid_wins_over_order_and_horizon(self):
        # A NaN arrival is both "invalid" and "out of order" to the masks;
        # the scalar walk reported invalid first, so the vector path must too.
        with pytest.raises(ValueError, match="invalid arrival time"):
            SporadicWorkload.from_queries(
                [self._q(0, 5.0), self._q(1, float("nan")), self._q(2, 1.0)]
            )

    def test_valid_trace_accepted(self):
        workload = SporadicWorkload.from_queries(
            [self._q(0, 0.0), self._q(1, 0.0), self._q(2, 3.5)]
        )
        assert workload.num_queries == 3


class TestCampaignReplayKnobs:
    def test_cache_off_fingerprint_payload_unchanged(self):
        cell = CampaignCell("s", "b")
        summary = {"num_queries": 1, "cost_total": 1.0, "cold_start_count": 1, "warm_start_count": 0}
        default = CellResult(cell=cell, summary=summary, wall_seconds=0.0)
        explicit = CellResult(
            cell=cell, summary=summary, wall_seconds=9.9, outcome_cache=False
        )
        assert default.fingerprint == explicit.fingerprint
        assert "outcome_cache" not in default.to_dict()

    def test_cache_on_changes_fingerprint_and_is_exported(self):
        cell = CampaignCell("s", "b")
        summary = {"num_queries": 1, "cost_total": 1.0, "cold_start_count": 1, "warm_start_count": 0}
        plain = CellResult(cell=cell, summary=summary, wall_seconds=0.0)
        cached = CellResult(
            cell=cell, summary=summary, wall_seconds=0.0, outcome_cache=True
        )
        assert cached.fingerprint != plain.fingerprint
        assert cached.to_dict()["outcome_cache"] is True

    def test_campaign_rejects_unknown_replay_mode(self):
        scenario = type(
            "S", (), {"name": "s", "build": lambda self: SporadicWorkload(queries=[])}
        )()
        with pytest.raises(ValueError, match="replay_mode"):
            # detlint: allow[DET006] constructor-rejection fixture; the campaign never runs
            Campaign([scenario], {"b": lambda: None}, replay_mode="warp")

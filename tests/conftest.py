"""Shared fixtures: a small Graph Challenge model, input batch and cloud env."""

from __future__ import annotations

import pytest

from repro import (
    CloudEnvironment,
    GraphChallengeConfig,
    HypergraphPartitioner,
    build_graph_challenge_model,
    generate_input_batch,
)


@pytest.fixture
def cloud():
    """A fresh simulated cloud environment per test."""
    return CloudEnvironment()


@pytest.fixture(scope="session")
def small_config():
    """A small but structurally realistic Graph Challenge configuration."""
    return GraphChallengeConfig(
        neurons=256,
        layers=4,
        nnz_per_row=8,
        num_communities=16,
        community_link_fraction=0.9,
        seed=7,
    )


@pytest.fixture(scope="session")
def small_model(small_config):
    return build_graph_challenge_model(small_config)


@pytest.fixture(scope="session")
def small_batch(small_model):
    return generate_input_batch(small_model.num_neurons, samples=12, density=0.3, seed=5)


@pytest.fixture(scope="session")
def small_expected(small_model, small_batch):
    """Ground-truth output of the single-process forward pass."""
    return small_model.forward(small_batch)


@pytest.fixture(scope="session")
def small_plan(small_model):
    """A 4-worker hypergraph partition plan of the small model."""
    return HypergraphPartitioner(seed=3).partition(small_model, 4)

"""Tests for the SparseDNN model and its object-store serialisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.cloud import VirtualClock
from repro.model import (
    SparseDNN,
    deserialize_csr,
    load_layer_rows,
    model_key,
    serialize_csr,
    store_model,
)
from repro.workloads import GraphChallengeConfig, build_graph_challenge_model, generate_input_batch


def tiny_model(layers=3, neurons=32, seed=0):
    rng = np.random.default_rng(seed)
    weights = [
        sparse.random(neurons, neurons, density=0.1, format="csr", random_state=rng, dtype=np.float32)
        for _ in range(layers)
    ]
    return SparseDNN(weights=weights, biases=[-0.1] * layers, name="tiny")


class TestSparseDNN:
    def test_structure_properties(self):
        model = tiny_model()
        assert model.num_layers == 3
        assert model.num_neurons == 32
        assert model.total_nnz == sum(w.nnz for w in model.weights)
        assert model.nbytes() > 0
        stats = model.layer_stats()
        assert len(stats) == 3
        assert stats[0].shape == (32, 32)

    def test_requires_at_least_one_layer(self):
        with pytest.raises(ValueError):
            SparseDNN(weights=[], biases=[])

    def test_bias_count_must_match_layers(self):
        weights = [sparse.eye(4, format="csr")]
        with pytest.raises(ValueError):
            SparseDNN(weights=weights, biases=[0.1, 0.2])

    def test_rejects_non_uniform_width(self):
        weights = [sparse.eye(4, format="csr"), sparse.eye(5, format="csr")]
        with pytest.raises(ValueError):
            SparseDNN(weights=weights, biases=[0.0, 0.0])

    def test_forward_shape_and_mismatch(self):
        model = tiny_model()
        batch = generate_input_batch(32, samples=5, seed=1)
        output = model.forward(batch)
        assert output.shape == (32, 5)
        bad_batch = generate_input_batch(16, samples=5, seed=1)
        with pytest.raises(ValueError):
            model.forward(bad_batch)

    def test_forward_values_bounded_by_activation_cap(self):
        config = GraphChallengeConfig(neurons=128, layers=3, nnz_per_row=8, num_communities=8)
        model = build_graph_challenge_model(config)
        batch = generate_input_batch(128, samples=8, seed=2)
        output = model.forward(batch)
        if output.nnz:
            assert output.data.max() <= config.activation_cap
            assert output.data.min() > 0.0

    def test_forward_return_all_layers(self):
        model = tiny_model()
        batch = generate_input_batch(32, samples=4, seed=3)
        per_layer = model.forward(batch, return_all_layers=True)
        assert len(per_layer) == model.num_layers
        final = model.forward(batch)
        assert (per_layer[-1] != final).nnz == 0

    def test_predict_categories_shape(self):
        model = tiny_model()
        batch = generate_input_batch(32, samples=6, seed=4)
        categories = model.predict_categories(batch)
        assert categories.shape == (6,)
        assert categories.dtype.kind in "iu"


class TestSerialization:
    def test_round_trip_compressed_and_raw(self):
        matrix = sparse.random(20, 30, density=0.2, format="csr", dtype=np.float32)
        for compress in (True, False):
            payload = serialize_csr(matrix, compress=compress)
            restored = deserialize_csr(payload)
            assert restored.shape == matrix.shape
            assert (restored != matrix).nnz == 0

    def test_compression_reduces_size_for_structured_data(self):
        matrix = sparse.csr_matrix(np.ones((100, 100), dtype=np.float32))
        assert len(serialize_csr(matrix, compress=True)) < len(serialize_csr(matrix, compress=False))

    def test_invalid_payloads_rejected(self):
        with pytest.raises(ValueError):
            deserialize_csr(b"")
        with pytest.raises(ValueError):
            deserialize_csr(b"Xgarbage")
        with pytest.raises(ValueError):
            deserialize_csr(b"R" + b"not-a-matrix-at-all-padding-padding")

    def test_model_key_layout(self):
        assert model_key("m", 3) == "models/m/layer-0003/full.csr"
        assert model_key("m", 3, part="w1") == "models/m/layer-0003/w1.csr"

    def test_store_and_load_model(self, cloud):
        model = tiny_model()
        bucket = cloud.object_storage.create_bucket("models")
        clock = VirtualClock()
        objects, total_bytes = store_model(model, bucket, clock)
        assert objects == model.num_layers
        assert total_bytes > 0
        reader = VirtualClock(clock.now)
        layer0 = load_layer_rows(bucket, "tiny", 0, reader)
        assert (layer0 != model.weights[0]).nnz == 0


@given(
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=1, max_value=40),
    st.floats(min_value=0.0, max_value=0.6),
    st.integers(min_value=0, max_value=500),
    st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_serialize_deserialize_is_lossless(rows, cols, density, seed, compress):
    """Property: CSR serialisation round-trips exactly for arbitrary shapes."""
    rng = np.random.default_rng(seed)
    matrix = sparse.random(rows, cols, density=density, format="csr", random_state=rng, dtype=np.float32)
    restored = deserialize_csr(serialize_csr(matrix, compress=compress))
    assert restored.shape == matrix.shape
    assert restored.nnz == matrix.nnz
    if matrix.nnz:
        np.testing.assert_array_equal(restored.indices, matrix.indices)
        np.testing.assert_allclose(restored.data, matrix.data, rtol=1e-6)

"""Tests for virtual clocks, the latency model and jitter."""

import pytest

from repro.cloud.timing import JitterModel, LatencyModel, VirtualClock, merge_latency_overrides


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(12.5).now == 12.5

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            VirtualClock(-1.0)

    def test_advance_moves_forward(self):
        clock = VirtualClock()
        clock.advance(2.0)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.5)

    def test_advance_rejects_negative_duration(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_to_future(self):
        clock = VirtualClock(1.0)
        clock.advance_to(4.0)
        assert clock.now == 4.0

    def test_advance_to_past_is_noop(self):
        clock = VirtualClock(5.0)
        clock.advance_to(2.0)
        assert clock.now == 5.0

    def test_copy_is_independent(self):
        clock = VirtualClock(1.0)
        other = clock.copy()
        other.advance(10.0)
        assert clock.now == 1.0
        assert other.now == 11.0


class TestJitterModel:
    def test_zero_spread_is_identity(self):
        jitter = JitterModel(spread=0.0)
        assert jitter.apply(1.5) == 1.5

    def test_spread_bounds_latency(self):
        jitter = JitterModel(spread=0.2, seed=1)
        values = [jitter.apply(1.0) for _ in range(100)]
        assert all(0.8 <= v <= 1.2 for v in values)
        # with nonzero spread the values should not all collapse to 1.0
        assert len({round(v, 6) for v in values}) > 1

    def test_invalid_spread_rejected(self):
        with pytest.raises(ValueError):
            JitterModel(spread=1.5)


class TestLatencyModel:
    def test_cold_start_slower_than_warm(self):
        latency = LatencyModel()
        assert latency.faas_startup(cold=True, memory_mb=1024) > latency.faas_startup(
            cold=False, memory_mb=1024
        )

    def test_cold_start_grows_with_memory(self):
        latency = LatencyModel()
        assert latency.faas_startup(True, 10240) > latency.faas_startup(True, 128)

    def test_compute_scales_inversely_with_vcpus(self):
        latency = LatencyModel()
        one = latency.faas_compute(1e9, vcpus=1.0)
        two = latency.faas_compute(1e9, vcpus=2.0)
        assert two == pytest.approx(one / 2.0)

    def test_zero_flops_costs_nothing(self):
        assert LatencyModel().faas_compute(0.0, 2.0) == 0.0

    def test_object_put_includes_bandwidth_term(self):
        latency = LatencyModel()
        small = latency.object_put(1024)
        large = latency.object_put(100 * 1024 * 1024)
        assert large > small

    def test_pubsub_publish_grows_with_payload(self):
        latency = LatencyModel()
        assert latency.pubsub_publish(256 * 1024) > latency.pubsub_publish(1024)

    def test_vm_compute_uses_parallel_efficiency(self):
        latency = LatencyModel()
        ideal = 1e9 / (latency.vm_flops_per_vcpu * 8)
        assert latency.vm_compute(1e9, 8) > ideal

    def test_hpc_compute_caps_cores_at_cluster_size(self):
        latency = LatencyModel()
        max_cores = latency.hpc_cores_per_node * latency.hpc_nodes
        assert latency.hpc_compute(1e9, max_cores) == pytest.approx(
            latency.hpc_compute(1e9, max_cores * 10)
        )

    def test_hpc_transfer_combines_latency_and_bandwidth(self):
        latency = LatencyModel()
        assert latency.hpc_transfer(0) == pytest.approx(latency.hpc_interconnect_latency_seconds)
        assert latency.hpc_transfer(10 ** 9) > latency.hpc_transfer(10 ** 6)

    def test_merge_latency_overrides(self):
        merged = merge_latency_overrides(object_put_latency_seconds=0.5)
        assert merged.object_put_latency_seconds == 0.5
        # untouched fields keep their defaults
        assert merged.queue_receive_rtt_seconds == LatencyModel().queue_receive_rtt_seconds

    def test_with_jitter_returns_new_model(self):
        base = LatencyModel()
        jittered = base.with_jitter(0.1, seed=2)
        assert jittered.jitter.spread == 0.1
        assert base.jitter.spread == 0.0

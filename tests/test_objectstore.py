"""Tests for the simulated object storage service (S3 analogue)."""

import pytest

from repro.cloud import (
    InvalidRequestError,
    ResourceAlreadyExistsError,
    ResourceNotFoundError,
    VirtualClock,
)
from repro.cloud.billing import SERVICE_OBJECT


@pytest.fixture
def bucket(cloud):
    return cloud.object_storage.create_bucket("test-bucket")


class TestBucketRegistry:
    def test_create_get_delete(self, cloud):
        bucket = cloud.object_storage.create_bucket("b")
        assert cloud.object_storage.get_bucket("b") is bucket
        cloud.object_storage.delete_bucket("b")
        assert "b" not in cloud.object_storage

    def test_duplicate_rejected(self, cloud):
        cloud.object_storage.create_bucket("b")
        with pytest.raises(ResourceAlreadyExistsError):
            cloud.object_storage.create_bucket("b")

    def test_missing_bucket_raises(self, cloud):
        with pytest.raises(ResourceNotFoundError):
            cloud.object_storage.get_bucket("missing")

    def test_get_or_create(self, cloud):
        first = cloud.object_storage.get_or_create_bucket("b")
        second = cloud.object_storage.get_or_create_bucket("b")
        assert first is second


class TestPutGetList:
    def test_round_trip(self, bucket):
        writer, reader = VirtualClock(), VirtualClock()
        bucket.put_object("k/data.dat", b"payload", writer)
        reader.advance_to(writer.now)
        assert bucket.get_object("k/data.dat", reader) == b"payload"

    def test_empty_key_rejected(self, bucket):
        with pytest.raises(InvalidRequestError):
            bucket.put_object("", b"x", VirtualClock())

    def test_missing_object_raises_but_is_billed(self, cloud, bucket):
        reader = VirtualClock()
        with pytest.raises(ResourceNotFoundError):
            bucket.get_object("missing", reader)
        gets = cloud.ledger.filter(service=SERVICE_OBJECT, operation="get")
        assert len(gets) == 1

    def test_object_not_visible_before_put_completed(self, bucket):
        writer = VirtualClock()
        bucket.put_object("late", b"z", writer)
        early_reader = VirtualClock(0.0)
        with pytest.raises(ResourceNotFoundError):
            bucket.get_object("late", early_reader)

    def test_list_filters_by_prefix_and_visibility(self, bucket):
        writer = VirtualClock()
        bucket.put_object("1/0/0_0.dat", b"a", writer)
        bucket.put_object("1/0/1_0.nul", b"", writer)
        bucket.put_object("2/0/0_0.dat", b"b", writer)
        reader = VirtualClock(writer.now)
        handles = bucket.list_objects("1/0/", reader)
        assert [h.key for h in handles] == ["1/0/0_0.dat", "1/0/1_0.nul"]
        early = VirtualClock(0.0)
        assert bucket.list_objects("1/0/", early) == []

    def test_overwrite_replaces_content(self, bucket):
        clock = VirtualClock()
        bucket.put_object("k", b"v1", clock)
        bucket.put_object("k", b"v2", clock)
        assert bucket.get_object("k", clock) == b"v2"
        assert bucket.object_count == 1

    def test_delete_object_and_prefix(self, bucket):
        clock = VirtualClock()
        bucket.put_object("a/1", b"x", clock)
        bucket.put_object("a/2", b"y", clock)
        bucket.put_object("b/1", b"z", clock)
        bucket.delete_object("a/1", clock)
        assert not bucket.object_exists("a/1")
        removed = bucket.delete_prefix("a/")
        assert removed == 1
        assert bucket.object_count == 1

    def test_object_size_helpers(self, bucket):
        clock = VirtualClock()
        bucket.put_object("k", b"12345", clock)
        assert bucket.object_size("k") == 5
        assert bucket.total_stored_bytes == 5
        with pytest.raises(ResourceNotFoundError):
            bucket.object_size("missing")


class TestObjectBilling:
    def test_put_get_list_each_billed_per_request(self, cloud, bucket):
        clock = VirtualClock()
        bucket.put_object("k", b"data", clock)
        bucket.get_object("k", clock)
        bucket.list_objects("", clock)
        report = cloud.ledger.report()
        operations = {r.operation for r in cloud.ledger.filter(service=SERVICE_OBJECT)}
        assert operations == {"put", "get", "list"}
        assert report.by_service[SERVICE_OBJECT] > 0

    def test_request_cost_independent_of_size(self, cloud):
        bucket = cloud.object_storage.create_bucket("b2")
        clock = VirtualClock()
        bucket.put_object("small", b"x", clock)
        bucket.put_object("large", b"x" * 10_000_000, clock)
        puts = cloud.ledger.filter(service=SERVICE_OBJECT, operation="put")
        assert puts[0].cost == pytest.approx(puts[1].cost)

    def test_large_put_takes_longer_than_small(self, bucket):
        small_clock, large_clock = VirtualClock(), VirtualClock()
        bucket.put_object("small", b"x", small_clock)
        bucket.put_object("large", b"x" * 50_000_000, large_clock)
        assert large_clock.now > small_clock.now

    def test_counters(self, bucket):
        clock = VirtualClock()
        bucket.put_object("k", b"abc", clock)
        bucket.get_object("k", clock)
        bucket.list_objects("", clock)
        assert bucket.total_put_requests == 1
        assert bucket.total_get_requests == 1
        assert bucket.total_list_requests == 1
        assert bucket.total_bytes_written == 3
        assert bucket.total_bytes_read == 3

"""Tests for the virtual-timeline telemetry layer (``repro/telemetry``).

Pins the four contracts the tracer is built on:

1. *Telemetry-off is byte-identical*: ``ServingConfig(telemetry=None)`` (the
   default) produces the exact same records and summary as before the
   telemetry package existed -- no summary key, no fingerprint drift.
2. *Span-tree well-formedness*: serve -> query -> attempt nesting, children
   inside their parent's interval, unique sequential span ids.
3. *Exact/columnar parity*: the columnar fast path records the identical
   span set (ids, names, tracks, intervals, parents) as the exact event
   loop for the workloads where both are valid.
4. *Exports*: the Chrome trace is structurally valid (metadata + complete
   events, microsecond scaling), the critical path decomposes a query's
   latency, and the ``repro-trace`` CLI round-trips a recorded trace.
"""

import json

import pytest

from repro import (
    CloudEnvironment,
    EngineConfig,
    FSDServingBackend,
    GraphChallengeConfig,
    InferenceServer,
    QueryWorkloadFactory,
    ServingConfig,
    TelemetryConfig,
    Variant,
    build_graph_challenge_model,
    chrome_trace,
    generate_sporadic_workload,
    write_chrome_trace,
)
from repro.telemetry.cli import main as cli_main


@pytest.fixture(scope="module")
def tiny_model():
    config = GraphChallengeConfig(
        neurons=64, layers=2, nnz_per_row=4, num_communities=4, seed=7
    )
    return build_graph_challenge_model(config)


def _serial_backend(tiny_model):
    return FSDServingBackend(
        CloudEnvironment(),
        QueryWorkloadFactory(model_builder=lambda neurons: tiny_model),
        config_for=lambda neurons: EngineConfig(variant=Variant.SERIAL, workers=1),
        warm_keepalive_seconds=900.0,
    )


def _workload(daily_samples=10, seed=9):
    return generate_sporadic_workload(
        daily_samples=daily_samples, batch_size=4, neuron_counts=(64,), seed=seed
    )


def _serve(tiny_model, config=None, workload=None):
    workload = workload if workload is not None else _workload()
    server = InferenceServer(_serial_backend(tiny_model), config or ServingConfig())
    return server.serve(workload)


def _span_tuples(tracer):
    """The identity-relevant projection of every span, in emission order."""
    return [
        (s.span_id, s.parent_id, s.name, s.track, s.start, s.end)
        for s in tracer.spans
    ]


class TestTelemetryOff:
    def test_default_config_records_nothing(self, tiny_model):
        report = _serve(tiny_model)
        assert report.telemetry is None
        assert "telemetry" not in report.summary()

    def test_off_and_on_are_byte_identical_apart_from_digest(self, tiny_model):
        off = _serve(tiny_model)
        on = _serve(tiny_model, ServingConfig(telemetry=TelemetryConfig()))

        assert on.telemetry is not None
        off_summary = off.summary()
        on_summary = on.summary()
        digest = on_summary.pop("telemetry")
        assert on_summary == off_summary
        assert digest == on.telemetry.summary()

        # Per-record simulated outcomes are untouched by tracing.
        assert on.records == off.records

    def test_explicit_none_is_the_default(self):
        assert ServingConfig(telemetry=None) == ServingConfig()


class TestSpanTree:
    @pytest.fixture(scope="class")
    def traced(self, tiny_model):
        return _serve(tiny_model, ServingConfig(telemetry=TelemetryConfig()))

    def test_serve_root_span(self, traced):
        tracer = traced.telemetry
        roots = [s for s in tracer.spans if s.parent_id is None]
        serves = [s for s in roots if s.name == "serve"]
        assert len(serves) == 1
        (serve,) = serves
        assert serve.track == "server"
        assert serve.start == 0.0
        assert serve.end == max(r.finished_at for r in traced.records)
        # The only other roots are cloud-side FaaS invocation spans, which
        # live on their function's own track rather than under the server.
        assert all(s.name == "invocation" for s in roots if s is not serve)

    def test_every_query_has_a_span_with_attempt_children(self, traced):
        tracer = traced.telemetry
        by_id = {s.span_id: s for s in tracer.spans}
        queries = [s for s in tracer.spans if s.name == "query"]
        assert len(queries) == len(traced.records)
        assert {s.attrs["query_id"] for s in queries} == {
            r.query_id for r in traced.records
        }
        for query in queries:
            assert by_id[query.parent_id].name == "serve"
            attempts = [
                s
                for s in tracer.spans
                if s.name == "attempt" and s.parent_id == query.span_id
            ]
            assert len(attempts) == query.attrs["attempts"] == 1

    def test_span_ids_sequential_and_intervals_nested(self, traced):
        tracer = traced.telemetry
        assert [s.span_id for s in tracer.spans] == list(
            range(1, len(tracer.spans) + 1)
        )
        by_id = {s.span_id: s for s in tracer.spans}
        for span in tracer.spans:
            assert span.end is not None and span.end >= span.start
            if span.parent_id is not None:
                parent = by_id[span.parent_id]
                assert parent.start <= span.start
                assert span.end <= parent.end

    def test_faas_invocations_traced(self, traced):
        tracer = traced.telemetry
        invocations = [s for s in tracer.spans if s.name == "invocation"]
        assert invocations, "cloud-side FaaS spans should be recorded"
        assert all(s.track.startswith("faas:") for s in invocations)
        counters = traced.telemetry.summary()["counters"]
        assert counters["cloud.faas.invoke"] == len(invocations)


class TestColumnarParity:
    def test_exact_and_columnar_record_the_same_trace(self, tiny_model):
        workload = _workload()
        exact = _serve(
            tiny_model, ServingConfig(telemetry=TelemetryConfig()), workload
        )
        columnar = _serve(
            tiny_model,
            ServingConfig(telemetry=TelemetryConfig(), replay_mode="columnar"),
            workload,
        )
        assert columnar.summary().get("replay_mode") != "fluid"
        assert _span_tuples(columnar.telemetry) == _span_tuples(exact.telemetry)
        assert columnar.telemetry.summary() == exact.telemetry.summary()

        exact_dict = exact.telemetry.to_dict()
        columnar_dict = columnar.telemetry.to_dict()
        assert columnar_dict["spans"] == exact_dict["spans"]
        assert columnar_dict["events"] == exact_dict["events"]
        assert (
            columnar_dict["metrics"]["counters"] == exact_dict["metrics"]["counters"]
        )
        # The exact event loop additionally samples its own scheduling gauges
        # (queue depth, in-flight); the columnar path has no loop to observe.
        # Every gauge the cloud services record must still agree.
        exact_cloud_gauges = {
            name: series
            for name, series in exact_dict["metrics"]["gauges"].items()
            if not name.startswith("server.")
        }
        assert columnar_dict["metrics"]["gauges"] == exact_cloud_gauges


class TestExports:
    @pytest.fixture(scope="class")
    def traced(self, tiny_model):
        return _serve(tiny_model, ServingConfig(telemetry=TelemetryConfig()))

    def test_chrome_trace_structure(self, traced):
        trace = traced.telemetry.to_dict()
        chrome = chrome_trace(trace)
        events = chrome["traceEvents"]
        phases = {e["ph"] for e in events}
        assert "M" in phases  # track-name metadata
        assert "X" in phases  # complete spans
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(trace["spans"])
        # Microsecond scaling: match the serve root span exactly.
        serve = next(s for s in trace["spans"] if s["name"] == "serve")
        root = next(e for e in complete if e["name"] == "serve")
        assert root["ts"] == serve["start"] * 1e6
        assert root["dur"] == (serve["end"] - serve["start"]) * 1e6

    def test_write_chrome_trace_round_trips(self, traced, tmp_path):
        path = tmp_path / "serve.trace.json"
        write_chrome_trace(traced.telemetry.to_dict(), path)
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]

    def test_critical_path_decomposes_latency(self, traced):
        record = traced.records[0]
        segments = traced.critical_path(record.query_id)
        assert segments
        assert segments[0]["start"] == record.arrival_time
        assert segments[-1]["end"] == pytest.approx(record.finished_at)
        for earlier, later in zip(segments, segments[1:]):
            assert later["start"] == pytest.approx(earlier["end"])
        assert all(seg["duration"] >= 0.0 for seg in segments)

    def test_critical_path_unknown_query_is_empty(self, traced):
        assert traced.critical_path(10_000) == []

    def test_critical_path_requires_a_trace(self, tiny_model):
        report = _serve(tiny_model)
        with pytest.raises(ValueError):
            report.critical_path(0)


class TestChaosTrace:
    def test_faults_and_retries_become_events(self, tiny_model):
        from repro import (
            ChaosConfig,
            ColdStartStorm,
            FaultPlan,
            PoissonFaultProcess,
            PreemptionWindows,
            RetryPolicy,
        )

        config = ServingConfig(
            telemetry=TelemetryConfig(),
            chaos=ChaosConfig(
                plan=FaultPlan(
                    processes=(
                        PoissonFaultProcess("queue", rate_per_hour=30.0),
                        PreemptionWindows(windows=((4 * 3600.0, 8 * 3600.0),)),
                        ColdStartStorm(deploy_times=(12 * 3600.0,)),
                    ),
                    seed=5,
                ),
                retry=RetryPolicy(max_attempts=3, initial_backoff_seconds=1.0, seed=9),
                channel_retry=RetryPolicy(
                    max_attempts=4, initial_backoff_seconds=0.05, seed=11
                ),
                deadline_seconds=3600.0,
            ),
        )
        report = _serve(tiny_model, config, _workload(daily_samples=24, seed=17))
        tracer = report.telemetry
        names = {event.name for event in tracer.events}
        assert "fault" in names
        assert "retry" in names
        # Every query span reports its outcome and attempt count.
        for span in tracer.spans:
            if span.name == "query":
                assert span.attrs["outcome"] in ("completed", "failed", "shed")
                assert span.attrs["attempts"] >= 0


class TestCli:
    @pytest.fixture()
    def trace_path(self, tiny_model, tmp_path):
        report = _serve(tiny_model, ServingConfig(telemetry=TelemetryConfig()))
        path = tmp_path / "serve.json"
        path.write_text(json.dumps(report.telemetry.to_dict()))
        return path

    def test_text_summary(self, trace_path, capsys):
        assert cli_main([str(trace_path), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "serve" in out

    def test_chrome_export(self, trace_path, tmp_path, capsys):
        out_path = tmp_path / "out.trace.json"
        assert cli_main([str(trace_path), "--chrome", str(out_path)]) == 0
        assert json.loads(out_path.read_text())["traceEvents"]

    def test_query_critical_path(self, trace_path, capsys):
        trace = json.loads(trace_path.read_text())
        query_id = next(
            s["attrs"]["query_id"] for s in trace["spans"] if s["name"] == "query"
        )
        assert cli_main([str(trace_path), "--query", str(query_id)]) == 0
        assert "critical path" in capsys.readouterr().out

    def test_unknown_query_exits_1(self, trace_path, capsys):
        assert cli_main([str(trace_path), "--query", "10000"]) == 1

    def test_unreadable_trace_exits_2(self, tmp_path, capsys):
        assert cli_main([str(tmp_path / "missing.json")]) == 2

"""Tests for the FSD-Inf-Queue and FSD-Inf-Object communication channels."""

import numpy as np
import pytest
from scipy import sparse

from repro.cloud import CloudEnvironment, VirtualClock
from repro.cloud.billing import SERVICE_OBJECT, SERVICE_PUBSUB, SERVICE_QUEUE
from repro.comm import (
    ObjectChannel,
    ObjectChannelConfig,
    QueueChannel,
    QueueChannelConfig,
    ThreadPool,
)


def make_rows(num_rows, cols=8, density=0.5, seed=0, start=0):
    rng = np.random.default_rng(seed)
    matrix = sparse.random(num_rows, cols, density=density, format="csr", random_state=rng, dtype=np.float32)
    return np.arange(start, start + num_rows), matrix


@pytest.fixture
def queue_channel(cloud):
    channel = QueueChannel(cloud, QueueChannelConfig(num_topics=2, long_poll_wait_seconds=2.0))
    channel.prepare(num_workers=4)
    return channel


@pytest.fixture
def object_channel(cloud):
    channel = ObjectChannel(cloud, ObjectChannelConfig(num_buckets=2))
    channel.prepare(num_workers=4)
    return channel


class TestThreadPool:
    def test_single_thread_serialises_work(self):
        clock = VirtualClock()
        pool = ThreadPool(clock, threads=1)
        for _ in range(3):
            pool.run(lambda c: c.advance(1.0))
        pool.join()
        assert clock.now == pytest.approx(3.0)

    def test_multiple_threads_overlap_work(self):
        clock = VirtualClock()
        pool = ThreadPool(clock, threads=3)
        for _ in range(3):
            pool.run(lambda c: c.advance(1.0))
        pool.join()
        assert clock.now == pytest.approx(1.0)

    def test_join_advances_to_latest_lane(self):
        clock = VirtualClock()
        pool = ThreadPool(clock, threads=2)
        pool.run(lambda c: c.advance(5.0))
        pool.run(lambda c: c.advance(1.0))
        pool.join()
        assert clock.now == pytest.approx(5.0)

    def test_requires_at_least_one_thread(self):
        with pytest.raises(ValueError):
            ThreadPool(VirtualClock(), threads=0)


class TestQueueChannel:
    def test_prepare_creates_topics_and_queues(self, cloud, queue_channel):
        assert len(cloud.pubsub.list_topics()) == 2
        assert len(cloud.queues.list_queues()) == 4

    def test_prepare_is_idempotent(self, cloud, queue_channel):
        queue_channel.prepare(num_workers=4)
        assert len(cloud.queues.list_queues()) == 4

    def test_send_then_poll_round_trip(self, queue_channel):
        rows, matrix = make_rows(6, seed=1)
        sender_clock = VirtualClock()
        pool = ThreadPool(sender_clock, 2)
        result = queue_channel.send(layer=0, source=1, target=2, global_rows=rows, rows=matrix, pool=pool)
        pool.join()
        assert result.bytes_sent > 0

        receiver_clock = VirtualClock()
        outcome = queue_channel.poll(layer=0, worker=2, pending_sources={1}, clock=receiver_clock)
        assert outcome.completed_sources == {1}
        block = outcome.blocks[0]
        np.testing.assert_array_equal(block.global_rows, rows)
        assert (block.rows != matrix).nnz == 0

    def test_messages_filtered_to_target_worker(self, queue_channel):
        rows, matrix = make_rows(3, seed=2)
        pool = ThreadPool(VirtualClock(), 1)
        queue_channel.send(0, 0, 3, rows, matrix, pool)
        pool.join()
        # Worker 1 polls and must see nothing addressed to worker 3.
        outcome = queue_channel.poll(0, 1, {0}, VirtualClock())
        assert outcome.blocks == []
        assert outcome.completed_sources == set()

    def test_large_transfer_split_into_multiple_chunks(self, cloud):
        channel = QueueChannel(cloud, QueueChannelConfig(num_topics=1, max_message_bytes=8 * 1024))
        channel.prepare(2)
        rng = np.random.default_rng(3)
        matrix = sparse.random(200, 300, density=0.5, format="csr", random_state=rng, dtype=np.float32)
        rows = np.arange(200)
        pool = ThreadPool(VirtualClock(), 4)
        result = channel.send(1, 0, 1, rows, matrix, pool)
        pool.join()
        assert result.chunks > 1

        clock = VirtualClock()
        pending = {0}
        received = None
        while pending:
            outcome = channel.poll(1, 1, pending, clock)
            for block in outcome.blocks:
                received = block
            pending -= outcome.completed_sources
        assert received is not None
        # Chunks may arrive out of order; values must match after reordering by
        # the global row ids carried in the payloads.
        order = np.argsort(received.global_rows)
        np.testing.assert_array_equal(received.global_rows[order], rows)
        reordered = received.rows[order, :]
        assert (reordered != matrix).nnz == 0

    def test_empty_row_transfer_still_completes_source(self, queue_channel):
        empty = sparse.csr_matrix((0, 8), dtype=np.float32)
        pool = ThreadPool(VirtualClock(), 1)
        queue_channel.send(0, 0, 1, np.array([], dtype=np.int64), empty, pool)
        pool.join()
        outcome = queue_channel.poll(0, 1, {0}, VirtualClock())
        assert outcome.completed_sources == {0}

    def test_billing_records_created(self, cloud, queue_channel):
        rows, matrix = make_rows(4, seed=4)
        pool = ThreadPool(VirtualClock(), 1)
        queue_channel.send(0, 0, 1, rows, matrix, pool)
        pool.join()
        queue_channel.poll(0, 1, {0}, VirtualClock())
        assert cloud.ledger.filter(service=SERVICE_PUBSUB, operation="publish")
        assert cloud.ledger.filter(service=SERVICE_QUEUE, operation="receive")

    def test_stats_accumulate(self, queue_channel):
        rows, matrix = make_rows(4, seed=5)
        pool = ThreadPool(VirtualClock(), 1)
        queue_channel.send(0, 0, 1, rows, matrix, pool)
        pool.join()
        queue_channel.poll(0, 1, {0}, VirtualClock())
        stats = queue_channel.stats
        assert stats.messages_sent >= 1
        assert stats.publish_calls >= 1
        assert stats.poll_calls == 1
        assert stats.bytes_sent > 0
        assert stats.bytes_received > 0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            QueueChannelConfig(num_topics=0)
        with pytest.raises(ValueError):
            QueueChannelConfig(long_poll_wait_seconds=-1)
        with pytest.raises(ValueError):
            QueueChannelConfig(max_message_bytes=100)


class TestObjectChannel:
    def test_prepare_creates_buckets(self, cloud, object_channel):
        assert len(cloud.object_storage.list_buckets()) == 2

    def test_send_then_poll_round_trip(self, object_channel):
        rows, matrix = make_rows(5, seed=6)
        pool = ThreadPool(VirtualClock(), 2)
        result = object_channel.send(2, 0, 3, rows, matrix, pool)
        pool.join()
        assert result.api_calls == 1

        clock = VirtualClock(10.0)
        outcome = object_channel.poll(2, 3, {0}, clock)
        assert outcome.completed_sources == {0}
        block = outcome.blocks[0]
        np.testing.assert_array_equal(block.global_rows, rows)
        assert (block.rows != matrix).nnz == 0

    def test_empty_transfer_writes_nul_marker(self, cloud, object_channel):
        empty = sparse.csr_matrix((0, 8), dtype=np.float32)
        pool = ThreadPool(VirtualClock(), 1)
        result = object_channel.send(1, 2, 0, np.array([], dtype=np.int64), empty, pool)
        pool.join()
        assert result.bytes_sent == 0
        bucket = cloud.object_storage.get_bucket("fsd-bucket-0")
        assert bucket.object_exists("1/0/2_0.nul")
        # The receiver completes the source without issuing any GET.
        gets_before = object_channel.stats.get_calls
        outcome = object_channel.poll(1, 0, {2}, VirtualClock(5.0))
        assert outcome.completed_sources == {2}
        assert object_channel.stats.get_calls == gets_before

    def test_zero_rows_with_zero_nnz_also_writes_nul(self, object_channel):
        all_zero = sparse.csr_matrix((3, 8), dtype=np.float32)
        pool = ThreadPool(VirtualClock(), 1)
        result = object_channel.send(0, 1, 2, np.array([4, 5, 6]), all_zero, pool)
        pool.join()
        assert result.bytes_sent == 0

    def test_poll_skips_sources_not_pending(self, object_channel):
        rows, matrix = make_rows(3, seed=7)
        pool = ThreadPool(VirtualClock(), 1)
        object_channel.send(0, 0, 1, rows, matrix, pool)
        object_channel.send(0, 2, 1, rows, matrix, pool)
        pool.join()
        outcome = object_channel.poll(0, 1, {2}, VirtualClock(10.0))
        assert outcome.completed_sources == {2}
        assert all(block.source == 2 for block in outcome.blocks)

    def test_empty_scan_advances_clock_by_backoff(self, object_channel):
        clock = VirtualClock()
        outcome = object_channel.poll(5, 0, {1}, clock)
        assert outcome.blocks == []
        assert clock.now > 0.0

    def test_receiver_cannot_see_future_writes(self, object_channel):
        """An object written at virtual time T is invisible to a scan at T' < T."""
        rows, matrix = make_rows(4, seed=8)
        sender_clock = VirtualClock(100.0)
        pool = ThreadPool(sender_clock, 1)
        object_channel.send(0, 0, 1, rows, matrix, pool)
        pool.join()
        early = object_channel.poll(0, 1, {0}, VirtualClock(0.0))
        assert early.completed_sources == set()

    def test_billing_records_created(self, cloud, object_channel):
        rows, matrix = make_rows(4, seed=9)
        pool = ThreadPool(VirtualClock(), 1)
        object_channel.send(0, 0, 1, rows, matrix, pool)
        pool.join()
        object_channel.poll(0, 1, {0}, VirtualClock(10.0))
        operations = {r.operation for r in cloud.ledger.filter(service=SERVICE_OBJECT)}
        assert {"put", "list", "get"} <= operations

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ObjectChannelConfig(num_buckets=0)
        with pytest.raises(ValueError):
            ObjectChannelConfig(scan_backoff_seconds=-0.1)


class TestChannelCapabilities:
    def test_table1_feature_profiles(self):
        queue_caps = QueueChannel.capabilities
        object_caps = ObjectChannel.capabilities
        # Both channels are fully serverless with direct consumer access (Table I).
        assert queue_caps.serverless and object_caps.serverless
        assert queue_caps.direct_consumer_access and object_caps.direct_consumer_access
        # Only the pub-sub/queueing channel offers service-side filtering;
        # only object storage offers flexible (size-unconstrained) payloads.
        assert queue_caps.service_side_filtering and not object_caps.service_side_filtering
        assert object_caps.flexible_payloads and not queue_caps.flexible_payloads

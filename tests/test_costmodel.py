"""Tests for the analytical cost model, estimator, validator and recommendations."""

import pytest

from repro import (
    EngineConfig,
    FSDInference,
    HypergraphPartitioner,
    Variant,
    WorkloadCostEstimator,
    WorkloadEstimate,
    WorkloadProfile,
    estimate_from_metrics,
    recommend_variant,
    validate_cost_model,
)
from repro.cloud import PriceBook
from repro.costmodel import (
    LambdaUsage,
    ObjectCommUsage,
    QueueCommUsage,
    lambda_cost,
    object_comm_cost,
    object_total_cost,
    queue_comm_cost,
    queue_total_cost,
    serial_total_cost,
)


class TestCostEquations:
    def test_lambda_cost_equation4(self):
        prices = PriceBook()
        usage = LambdaUsage(workers=10, mean_runtime_seconds=60.0, memory_mb=2048)
        expected = 10 * prices.faas_price_per_invocation + 10 * 60 * 2 * prices.faas_price_per_gb_second
        assert lambda_cost(usage, prices) == pytest.approx(expected)

    def test_lambda_cost_with_coordinator(self):
        prices = PriceBook()
        base = LambdaUsage(workers=4, mean_runtime_seconds=10, memory_mb=1024)
        with_coord = LambdaUsage(
            workers=4, mean_runtime_seconds=10, memory_mb=1024, extra_invocations=1, extra_gb_seconds=0.5
        )
        assert lambda_cost(with_coord, prices) > lambda_cost(base, prices)

    def test_queue_comm_cost_equation5_6(self):
        prices = PriceBook()
        usage = QueueCommUsage(billed_publish_requests=100, delivered_bytes=10 ** 6, queue_api_requests=50)
        expected = (
            100 * prices.pubsub_price_per_publish
            + 10 ** 6 * prices.pubsub_price_per_byte_delivered
            + 50 * prices.queue_price_per_request
        )
        assert queue_comm_cost(usage, prices) == pytest.approx(expected)

    def test_object_comm_cost_equation7(self):
        prices = PriceBook()
        usage = ObjectCommUsage(put_requests=10, get_requests=20, list_requests=30)
        expected = (
            10 * prices.object_price_per_put
            + 20 * prices.object_price_per_get
            + 30 * prices.object_price_per_list
        )
        assert object_comm_cost(usage, prices) == pytest.approx(expected)

    def test_total_costs_compose(self):
        compute = LambdaUsage(workers=2, mean_runtime_seconds=5, memory_mb=1024)
        queue = QueueCommUsage(10, 1000, 5)
        obj = ObjectCommUsage(5, 5, 5)
        assert serial_total_cost(compute).communication == 0.0
        assert queue_total_cost(compute, queue).total == pytest.approx(
            lambda_cost(compute) + queue_comm_cost(queue)
        )
        assert object_total_cost(compute, obj).total == pytest.approx(
            lambda_cost(compute) + object_comm_cost(obj)
        )

    def test_negative_usage_rejected(self):
        with pytest.raises(ValueError):
            LambdaUsage(workers=-1, mean_runtime_seconds=1, memory_mb=128)
        with pytest.raises(ValueError):
            QueueCommUsage(-1, 0, 0)
        with pytest.raises(ValueError):
            ObjectCommUsage(-1, 0, 0)


class TestCostModelValidation:
    """Section VI-F: predictions from metrics must match the billed ledger."""

    @pytest.mark.parametrize("variant", [Variant.QUEUE, Variant.OBJECT, Variant.SERIAL])
    def test_prediction_matches_actual_within_tolerance(
        self, cloud, small_model, small_batch, variant
    ):
        workers = 1 if variant is Variant.SERIAL else 4
        config = EngineConfig(variant=variant, workers=workers, worker_memory_mb=1024)
        engine = FSDInference(cloud, config)
        result = engine.infer(small_model, small_batch)
        memory = config.serial_memory_mb if variant is Variant.SERIAL else 1024
        report = validate_cost_model(result, worker_memory_mb=memory)
        # The paper reports cent-exact agreement; the estimator reconstructs
        # billing increments from aggregate metrics, so allow a few percent.
        assert report.total_error < 0.10
        assert report.compute_error < 0.10
        assert report.summary()["actual_total"] == pytest.approx(result.cost.total)

    def test_estimate_from_metrics_components_positive(self, cloud, small_model, small_batch):
        engine = FSDInference(cloud, EngineConfig(variant=Variant.QUEUE, workers=4, worker_memory_mb=1024))
        result = engine.infer(small_model, small_batch)
        breakdown = estimate_from_metrics(result.metrics, worker_memory_mb=1024)
        assert breakdown.compute > 0
        assert breakdown.communication > 0
        assert breakdown.total == pytest.approx(breakdown.compute + breakdown.communication)


class TestWorkloadEstimator:
    def test_queue_cheaper_than_object_for_high_parallelism_small_volume(self):
        """Section IV-C: queue costs grow more slowly with P for a given volume."""
        estimator = WorkloadCostEstimator()
        common = dict(
            workers=62, layers=120, expected_runtime_seconds=120.0, worker_memory_mb=2000,
            comm_bytes=50 * 1024 * 1024, transfers=62 * 120 * 5,
        )
        queue = estimator.estimate(WorkloadEstimate(variant=Variant.QUEUE, **common))
        objekt = estimator.estimate(WorkloadEstimate(variant=Variant.OBJECT, **common))
        assert queue.communication < objekt.communication

    def test_object_cost_grows_linearly_with_workers(self):
        estimator = WorkloadCostEstimator()

        def estimate(workers):
            return estimator.estimate(
                WorkloadEstimate(
                    variant=Variant.OBJECT, workers=workers, layers=24,
                    expected_runtime_seconds=60, worker_memory_mb=2000,
                    comm_bytes=10 ** 7, transfers=workers * 24 * 4,
                )
            ).communication

        small, large = estimate(8), estimate(32)
        assert large == pytest.approx(4 * small, rel=0.3)

    def test_serial_estimate_has_no_communication(self):
        estimator = WorkloadCostEstimator()
        estimate = estimator.estimate(
            WorkloadEstimate(
                variant=Variant.SERIAL, workers=1, layers=120,
                expected_runtime_seconds=30, worker_memory_mb=10240,
            )
        )
        assert estimate.communication == 0.0

    def test_daily_cost_scales_with_query_volume(self):
        estimator = WorkloadCostEstimator()
        workload = WorkloadEstimate(
            variant=Variant.QUEUE, workers=8, layers=24, expected_runtime_seconds=20,
            worker_memory_mb=1000, comm_bytes=10 ** 6, transfers=200,
        )
        assert estimator.daily_cost(workload, 100) == pytest.approx(
            100 * estimator.estimate(workload).total
        )
        with pytest.raises(ValueError):
            estimator.daily_cost(workload, -1)


class TestRecommendations:
    def test_small_model_recommends_serial(self):
        profile = WorkloadProfile(model_bytes=10 ** 9, workers=8, per_target_layer_bytes=10 ** 5)
        assert recommend_variant(profile).variant is Variant.SERIAL

    def test_medium_model_recommends_queue(self):
        profile = WorkloadProfile(model_bytes=20 * 10 ** 9, workers=20, per_target_layer_bytes=10 ** 6)
        assert recommend_variant(profile).variant is Variant.QUEUE

    def test_huge_payloads_recommend_object(self):
        profile = WorkloadProfile(
            model_bytes=200 * 10 ** 9, workers=62, per_target_layer_bytes=10 ** 8
        )
        assert recommend_variant(profile).variant is Variant.OBJECT

    def test_reasons_are_informative(self):
        profile = WorkloadProfile(model_bytes=10 ** 9, workers=4, per_target_layer_bytes=10 ** 4)
        recommendation = recommend_variant(profile)
        assert "single" in recommendation.reason.lower()

    def test_invalid_profile_rejected(self):
        with pytest.raises(ValueError):
            WorkloadProfile(model_bytes=-1, workers=4, per_target_layer_bytes=0)
        with pytest.raises(ValueError):
            WorkloadProfile(model_bytes=1, workers=0, per_target_layer_bytes=0)

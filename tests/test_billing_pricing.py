"""Tests for the price book and the billing ledger."""

import pytest

from repro.cloud.billing import (
    SERVICE_FAAS,
    SERVICE_OBJECT,
    SERVICE_PUBSUB,
    SERVICE_QUEUE,
    BillingLedger,
)
from repro.cloud.pricing import EC2_HOURLY_PRICES, PriceBook


class TestPriceBook:
    def test_default_lambda_prices_match_aws(self):
        prices = PriceBook()
        assert prices.faas_price_per_invocation == pytest.approx(2e-7)
        assert prices.faas_price_per_gb_second == pytest.approx(0.0000166667)

    def test_publish_billed_in_64kb_increments(self):
        prices = PriceBook()
        assert prices.pubsub_billed_requests(1) == 1
        assert prices.pubsub_billed_requests(64 * 1024) == 1
        assert prices.pubsub_billed_requests(64 * 1024 + 1) == 2
        assert prices.pubsub_billed_requests(256 * 1024) == 4

    def test_empty_publish_still_billed_once(self):
        assert PriceBook().pubsub_billed_requests(0) == 1

    def test_queue_requests_billed_in_increments(self):
        prices = PriceBook()
        assert prices.queue_billed_requests(10) == 1
        assert prices.queue_billed_requests(65 * 1024) == 2

    def test_pubsub_api_an_order_of_magnitude_cheaper_than_object_put(self):
        # Section IV-C: queue/pub-sub API requests are ~1 OOM cheaper than S3.
        prices = PriceBook()
        assert prices.object_price_per_put / prices.pubsub_price_per_publish >= 9
        assert prices.object_price_per_list / prices.queue_price_per_request >= 9

    def test_vm_hourly_price_lookup(self):
        prices = PriceBook()
        assert prices.vm_hourly_price("c5.12xlarge") == EC2_HOURLY_PRICES["c5.12xlarge"]

    def test_unknown_instance_type_raises(self):
        with pytest.raises(KeyError):
            PriceBook().vm_hourly_price("m5.mythical")

    def test_with_overrides_returns_modified_copy(self):
        prices = PriceBook()
        cheaper = prices.with_overrides(object_price_per_get=1e-9)
        assert cheaper.object_price_per_get == 1e-9
        assert prices.object_price_per_get != 1e-9


class TestBillingLedger:
    def test_record_and_total(self):
        ledger = BillingLedger()
        ledger.record(SERVICE_FAAS, "invocation", "fn", 1, 0.10, 0.0)
        ledger.record(SERVICE_QUEUE, "receive", "q", 2, 0.05, 1.0)
        assert ledger.total_cost() == pytest.approx(0.15)
        assert ledger.total_cost(SERVICE_QUEUE) == pytest.approx(0.05)
        assert len(ledger) == 2

    def test_negative_quantities_rejected(self):
        ledger = BillingLedger()
        with pytest.raises(ValueError):
            ledger.record(SERVICE_FAAS, "invocation", "fn", -1, 0.1, 0.0)
        with pytest.raises(ValueError):
            ledger.record(SERVICE_FAAS, "invocation", "fn", 1, -0.1, 0.0)

    def test_filter_by_service_and_time(self):
        ledger = BillingLedger()
        ledger.record(SERVICE_OBJECT, "put", "bucket-a", 1, 0.01, 1.0)
        ledger.record(SERVICE_OBJECT, "get", "bucket-a", 1, 0.02, 5.0)
        ledger.record(SERVICE_PUBSUB, "publish", "topic-0", 1, 0.03, 2.0)
        puts = ledger.filter(service=SERVICE_OBJECT, operation="put")
        assert len(puts) == 1
        recent = ledger.filter(start_time=2.0)
        assert {r.operation for r in recent} == {"get", "publish"}
        prefixed = ledger.filter(resource_prefix="bucket")
        assert len(prefixed) == 2

    def test_report_aggregates_by_service(self):
        ledger = BillingLedger()
        ledger.record(SERVICE_FAAS, "gb_seconds", "fn", 10, 0.2, 0.0)
        ledger.record(SERVICE_QUEUE, "receive", "q", 1, 0.01, 0.0)
        ledger.record(SERVICE_PUBSUB, "publish", "t", 1, 0.02, 0.0)
        report = ledger.report()
        assert report.total == pytest.approx(0.23)
        assert report.compute_cost == pytest.approx(0.2)
        assert report.communication_cost == pytest.approx(0.03)
        assert report.record_count == 3

    def test_checkpoint_scopes_reports(self):
        ledger = BillingLedger()
        ledger.record(SERVICE_FAAS, "invocation", "fn", 1, 0.5, 0.0)
        mark = ledger.checkpoint()
        ledger.record(SERVICE_FAAS, "invocation", "fn", 1, 0.25, 1.0)
        assert ledger.report_since(mark).total == pytest.approx(0.25)
        assert ledger.report().total == pytest.approx(0.75)

    def test_invalid_checkpoint_rejected(self):
        with pytest.raises(ValueError):
            BillingLedger().records_since(-1)

    def test_reset_clears_records(self):
        ledger = BillingLedger()
        ledger.record(SERVICE_FAAS, "invocation", "fn", 1, 0.5, 0.0)
        ledger.reset()
        assert len(ledger) == 0
        assert ledger.report().total == 0.0

    def test_total_quantity_by_operation(self):
        ledger = BillingLedger()
        ledger.record(SERVICE_OBJECT, "put", "b", 3, 0.01, 0.0)
        ledger.record(SERVICE_OBJECT, "put", "b", 2, 0.01, 0.0)
        ledger.record(SERVICE_OBJECT, "get", "b", 7, 0.01, 0.0)
        assert ledger.total_quantity(SERVICE_OBJECT, "put") == 5

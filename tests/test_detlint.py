"""detlint test suite: fixture corpus, pragmas, CLI contract, live-tree gate.

The fixture corpus under ``tests/detlint_fixtures/`` holds one firing and
one non-firing file per rule; the directory is excluded from directory
walks (so the CI gate over ``tests`` never sees it) and linted here by
explicit path.  The meta-test at the bottom is the tier-1 gate: the live
tree must stay detlint-clean.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_RULES,
    ALLOWLIST,
    LintConfig,
    allowlisted,
    collect_files,
    lint_paths,
    lint_source,
    rule_table,
)
from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "detlint_fixtures"

RULE_IDS = tuple(rule.id for rule in ALL_RULES)


def lint_fixture(name: str, **config) -> "LintResult":
    return lint_paths([str(FIXTURES / name)], LintConfig(**config))


# ---------------------------------------------------------------------------
# fixture corpus: every rule has a firing and a non-firing file
# ---------------------------------------------------------------------------


class TestFixtureCorpus:
    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_firing_fixture_fires_exactly_its_rule(self, rule_id):
        name = f"det{rule_id[3:]}_fire.py"
        result = lint_fixture(name)
        assert result.findings, f"{name} should produce findings"
        assert {f.rule for f in result.findings} == {rule_id}

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_clean_fixture_is_clean(self, rule_id):
        name = f"det{rule_id[3:]}_clean.py"
        result = lint_fixture(name)
        assert result.findings == [], [f.message for f in result.findings]

    def test_det001_counts_each_wallclock_call(self):
        result = lint_fixture("det001_fire.py")
        assert len(result.findings) == 3
        assert {f.symbol for f in result.findings} == {"time", "perf_counter", "now"}

    def test_det005_distinguishes_gate_and_mutation(self):
        result = lint_fixture("det005_fire.py")
        symbols = [f.symbol for f in result.findings]
        assert symbols.count("check") == 1  # the ungated call
        assert symbols.count("mutation-before-gate") == 2

    def test_det008_distinguishes_gate_and_mutation(self):
        result = lint_fixture("det008_fire.py")
        symbols = [f.symbol for f in result.findings]
        assert symbols.count("channel_op") == 1  # the ungated call
        assert symbols.count("mutation-before-gate") == 2

    def test_det008_only_bites_in_cloud_services(self):
        # The serving layer holds `tracer` in plain locals without the gate
        # idiom (it builds the tracer itself); DET008 is scoped to cloud/.
        ungated = (
            "class C:\n"
            "    def f(self, clock):\n"
            "        self._telemetry.tracer.channel_op('q', 'op', 'r', clock.now)\n"
        )
        assert lint_source(ungated, "src/repro/serving/server.py").findings == []
        assert lint_source(ungated, "src/repro/cloud/queues.py").findings != []

    def test_det007_flags_each_container_kind(self):
        result = lint_fixture("det007_fire.py")
        assert {f.symbol for f in result.findings} == {
            "RESULTS",
            "SETTINGS",
            "SEEN",
            "_RECENT",
            "_BY_KIND",
            "_PLANS",
        }

    def test_scope_gating_out_of_role_files_do_not_fire(self):
        # The same wall-clock/unsorted/ungated code outside its role's path
        # scope is not a finding: DET001 only bites in src/repro, DET004 only
        # in fingerprint modules, DET005 only in cloud services.
        wallclock = "import time\n\ndef f():\n    return time.time()\n"
        assert lint_source(wallclock, "benchmarks/bench_something.py").findings == []
        keys_iter = "def f(d):\n    return [k for k in d.keys()]\n"
        assert lint_source(keys_iter, "src/repro/scenarios/processes.py").findings == []
        ungated = (
            "class C:\n"
            "    def f(self, clock):\n"
            "        self._faults.injector.check('q', 'op', 'r', clock.now)\n"
        )
        assert lint_source(ungated, "src/repro/serving/backends.py").findings == []

    def test_fixture_directory_is_excluded_from_walks(self):
        files = collect_files([str(REPO_ROOT / "tests")])
        assert not any("detlint_fixtures" in path for path in files)
        # ...but explicit file arguments are always linted.
        explicit = collect_files([str(FIXTURES / "det001_fire.py")])
        assert len(explicit) == 1


# ---------------------------------------------------------------------------
# pragma suppression
# ---------------------------------------------------------------------------


class TestPragmas:
    WALLCLOCK = "import time\n\n\ndef f():\n    return time.time()\n"
    PATH = "src/repro/fixture/simulated.py"

    def test_same_line_pragma_suppresses(self):
        src = self.WALLCLOCK.replace(
            "return time.time()",
            "return time.time()  # detlint: allow[DET001] host timing is reporting-only here",
        )
        result = lint_source(src, self.PATH)
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["DET001"]

    def test_line_above_pragma_suppresses(self):
        src = self.WALLCLOCK.replace(
            "    return time.time()",
            "    # detlint: allow[DET001] host timing is reporting-only here\n"
            "    return time.time()",
        )
        result = lint_source(src, self.PATH)
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["DET001"]

    def test_pragma_for_other_rule_does_not_suppress(self):
        src = self.WALLCLOCK.replace(
            "return time.time()",
            "return time.time()  # detlint: allow[DET002] wrong rule id",
        )
        result = lint_source(src, self.PATH)
        assert [f.rule for f in result.findings] == ["DET001"]

    def test_pragma_without_reason_is_det000(self):
        src = self.WALLCLOCK.replace(
            "return time.time()",
            "return time.time()  # detlint: allow[DET001]",
        )
        result = lint_source(src, self.PATH)
        rules = sorted(f.rule for f in result.findings)
        assert rules == ["DET000", "DET001"]  # finding NOT suppressed either

    def test_pragma_with_unknown_rule_is_det000(self):
        # Literals are split so this file's own raw lines never look like a
        # DET999 pragma to the linter when the live tree lints itself.
        src = "x = 1  # detlint: " "allow[DET999] no such rule\n"
        result = lint_source(src, self.PATH)
        assert [f.rule for f in result.findings] == ["DET000"]
        assert "DET999" in result.findings[0].message

    def test_det000_itself_cannot_be_suppressed(self):
        src = (
            "# detlint: " "allow[DET000] trying to silence the meta rule\n"
            "x = 1  # detlint: " "allow[DET999] bogus\n"
        )
        result = lint_source(src, self.PATH)
        assert [f.rule for f in result.findings] == ["DET000"]

    def test_multi_rule_pragma(self):
        src = (
            "import time\n"
            "# detlint: allow[DET001,DET002] fixture exercising a multi-rule pragma\n"
            "T = time.time()\n"
        )
        result = lint_source(src, self.PATH)
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_no_pragmas_audit_mode(self):
        src = self.WALLCLOCK.replace(
            "return time.time()",
            "return time.time()  # detlint: allow[DET001] suppressed in normal mode",
        )
        result = lint_source(src, self.PATH, LintConfig(use_pragmas=False))
        assert [f.rule for f in result.findings] == ["DET001"]


# ---------------------------------------------------------------------------
# select / ignore
# ---------------------------------------------------------------------------


class TestSelectIgnore:
    SRC = (
        "import time\n"
        "import random\n"
        "\n"
        "\n"
        "def f():\n"
        "    return time.time() + random.random()\n"
    )
    PATH = "src/repro/fixture/simulated.py"

    def test_unfiltered_finds_both(self):
        rules = sorted(f.rule for f in lint_source(self.SRC, self.PATH).findings)
        assert rules == ["DET001", "DET002"]

    def test_select_restricts(self):
        config = LintConfig(select=("DET002",))
        rules = [f.rule for f in lint_source(self.SRC, self.PATH, config).findings]
        assert rules == ["DET002"]

    def test_ignore_removes(self):
        config = LintConfig(ignore=("DET002",))
        rules = [f.rule for f in lint_source(self.SRC, self.PATH, config).findings]
        assert rules == ["DET001"]


# ---------------------------------------------------------------------------
# allowlist
# ---------------------------------------------------------------------------


class TestAllowlist:
    def test_every_entry_has_rationale(self):
        for entry in ALLOWLIST:
            assert entry.rule in set(RULE_IDS)
            assert len(entry.rationale) > 20, entry

    def test_campaign_wallclock_is_allowlisted(self):
        path = str(REPO_ROOT / "src" / "repro" / "experiments" / "campaign.py")
        with_table = lint_paths([path])
        assert all(f.rule != "DET001" for f in with_table.findings)
        audit = lint_paths([path], LintConfig(use_allowlist=False))
        det001 = [f for f in audit.findings if f.rule == "DET001"]
        assert det001 and all(f.symbol == "perf_counter" for f in det001)

    def test_audit_mode_surfaces_every_allowlisted_site(self):
        paths = [str(REPO_ROOT / "src")]
        audit = lint_paths(paths, LintConfig(use_allowlist=False))
        normal = lint_paths(paths)
        # Everything audit mode adds must be covered by the curated table
        # (an entry may cover several findings, e.g. repeated perf_counter).
        assert normal.findings == []
        assert audit.findings and all(allowlisted(f) for f in audit.findings)
        # No stale entries: every allowlist row still matches a live finding.
        for entry in ALLOWLIST:
            assert any(
                f.rule == entry.rule
                and f.path.endswith(entry.path_suffix)
                and f.symbol == entry.symbol
                for f in audit.findings
            ), f"stale allowlist entry: {entry}"


# ---------------------------------------------------------------------------
# CLI: formats, exit codes, JSON schema
# ---------------------------------------------------------------------------


class TestCli:
    def test_exit_zero_on_clean_file(self, capsys):
        code = main([str(FIXTURES / "det001_clean.py")])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_findings(self, capsys):
        code = main([str(FIXTURES / "det001_fire.py")])
        assert code == 1
        out = capsys.readouterr().out
        assert "DET001" in out

    def test_exit_two_on_unknown_rule(self, capsys):
        assert main(["--select", "DET999", str(FIXTURES)]) == 2

    def test_exit_two_on_missing_path(self, capsys):
        assert main(["no/such/path.py"]) == 2

    def test_json_schema(self, capsys):
        code = main([str(FIXTURES / "det002_fire.py"), "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        assert set(payload["counts"]) == {"DET002"}
        assert payload["suppressed_count"] == 0
        assert payload["allowlisted_count"] == 0
        for finding in payload["findings"]:
            assert set(finding) == {"rule", "path", "line", "col", "message", "symbol"}
            assert finding["rule"] == "DET002"
            assert finding["line"] >= 1

    def test_json_clean_output(self, capsys):
        code = main([str(FIXTURES / "det002_clean.py"), "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["counts"] == {}

    def test_select_flag(self, capsys):
        code = main([str(FIXTURES / "det002_fire.py"), "--select", "DET001"])
        assert code == 0

    def test_ignore_flag(self, capsys):
        code = main([str(FIXTURES / "det002_fire.py"), "--ignore", "DET002"])
        assert code == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out


# ---------------------------------------------------------------------------
# rule metadata + the live-tree gate
# ---------------------------------------------------------------------------


class TestRuleFramework:
    def test_rule_ids_are_stable_and_unique(self):
        assert RULE_IDS == tuple(f"DET00{i}" for i in range(1, 10))

    def test_every_rule_documents_its_invariant(self):
        for row in rule_table():
            assert row["title"]
            assert len(row["invariant"]) > 40

    def test_every_rule_has_fixture_pair(self):
        for rule_id in RULE_IDS:
            assert (FIXTURES / f"det{rule_id[3:]}_fire.py").is_file()
            assert (FIXTURES / f"det{rule_id[3:]}_clean.py").is_file()


class TestLiveTree:
    def test_live_tree_is_detlint_clean(self):
        """The tier-1 meta-gate: the repo must stay clean under its own linter."""
        paths = [str(REPO_ROOT / part) for part in ("src", "tests", "benchmarks", "examples")]
        result = lint_paths(paths)
        assert result.findings == [], [
            f"{f.path}:{f.line}: {f.rule} {f.message}" for f in result.findings
        ]
        assert result.files_checked > 100

"""Tests for the concurrent-execution engine (interleaved timelines).

Locks the subsystem's four contracts:

1. *Fair-share exactness*: the arbiter implements textbook processor
   sharing -- an op overlapping ``k`` peers on a capacity-``c`` resource
   takes ``k/c`` times its solo latency -- verified against a hand-computed
   two-chain overlap.
2. *Byte-identity*: ``ServingConfig(concurrency=None)`` (the default) and an
   interleaved serve with an unbounded :class:`ContentionConfig` produce
   bit-for-bit identical records, summaries, costs and channel stats.
3. *Determinism*: a bounded interleaved serve is reproducible across runs
   and across campaign thread/process executors.
4. *Loud collisions*: two concurrently in-flight queries sharing a resource
   namespace (duplicate query ids) fail admission with a clear error.
"""

import heapq

import pytest

from repro import (
    Campaign,
    CloudEnvironment,
    ConcurrencyConfig,
    ContentionConfig,
    EngineConfig,
    FairShareArbiter,
    FSDServingBackend,
    GraphChallengeConfig,
    InferenceQuery,
    InferenceServer,
    PoissonProcess,
    QueryWorkloadFactory,
    Scenario,
    ServingConfig,
    SporadicWorkload,
    Variant,
    build_graph_challenge_model,
    generate_sporadic_workload,
)
from repro.chaos import ChaosConfig


@pytest.fixture(scope="module")
def tiny_model():
    config = GraphChallengeConfig(
        neurons=64, layers=2, nnz_per_row=4, num_communities=4, seed=7
    )
    return build_graph_challenge_model(config)


def _queue_backend(model, workers=2):
    factory = QueryWorkloadFactory(model_builder=lambda neurons: model)
    return FSDServingBackend(
        CloudEnvironment(),
        factory,
        config_for=lambda neurons: EngineConfig(variant=Variant.QUEUE, workers=workers),
        warm_keepalive_seconds=900.0,
    )


def _flash_crowd(count=8, spacing=0.01):
    """Near-simultaneous arrivals: the canonical contention workload."""
    return SporadicWorkload(
        queries=[
            InferenceQuery(query_id=i, arrival_time=spacing * i, neurons=64, samples=4)
            for i in range(count)
        ]
    )


def _pump(arbiter, admissions):
    """Drive the arbiter standalone: admissions -> {label: (finish, delay)}.

    ``admissions`` is a list of ``(time, label, ops, latency)``; boundary
    events and admissions share one heap exactly like the serve loop
    (boundary events first at equal times).
    """
    events = []
    seq = 0
    for when, label, ops, latency in admissions:
        heapq.heappush(events, (when, 1, seq, ("admit", label, ops, latency)))
        seq += 1
    labels = {}
    finishes = {}
    while events:
        now, _, _, payload = heapq.heappop(events)
        if payload[0] == "admit":
            _, label, ops, latency = payload
            chain, reschedules = arbiter.admit(ops, now, latency)
            labels[chain.key] = label
        else:
            _, chain, generation = payload
            result = arbiter.on_event(chain, generation, now)
            if result is None:
                continue
            finished, reschedules = result
            if finished:
                finishes[labels[chain.key]] = (chain.finish, chain.delay)
        for when, generation, rechain in reschedules:
            heapq.heappush(events, (when, 0, seq, ("event", rechain, generation)))
            seq += 1
    return finishes


class TestFairShareArbiter:
    def test_two_chain_overlap_hand_computed(self):
        """Capacity 1, two full-span 10 s ops admitted at t=0 and t=5.

        Both share the queue at rate 1/2 from t=5 until the first chain
        finishes: chain A does 5 s solo + 10 s shared (5 s of work) -> 15;
        chain B does 10 s shared (5 s of work) + 5 s solo -> 20.  Each
        absorbs exactly 5 s of interference.
        """
        arbiter = FairShareArbiter(ContentionConfig(queue_capacity=1.0))
        # One shared key: distinct per-query namespaces would not contend.
        ops_a = [("queue:shared", 0.0, 10.0)]
        ops_b = [("queue:shared", 5.0, 15.0)]
        finishes = _pump(
            arbiter,
            [(0.0, "A", ops_a, 10.0), (5.0, "B", ops_b, 10.0)],
        )
        finish_a, delay_a = finishes["A"]
        finish_b, delay_b = finishes["B"]
        assert finish_a == pytest.approx(15.0)
        assert delay_a == pytest.approx(5.0)
        assert finish_b == pytest.approx(20.0)
        assert delay_b == pytest.approx(5.0)

    def test_unbounded_arbiter_is_bitwise_solo(self):
        """No capacity -> every chain finishes at exactly admit + latency."""
        arbiter = FairShareArbiter(ContentionConfig())
        admissions = [
            (0.125, "A", [("queue:shared", 0.125, 3.5), ("faas", 1.0, 7.0)], 7.25),
            (0.375, "B", [("queue:shared", 0.5, 5.0), ("faas", 0.375, 6.0)], 6.125),
            (2.5, "C", [("faas", 2.5, 4.75)], 2.25),
        ]
        finishes = _pump(arbiter, admissions)
        for when, label, _, latency in admissions:
            finish, delay = finishes[label]
            assert finish == when + latency  # bitwise, not approx
            assert delay == 0.0

    def test_capacity_at_load_never_stretches(self):
        """k == c overlapping transfers still run at full rate."""
        arbiter = FairShareArbiter(ContentionConfig(queue_capacity=2.0))
        finishes = _pump(
            arbiter,
            [
                (0.0, "A", [("queue:shared", 0.0, 10.0)], 10.0),
                (5.0, "B", [("queue:shared", 5.0, 15.0)], 10.0),
            ],
        )
        assert finishes["A"] == (10.0, 0.0)
        assert finishes["B"] == (15.0, 0.0)

    def test_faas_quota_binds_across_namespaces(self):
        """'faas' is global: two chains contend even from different queries."""
        arbiter = FairShareArbiter(ContentionConfig(faas_invocations=1.0))
        finishes = _pump(
            arbiter,
            [
                (0.0, "A", [("faas", 0.0, 10.0)], 10.0),
                (0.0, "B", [("faas", 0.0, 10.0)], 10.0),
            ],
        )
        # Perfect overlap at capacity 1: both run at rate 1/2 for 10 s, then
        # the survivor (B) finishes its remaining 5 s of work solo.
        assert finishes["A"][0] == pytest.approx(20.0)
        assert finishes["B"][0] == pytest.approx(20.0)

    def test_admit_rejects_nonpositive_latency(self):
        arbiter = FairShareArbiter(ContentionConfig())
        with pytest.raises(ValueError, match="latency"):
            arbiter.admit([], 0.0, 0.0)


class TestConfigValidation:
    def test_contention_capacities_must_be_positive(self):
        with pytest.raises(ValueError, match="queue_capacity"):
            ContentionConfig(queue_capacity=0.0)
        with pytest.raises(ValueError, match="faas_invocations"):
            ContentionConfig(faas_invocations=-1.0)

    def test_is_bounded(self):
        assert not ContentionConfig().is_bounded
        assert ContentionConfig(bucket_capacity=4.0).is_bounded

    def test_concurrency_excludes_chaos(self):
        from repro import FaultPlan

        with pytest.raises(ValueError, match="mutually exclusive"):
            ServingConfig(
                concurrency=ConcurrencyConfig(), chaos=ChaosConfig(plan=FaultPlan())
            )

    def test_concurrency_requires_exact_replay(self):
        with pytest.raises(ValueError, match="replay_mode"):
            ServingConfig(concurrency=ConcurrencyConfig(), replay_mode="columnar")

    def test_concurrency_must_be_config(self):
        with pytest.raises(ValueError, match="ConcurrencyConfig"):
            ServingConfig(concurrency=ContentionConfig())  # type: ignore[arg-type]


class TestByteIdentity:
    """The gating contract: concurrency off OR unbounded == serialized loop."""

    def test_unbounded_interleave_matches_serialized(self, tiny_model):
        workload = generate_sporadic_workload(
            daily_samples=25 * 4, batch_size=4, neuron_counts=(64,), seed=3
        )
        serialized = InferenceServer(_queue_backend(tiny_model)).serve(workload)
        interleaved = InferenceServer(
            _queue_backend(tiny_model),
            ServingConfig(concurrency=ConcurrencyConfig()),
        ).serve(workload)
        assert interleaved.records == serialized.records
        assert interleaved.summary() == serialized.summary()
        assert interleaved.cost.total == serialized.cost.total
        assert interleaved.cost.by_service == serialized.cost.by_service
        assert interleaved.channel_stats == serialized.channel_stats
        assert interleaved.peak_concurrent_queries == serialized.peak_concurrent_queries
        assert interleaved.peak_concurrent_workers == serialized.peak_concurrent_workers

    def test_unbounded_interleave_with_admission_bound(self, tiny_model):
        """The admission queue drains identically when completions coincide."""
        workload = _flash_crowd(count=6)
        config_serial = ServingConfig(max_concurrent_queries=2)
        config_inter = ServingConfig(
            max_concurrent_queries=2, concurrency=ConcurrencyConfig()
        )
        serialized = InferenceServer(_queue_backend(tiny_model), config_serial).serve(workload)
        interleaved = InferenceServer(_queue_backend(tiny_model), config_inter).serve(workload)
        assert interleaved.records == serialized.records
        assert interleaved.summary() == serialized.summary()

    def test_unbounded_summary_has_no_concurrency_key(self, tiny_model):
        report = InferenceServer(
            _queue_backend(tiny_model),
            ServingConfig(concurrency=ConcurrencyConfig()),
        ).serve(_flash_crowd(count=3))
        assert "concurrency" not in report.summary()
        assert report.concurrency_stats is None
        assert all(record.interference_seconds == 0.0 for record in report.records)


BOUNDED = ContentionConfig(faas_invocations=2.0, queue_capacity=1.0)


class TestContendedServe:
    def test_flash_crowd_p99_strictly_inflated(self, tiny_model):
        workload = _flash_crowd()
        serialized = InferenceServer(_queue_backend(tiny_model)).serve(workload)
        contended = InferenceServer(
            _queue_backend(tiny_model),
            ServingConfig(concurrency=ConcurrencyConfig(contention=BOUNDED)),
        ).serve(workload)
        assert contended.latency_percentile(99.0) > serialized.latency_percentile(99.0)
        assert all(record.interference_seconds > 0.0 for record in contended.records)

    def test_contended_summary_carries_concurrency_block(self, tiny_model):
        report = InferenceServer(
            _queue_backend(tiny_model),
            ServingConfig(concurrency=ConcurrencyConfig(contention=BOUNDED)),
        ).serve(_flash_crowd())
        block = report.summary()["concurrency"]
        assert block["config"] == {"contention": BOUNDED.describe()}
        assert block["interfered_query_count"] == report.num_queries
        assert block["interference_total_seconds"] > 0.0
        assert block["interference_max_seconds"] >= block["interference_mean_seconds"]
        faas = block["resources"]["faas"]
        assert faas["capacity"] == 2.0
        assert faas["peak_utilization"] > 1.0
        assert faas["peak_backlog"] == faas["peak_weight"] - faas["capacity"]

    def test_contention_costs_and_substrate_untouched(self, tiny_model):
        """Contention stretches the serving timeline, never the bills."""
        workload = _flash_crowd()
        serialized = InferenceServer(_queue_backend(tiny_model)).serve(workload)
        contended = InferenceServer(
            _queue_backend(tiny_model),
            ServingConfig(concurrency=ConcurrencyConfig(contention=BOUNDED)),
        ).serve(workload)
        assert contended.cost.total == serialized.cost.total
        assert contended.cost.by_service == serialized.cost.by_service
        assert contended.channel_stats == serialized.channel_stats
        for before, after in zip(serialized.records, contended.records):
            assert after.cost == before.cost
            assert after.started_at == before.started_at
            assert after.finished_at == before.finished_at + after.interference_seconds

    def test_contended_serve_is_deterministic(self, tiny_model):
        workload = _flash_crowd()
        config = ServingConfig(concurrency=ConcurrencyConfig(contention=BOUNDED))
        first = InferenceServer(_queue_backend(tiny_model), config).serve(workload)
        second = InferenceServer(_queue_backend(tiny_model), config).serve(workload)
        assert first.records == second.records
        assert first.summary() == second.summary()

    def test_contended_telemetry_records_wait_spans(self, tiny_model):
        from repro import TelemetryConfig

        report = InferenceServer(
            _queue_backend(tiny_model),
            ServingConfig(
                concurrency=ConcurrencyConfig(contention=BOUNDED),
                telemetry=TelemetryConfig(),
            ),
        ).serve(_flash_crowd(count=3))
        waits = [
            span for span in report.telemetry.spans if span.name == "contended_wait"
        ]
        assert len(waits) == 3
        for span in waits:
            assert span.end - span.start == pytest.approx(
                span.attrs["interference_seconds"]
            )


class TestNamespaceCollision:
    def test_duplicate_inflight_query_id_raises(self, tiny_model):
        workload = SporadicWorkload(
            queries=[
                InferenceQuery(query_id=7, arrival_time=0.0, neurons=64, samples=4),
                InferenceQuery(query_id=7, arrival_time=0.001, neurons=64, samples=4),
            ]
        )
        server = InferenceServer(
            _queue_backend(tiny_model), ServingConfig(concurrency=ConcurrencyConfig())
        )
        with pytest.raises(ValueError, match="namespace collision"):
            server.serve(workload)

    def test_duplicate_ids_fine_when_not_overlapping(self, tiny_model):
        """Sequential reuse of an id is legal: the namespace was released."""
        workload = SporadicWorkload(
            queries=[
                InferenceQuery(query_id=7, arrival_time=0.0, neurons=64, samples=4),
                InferenceQuery(query_id=7, arrival_time=500.0, neurons=64, samples=4),
            ]
        )
        config = ServingConfig(concurrency=ConcurrencyConfig())
        report = InferenceServer(_queue_backend(tiny_model), config).serve(workload)
        assert report.num_queries == 2


def _campaign(concurrency_sets):
    from repro import FSDBackendSpec

    scenario = Scenario(
        "poisson",
        PoissonProcess(),
        seed=3,
        daily_samples=24,
        batch_size=4,
        neuron_counts=(64,),
        horizon_seconds=600.0,
    )
    return Campaign(
        [scenario],
        backends={"fsd": FSDBackendSpec(variant="queue", workers=2, layers=2, nnz_per_row=4)},
        concurrency_sets=concurrency_sets,
    )


CONTENDED_SETS = {
    "none": None,
    "contended": ConcurrencyConfig(contention=BOUNDED),
}


class TestCampaignAxis:
    def test_axis_crosses_grid_and_tags_identity(self):
        campaign = _campaign(CONTENDED_SETS)
        report = campaign.run(max_workers=1)
        assert [cell.cell.concurrency for cell in report.cells] == ["none", "contended"]
        baseline = report.cell("poisson", "fsd")
        contended = report.cell("poisson", "fsd", concurrency="contended")
        assert contended.cell.label == "poisson/fsd/none/contended"
        assert baseline.fingerprint != contended.fingerprint
        assert "concurrency" in contended.summary
        assert "concurrency" not in baseline.summary
        exported = report.to_dict()
        assert exported["concurrency_sets"] == ["none", "contended"]
        assert "concurrency" in exported["cells"][1]
        assert "concurrency" not in exported["cells"][0]

    def test_thread_and_process_executors_identical(self):
        campaign = _campaign(CONTENDED_SETS)
        serial = campaign.run(max_workers=1)
        threaded = campaign.run(max_workers=2, executor="thread")
        processed = campaign.run(max_workers=2, executor="process")
        fingerprints = [cell.fingerprint for cell in serial.cells]
        assert [cell.fingerprint for cell in threaded.cells] == fingerprints
        assert [cell.fingerprint for cell in processed.cells] == fingerprints

    def test_chaos_and_concurrency_axes_exclusive(self):
        from repro import FaultPlan, FSDBackendSpec

        scenario = Scenario(
            "poisson",
            PoissonProcess(),
            seed=3,
            daily_samples=24,
            batch_size=4,
            neuron_counts=(64,),
            horizon_seconds=600.0,
        )
        with pytest.raises(ValueError, match="unservable"):
            Campaign(
                [scenario],
                backends={"fsd": FSDBackendSpec(variant="serial", layers=2, nnz_per_row=4)},
                chaos_sets={"faulty": ChaosConfig(plan=FaultPlan())},
                concurrency_sets=CONTENDED_SETS,
            )

"""Tests for the server, HPC and managed-endpoint baselines."""

import pytest

from repro import (
    EndpointInfeasibleError,
    EndpointLimits,
    GraphChallengeConfig,
    ServerMode,
    always_on_daily_cost,
    build_graph_challenge_model,
    generate_input_batch,
    run_endpoint_query,
    run_hpc_query,
    run_server_query,
)
from repro.baselines import model_load_bytes, paper_server_instance
from repro.cloud import SERVICE_ENDPOINT, SERVICE_VM
from repro.cloud.pricing import EC2_HOURLY_PRICES


@pytest.fixture(scope="module")
def baseline_model():
    config = GraphChallengeConfig(neurons=256, layers=4, nnz_per_row=8, num_communities=16, seed=2)
    return build_graph_challenge_model(config)


@pytest.fixture(scope="module")
def baseline_batch(baseline_model):
    return generate_input_batch(baseline_model.num_neurons, samples=16, seed=4)


class TestServerBaselines:
    def test_paper_instance_mapping(self):
        assert paper_server_instance(1024, ServerMode.JOB_SCOPED) == "c5.2xlarge"
        assert paper_server_instance(16384, ServerMode.JOB_SCOPED) == "c5.9xlarge"
        assert paper_server_instance(65536, ServerMode.JOB_SCOPED) == "c5.12xlarge"
        assert paper_server_instance(1024, ServerMode.ALWAYS_ON_HOT) == "c5.12xlarge"
        # Non-paper sizes fall back to a memory-based choice.
        assert paper_server_instance(2048, ServerMode.JOB_SCOPED) in EC2_HOURLY_PRICES

    def test_job_scoped_pays_startup_latency(self, cloud, baseline_model, baseline_batch):
        result = run_server_query(cloud, baseline_model, baseline_batch, ServerMode.JOB_SCOPED)
        assert result.startup_seconds >= 100.0
        assert result.latency_seconds > result.compute_seconds

    def test_always_on_hot_skips_model_load(self, cloud, baseline_model, baseline_batch):
        hot = run_server_query(cloud, baseline_model, baseline_batch, ServerMode.ALWAYS_ON_HOT)
        cold = run_server_query(cloud, baseline_model, baseline_batch, ServerMode.ALWAYS_ON_COLD)
        assert hot.model_load_seconds == pytest.approx(0.0)
        assert cold.model_load_seconds > 0.0
        assert hot.latency_seconds < cold.latency_seconds

    def test_latency_ordering_matches_figure5(self, cloud, baseline_model, baseline_batch):
        """AO-Hot < AO-Cold < Job-Scoped for the same model and batch."""
        hot = run_server_query(cloud, baseline_model, baseline_batch, ServerMode.ALWAYS_ON_HOT)
        cold = run_server_query(cloud, baseline_model, baseline_batch, ServerMode.ALWAYS_ON_COLD)
        job = run_server_query(cloud, baseline_model, baseline_batch, ServerMode.JOB_SCOPED)
        assert hot.latency_seconds < cold.latency_seconds < job.latency_seconds

    def test_job_scoped_billed_for_duration_only(self, cloud, baseline_model, baseline_batch):
        result = run_server_query(cloud, baseline_model, baseline_batch, ServerMode.JOB_SCOPED)
        expected = result.latency_seconds / 3600 * EC2_HOURLY_PRICES[result.instance_type]
        assert result.cost == pytest.approx(expected)
        assert cloud.ledger.filter(service=SERVICE_VM)

    def test_always_on_has_zero_marginal_query_cost(self, cloud, baseline_model, baseline_batch):
        result = run_server_query(cloud, baseline_model, baseline_batch, ServerMode.ALWAYS_ON_HOT)
        assert result.cost == 0.0

    def test_always_on_daily_cost_is_standing(self, cloud):
        cost = always_on_daily_cost(cloud, instances=2, hours=24.0)
        assert cost == pytest.approx(2 * 24 * EC2_HOURLY_PRICES["c5.12xlarge"])

    def test_model_too_large_for_instance_rejected(self, cloud, baseline_model, baseline_batch, monkeypatch):
        # Pretend the model needs more memory than a c5.large offers.
        monkeypatch.setattr(type(baseline_model), "nbytes", lambda self: 8 * 1024 ** 3)
        with pytest.raises(MemoryError):
            run_server_query(
                cloud, baseline_model, baseline_batch, ServerMode.JOB_SCOPED, instance_type="c5.large"
            )

    def test_model_load_bytes_matches_model(self, baseline_model):
        assert model_load_bytes(baseline_model) == baseline_model.nbytes()

    def test_per_sample_ms(self, cloud, baseline_model, baseline_batch):
        result = run_server_query(cloud, baseline_model, baseline_batch, ServerMode.ALWAYS_ON_HOT)
        assert result.per_sample_ms == pytest.approx(
            result.latency_seconds / baseline_batch.shape[1] * 1000
        )


class TestHPCBaseline:
    def test_latency_positive_and_decomposed(self, baseline_model, baseline_batch):
        result = run_hpc_query(baseline_model, baseline_batch, ranks=8)
        assert result.latency_seconds > 0
        assert result.latency_seconds == pytest.approx(
            result.compute_seconds + result.communication_seconds
        )

    def test_more_ranks_reduce_compute_time(self, baseline_model, baseline_batch):
        few = run_hpc_query(baseline_model, baseline_batch, ranks=2)
        many = run_hpc_query(baseline_model, baseline_batch, ranks=16)
        assert many.compute_seconds < few.compute_seconds

    def test_single_rank_has_no_communication(self, baseline_model, baseline_batch):
        result = run_hpc_query(baseline_model, baseline_batch, ranks=1)
        assert result.communication_seconds == 0.0

    def test_invalid_ranks_rejected(self, baseline_model, baseline_batch):
        with pytest.raises(ValueError):
            run_hpc_query(baseline_model, baseline_batch, ranks=0)

    def test_hpc_faster_than_job_scoped_server(self, cloud, baseline_model, baseline_batch):
        """The optimised HPC platform outperforms job-scoped VMs (Figure 5)."""
        hpc = run_hpc_query(baseline_model, baseline_batch, ranks=16)
        job = run_server_query(cloud, baseline_model, baseline_batch, ServerMode.JOB_SCOPED)
        assert hpc.latency_seconds < job.latency_seconds


class TestEndpointBaseline:
    def test_small_model_runs_and_is_billed(self, cloud, baseline_model, baseline_batch):
        result = run_endpoint_query(cloud, baseline_model, baseline_batch)
        assert result.completed
        assert result.requests >= 1
        assert result.cost > 0
        assert cloud.ledger.filter(service=SERVICE_ENDPOINT)

    def test_payload_limit_forces_multiple_requests(self, cloud, baseline_model):
        big_batch = generate_input_batch(baseline_model.num_neurons, samples=64, seed=6)
        tight = EndpointLimits(max_payload_bytes=16 * 1024)
        result = run_endpoint_query(cloud, baseline_model, big_batch, limits=tight)
        assert result.requests > 1

    def test_oversized_model_rejected(self, cloud, baseline_model, baseline_batch, monkeypatch):
        # Pretend the model is far larger than the endpoint's 6 GB memory.
        monkeypatch.setattr(type(baseline_model), "nbytes", lambda self: 10 * 1024 ** 3)
        with pytest.raises(EndpointInfeasibleError):
            run_endpoint_query(cloud, baseline_model, baseline_batch)

    def test_runtime_limit_truncates_processing(self, cloud, baseline_model, baseline_batch):
        """With an unreasonably small runtime cap, no samples can be processed."""
        impossible = EndpointLimits(max_runtime_seconds=1e-6)
        with pytest.raises(EndpointInfeasibleError):
            run_endpoint_query(cloud, baseline_model, baseline_batch, limits=impossible)

    def test_per_sample_ms_positive(self, cloud, baseline_model, baseline_batch):
        result = run_endpoint_query(cloud, baseline_model, baseline_batch)
        assert result.per_sample_ms > 0

"""End-to-end tests of the FSD-Inference engine (all variants)."""

import numpy as np
import pytest

from repro import (
    CloudEnvironment,
    EngineConfig,
    FSDInference,
    FunctionTimeoutError,
    GraphChallengeConfig,
    HypergraphPartitioner,
    LatencyModel,
    OutOfMemoryError,
    RandomPartitioner,
    Variant,
    build_graph_challenge_model,
    generate_input_batch,
)
from repro.cloud import SERVICE_FAAS, SERVICE_OBJECT, SERVICE_PUBSUB, SERVICE_QUEUE


class TestEngineConfig:
    def test_serial_variant_requires_one_worker(self):
        with pytest.raises(ValueError):
            EngineConfig(variant=Variant.SERIAL, workers=4)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(workers=0)
        with pytest.raises(ValueError):
            EngineConfig(worker_memory_mb=64)
        with pytest.raises(ValueError):
            EngineConfig(branching_factor=0)
        with pytest.raises(ValueError):
            EngineConfig(io_threads=0)
        with pytest.raises(ValueError):
            EngineConfig(memory_headroom=0.5)

    def test_resolve_worker_memory_prefers_explicit(self):
        config = EngineConfig(worker_memory_mb=3000)
        assert config.resolve_worker_memory(10 ** 9, neurons=1024) == 3000

    def test_resolve_worker_memory_uses_paper_values(self):
        config = EngineConfig()
        assert config.resolve_worker_memory(10 ** 6, neurons=16384) == 2000

    def test_resolve_worker_memory_scales_with_partition(self):
        config = EngineConfig()
        small = config.resolve_worker_memory(50 * 1024 * 1024, neurons=777)
        large = config.resolve_worker_memory(500 * 1024 * 1024, neurons=777)
        assert small < large

    def test_variant_distributed_flag(self):
        assert not Variant.SERIAL.is_distributed
        assert Variant.QUEUE.is_distributed
        assert Variant.OBJECT.is_distributed


class TestCorrectness:
    """Every variant must reproduce the single-process ground truth exactly."""

    @pytest.mark.parametrize("variant", [Variant.QUEUE, Variant.OBJECT])
    @pytest.mark.parametrize("workers", [2, 4, 7])
    def test_distributed_matches_ground_truth(self, cloud, small_model, small_batch, small_expected, variant, workers):
        engine = FSDInference(cloud, EngineConfig(variant=variant, workers=workers))
        plan = engine.partition(small_model, HypergraphPartitioner(seed=1))
        result = engine.infer(small_model, small_batch, plan)
        assert result.matches(small_expected)
        assert result.output.shape == small_expected.shape

    def test_serial_matches_ground_truth(self, cloud, small_model, small_batch, small_expected):
        engine = FSDInference(cloud, EngineConfig(variant=Variant.SERIAL, workers=1))
        result = engine.infer(small_model, small_batch)
        assert result.matches(small_expected)

    def test_random_partitioning_also_correct(self, cloud, small_model, small_batch, small_expected):
        engine = FSDInference(cloud, EngineConfig(variant=Variant.QUEUE, workers=3))
        plan = engine.partition(small_model, RandomPartitioner(seed=2))
        result = engine.infer(small_model, small_batch, plan)
        assert result.matches(small_expected)

    def test_single_sample_mvp_path(self, cloud, small_model):
        batch = generate_input_batch(small_model.num_neurons, samples=1, seed=9)
        expected = small_model.forward(batch)
        engine = FSDInference(cloud, EngineConfig(variant=Variant.OBJECT, workers=3))
        result = engine.infer(small_model, batch)
        assert result.matches(expected)

    def test_predictions_match_model(self, cloud, small_model, small_batch):
        engine = FSDInference(cloud, EngineConfig(variant=Variant.QUEUE, workers=2))
        result = engine.infer(small_model, small_batch)
        np.testing.assert_array_equal(
            result.predictions(), small_model.predict_categories(small_batch)
        )

    def test_batch_shape_mismatch_rejected(self, cloud, small_model):
        engine = FSDInference(cloud, EngineConfig(variant=Variant.SERIAL, workers=1))
        wrong = generate_input_batch(small_model.num_neurons * 2, samples=4)
        with pytest.raises(ValueError):
            engine.infer(small_model, wrong)

    def test_plan_worker_mismatch_rejected(self, cloud, small_model, small_batch, small_plan):
        engine = FSDInference(cloud, EngineConfig(variant=Variant.QUEUE, workers=8))
        with pytest.raises(ValueError):
            engine.infer(small_model, small_batch, small_plan)  # plan built for 4


class TestAccounting:
    def test_queue_run_bills_pubsub_and_queue_but_not_channel_objects(self, cloud, small_model, small_batch, small_plan):
        engine = FSDInference(cloud, EngineConfig(variant=Variant.QUEUE, workers=4))
        result = engine.infer(small_model, small_batch, small_plan)
        assert result.cost.by_service.get(SERVICE_PUBSUB, 0.0) > 0
        assert result.cost.by_service.get(SERVICE_QUEUE, 0.0) > 0
        assert result.cost.by_service.get(SERVICE_FAAS, 0.0) > 0

    def test_object_run_bills_object_storage_requests(self, cloud, small_model, small_batch, small_plan):
        engine = FSDInference(cloud, EngineConfig(variant=Variant.OBJECT, workers=4))
        result = engine.infer(small_model, small_batch, small_plan)
        assert result.cost.by_service.get(SERVICE_OBJECT, 0.0) > 0
        assert SERVICE_PUBSUB not in result.cost.by_service

    def test_serial_run_has_no_ipc_charges(self, cloud, small_model, small_batch):
        engine = FSDInference(cloud, EngineConfig(variant=Variant.SERIAL, workers=1))
        result = engine.infer(small_model, small_batch)
        assert SERVICE_PUBSUB not in result.cost.by_service
        assert SERVICE_QUEUE not in result.cost.by_service
        # Only the model/input loading GETs hit object storage.
        assert result.cost.by_service.get(SERVICE_OBJECT, 0.0) > 0

    def test_cost_scoped_to_single_run(self, cloud, small_model, small_batch, small_plan):
        engine = FSDInference(cloud, EngineConfig(variant=Variant.QUEUE, workers=4))
        first = engine.infer(small_model, small_batch, small_plan)
        second = engine.infer(small_model, small_batch, small_plan)
        total = cloud.cost_report().total
        assert first.cost.total + second.cost.total <= total + 1e-12
        # A single run's report must not include the other run's charges.
        assert first.cost.total < total

    def test_latency_and_per_sample_metrics(self, cloud, small_model, small_batch, small_plan):
        engine = FSDInference(cloud, EngineConfig(variant=Variant.QUEUE, workers=4))
        result = engine.infer(small_model, small_batch, small_plan)
        assert result.latency_seconds > 0
        assert result.per_sample_seconds == pytest.approx(result.latency_seconds / small_batch.shape[1])
        assert result.per_sample_ms == pytest.approx(result.per_sample_seconds * 1000)
        assert result.per_sample_cost == pytest.approx(result.cost.total / small_batch.shape[1])

    def test_metrics_capture_per_layer_and_per_worker(self, cloud, small_model, small_batch, small_plan):
        engine = FSDInference(cloud, EngineConfig(variant=Variant.QUEUE, workers=4))
        result = engine.infer(small_model, small_batch, small_plan)
        metrics = result.metrics
        assert len(metrics.per_layer) == small_model.num_layers
        assert len(metrics.per_worker) == 4
        assert metrics.total_bytes_sent > 0
        assert metrics.total_publish_calls > 0
        assert metrics.max_worker_runtime_seconds >= metrics.mean_worker_runtime_seconds
        assert metrics.launch_seconds >= 0
        summary = metrics.batch_summary()
        assert summary["num_workers"] == 4
        table = metrics.per_layer_table()
        assert len(table) == small_model.num_layers

    def test_launch_result_attached_for_distributed_runs(self, cloud, small_model, small_batch, small_plan):
        engine = FSDInference(cloud, EngineConfig(variant=Variant.OBJECT, workers=4))
        result = engine.infer(small_model, small_batch, small_plan)
        assert result.launch is not None
        assert len(result.launch.invocations) == 4


class TestResourceLimits:
    """The paper's memory story: the big model only runs when partitioned.

    Real Lambda deployments carry a fixed runtime footprint (Python plus the
    numeric libraries); modelling it via ``memory_overhead_mb`` lets these
    tests reproduce the paper's out-of-memory behaviour at test-sized models.
    """

    def test_serial_out_of_memory_for_oversized_model(self, cloud):
        config = GraphChallengeConfig(neurons=2048, layers=8, nnz_per_row=96, num_communities=16, seed=3)
        model = build_graph_challenge_model(config)
        batch = generate_input_batch(2048, samples=8, seed=1)
        engine = FSDInference(
            cloud,
            EngineConfig(
                variant=Variant.SERIAL, workers=1, serial_memory_mb=128, memory_overhead_mb=124
            ),
        )
        with pytest.raises(OutOfMemoryError):
            engine.infer(model, batch)

    def test_distributed_fits_where_serial_cannot(self, cloud):
        """Partitioning lets workers with the same per-instance memory run the model."""
        config = GraphChallengeConfig(neurons=2048, layers=8, nnz_per_row=96, num_communities=16, seed=3)
        model = build_graph_challenge_model(config)
        batch = generate_input_batch(2048, samples=8, seed=1)
        expected = model.forward(batch)
        engine = FSDInference(
            cloud,
            EngineConfig(
                variant=Variant.QUEUE, workers=8, worker_memory_mb=128, memory_overhead_mb=124
            ),
        )
        result = engine.infer(model, batch)
        assert result.matches(expected)

    def test_timeout_surfaces_as_function_timeout(self, small_model, small_batch):
        slow = LatencyModel(queue_receive_rtt_seconds=30.0, pubsub_fanout_delivery_seconds=30.0)
        cloud = CloudEnvironment(latency=slow)
        engine = FSDInference(
            cloud,
            EngineConfig(variant=Variant.QUEUE, workers=4, timeout_seconds=20.0),
        )
        with pytest.raises(FunctionTimeoutError):
            engine.infer(small_model, small_batch)


class TestStagingCache:
    def test_staging_is_offline_and_not_billed(self, cloud, small_model, small_batch, small_plan):
        """Model/partition staging is an offline step: no PUTs are billed to a run."""
        engine = FSDInference(cloud, EngineConfig(variant=Variant.QUEUE, workers=4))
        result = engine.infer(small_model, small_batch, small_plan)
        bucket = cloud.object_storage.get_bucket("fsd-data")
        assert bucket.total_put_requests == 0
        assert bucket.object_count == small_plan.num_workers * (small_plan.num_layers + 1)
        assert "object_storage:put" not in result.cost.by_operation

    def test_repeated_runs_reuse_staged_partitions(self, cloud, small_model, small_batch, small_plan):
        engine = FSDInference(cloud, EngineConfig(variant=Variant.QUEUE, workers=4))
        first = engine.infer(small_model, small_batch, small_plan)
        second = engine.infer(small_model, small_batch, small_plan)
        bucket = cloud.object_storage.get_bucket("fsd-data")
        # Object count is unchanged: the second run overwrote the input blocks
        # and reused the staged weight partitions.
        assert bucket.object_count == small_plan.num_workers * (small_plan.num_layers + 1)
        assert second.matches(first.output)

"""Tests for payload encoding, compression and message chunking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.comm import chunk_rows, decode_row_payload, encode_row_payload, estimate_payload_bytes


def random_rows(num_rows, cols, density, seed):
    rng = np.random.default_rng(seed)
    matrix = sparse.random(num_rows, cols, density=density, format="csr", random_state=rng, dtype=np.float32)
    global_rows = rng.choice(10_000, size=num_rows, replace=False)
    return global_rows, matrix


class TestEncodeDecode:
    def test_round_trip(self):
        rows, matrix = random_rows(8, 16, 0.4, 0)
        payload = encode_row_payload(rows, matrix)
        decoded_rows, decoded = decode_row_payload(payload)
        np.testing.assert_array_equal(decoded_rows, rows)
        assert (decoded != matrix).nnz == 0

    def test_round_trip_uncompressed(self):
        rows, matrix = random_rows(3, 4, 0.5, 1)
        payload = encode_row_payload(rows, matrix, compress=False)
        decoded_rows, decoded = decode_row_payload(payload)
        np.testing.assert_array_equal(decoded_rows, rows)
        assert (decoded != matrix).nnz == 0

    def test_empty_row_set(self):
        empty = sparse.csr_matrix((0, 10), dtype=np.float32)
        payload = encode_row_payload(np.array([], dtype=np.int64), empty)
        decoded_rows, decoded = decode_row_payload(payload)
        assert len(decoded_rows) == 0
        assert decoded.shape == (0, 10)

    def test_mismatched_lengths_rejected(self):
        _, matrix = random_rows(4, 4, 0.5, 2)
        with pytest.raises(ValueError):
            encode_row_payload([1, 2], matrix)

    def test_corrupt_payloads_rejected(self):
        with pytest.raises(ValueError):
            decode_row_payload(b"")
        with pytest.raises(ValueError):
            decode_row_payload(b"Qnonsense")

    def test_compression_helps_on_redundant_data(self):
        rows = np.arange(50)
        matrix = sparse.csr_matrix(np.ones((50, 200), dtype=np.float32))
        compressed = encode_row_payload(rows, matrix, compress=True)
        raw = encode_row_payload(rows, matrix, compress=False)
        assert len(compressed) < len(raw)


class TestChunking:
    def test_single_chunk_when_small(self):
        rows, matrix = random_rows(5, 10, 0.5, 3)
        chunks = chunk_rows(rows, matrix, max_chunk_bytes=256 * 1024)
        assert len(chunks) == 1
        assert chunks[0].row_count == 5

    def test_multiple_chunks_respect_size_limit(self):
        rng = np.random.default_rng(4)
        matrix = sparse.random(200, 400, density=0.5, format="csr", random_state=rng, dtype=np.float32)
        rows = np.arange(200)
        limit = 8 * 1024
        chunks = chunk_rows(rows, matrix, max_chunk_bytes=limit)
        assert len(chunks) > 1
        assert all(chunk.size_bytes <= limit for chunk in chunks)

    def test_chunks_reassemble_to_original(self):
        rng = np.random.default_rng(5)
        matrix = sparse.random(60, 80, density=0.4, format="csr", random_state=rng, dtype=np.float32)
        rows = np.arange(1000, 1060)
        chunks = chunk_rows(rows, matrix, max_chunk_bytes=4 * 1024)
        seen_rows = []
        blocks = []
        for chunk in chunks:
            chunk_rows_ids, chunk_matrix = decode_row_payload(chunk.payload)
            seen_rows.extend(chunk_rows_ids.tolist())
            blocks.append(chunk_matrix)
        assert seen_rows == rows.tolist()
        reassembled = sparse.vstack(blocks, format="csr")
        assert (reassembled != matrix).nnz == 0

    def test_empty_rows_still_produce_one_chunk(self):
        empty = sparse.csr_matrix((0, 12), dtype=np.float32)
        chunks = chunk_rows([], empty, max_chunk_bytes=1024)
        assert len(chunks) == 1
        assert chunks[0].row_count == 0

    def test_tiny_limit_rejected(self):
        rows, matrix = random_rows(2, 4, 0.5, 6)
        with pytest.raises(ValueError):
            chunk_rows(rows, matrix, max_chunk_bytes=8)

    def test_estimate_grows_with_nnz(self):
        small = estimate_payload_bytes(np.array([10]), 1)
        large = estimate_payload_bytes(np.array([10_000]), 1)
        assert large > small


@given(
    st.integers(min_value=1, max_value=60),
    st.integers(min_value=1, max_value=40),
    st.floats(min_value=0.0, max_value=0.7),
    st.integers(min_value=0, max_value=500),
    st.sampled_from([2 * 1024, 8 * 1024, 64 * 1024]),
)
@settings(max_examples=30, deadline=None)
def test_chunking_never_loses_rows_or_values(num_rows, cols, density, seed, limit):
    """Property: chunk_rows partitions the rows exactly and respects the limit."""
    rng = np.random.default_rng(seed)
    matrix = sparse.random(num_rows, cols, density=density, format="csr", random_state=rng, dtype=np.float32)
    rows = np.arange(num_rows)
    chunks = chunk_rows(rows, matrix, max_chunk_bytes=limit)
    assert all(chunk.size_bytes <= limit or chunk.row_count == 1 for chunk in chunks)
    decoded_rows = []
    total_nnz = 0
    for chunk in chunks:
        ids, block = decode_row_payload(chunk.payload)
        decoded_rows.extend(ids.tolist())
        total_nnz += block.nnz
    assert decoded_rows == rows.tolist()
    assert total_nnz == matrix.nnz

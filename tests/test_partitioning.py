"""Tests for partition plans, the partitioners and their quality metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partitioning import (
    ContiguousPartitioner,
    HypergraphPartitioner,
    RandomPartitioner,
    aggregate_connectivity,
    balanced_capacities,
    build_partition_plan,
    compare_plans,
    cut_weight,
    evaluate_plan,
)
from repro.workloads import GraphChallengeConfig, build_graph_challenge_model


@pytest.fixture(scope="module")
def structured_model():
    """A model with planted community structure (what HGP-DNN exploits)."""
    config = GraphChallengeConfig(
        neurons=512,
        layers=4,
        nnz_per_row=12,
        num_communities=32,
        community_link_fraction=0.95,
        seed=11,
    )
    return build_graph_challenge_model(config)


class TestSimplePartitioners:
    def test_random_partitioner_balances_row_counts(self, small_model):
        owner = RandomPartitioner(seed=1).assign(small_model, 4)
        counts = np.bincount(owner, minlength=4)
        assert counts.max() - counts.min() <= 1
        assert owner.shape[0] == small_model.num_neurons

    def test_contiguous_partitioner_assigns_ranges(self, small_model):
        owner = ContiguousPartitioner().assign(small_model, 4)
        # contiguous: owner values are non-decreasing
        assert all(owner[i] <= owner[i + 1] for i in range(len(owner) - 1))

    def test_random_partitioner_deterministic_in_seed(self, small_model):
        a = RandomPartitioner(seed=5).assign(small_model, 3)
        b = RandomPartitioner(seed=5).assign(small_model, 3)
        np.testing.assert_array_equal(a, b)

    def test_partition_validates_worker_count(self, small_model):
        with pytest.raises(ValueError):
            RandomPartitioner().partition(small_model, 0)
        with pytest.raises(ValueError):
            RandomPartitioner().partition(small_model, small_model.num_neurons + 1)


class TestPartitionPlan:
    def test_plan_structure(self, small_model, small_plan):
        assert small_plan.num_workers == 4
        assert small_plan.num_layers == small_model.num_layers
        assert small_plan.num_neurons == small_model.num_neurons
        # every neuron is owned by exactly one worker
        all_rows = np.concatenate([small_plan.worker_rows(m) for m in range(4)])
        assert sorted(all_rows.tolist()) == list(range(small_model.num_neurons))

    def test_weight_blocks_cover_model(self, small_model, small_plan):
        for layer in range(small_model.num_layers):
            total = sum(small_plan.weight_blocks[layer][m].nnz for m in range(4))
            assert total == small_model.weights[layer].nnz

    def test_send_recv_maps_are_mirrors(self, small_plan):
        for layer in range(small_plan.num_layers):
            maps = small_plan.comm_maps[layer]
            for source in range(small_plan.num_workers):
                for target, rows in maps.send[source].items():
                    np.testing.assert_array_equal(rows, maps.recv[target][source])

    def test_send_rows_are_owned_by_sender(self, small_plan):
        for layer in range(small_plan.num_layers):
            for source in range(small_plan.num_workers):
                owned = set(small_plan.worker_rows(source).tolist())
                for rows in small_plan.send_map(layer, source).values():
                    assert set(rows.tolist()) <= owned

    def test_recv_rows_cover_required_columns(self, small_model, small_plan):
        """A worker receives exactly the remote columns its weight rows reference."""
        layer = 0
        for worker in range(small_plan.num_workers):
            block = small_plan.weight_blocks[layer][worker]
            needed = set(np.unique(block.local.indices).tolist()) if block.nnz else set()
            owned = set(small_plan.worker_rows(worker).tolist())
            remote_needed = needed - owned
            received = set()
            for rows in small_plan.recv_map(layer, worker).values():
                received.update(rows.tolist())
            assert received == remote_needed

    def test_build_plan_validates_owner(self, small_model):
        with pytest.raises(ValueError):
            build_partition_plan(small_model, np.zeros(10), 2)
        bad_owner = np.zeros(small_model.num_neurons, dtype=int)
        bad_owner[0] = 7
        with pytest.raises(ValueError):
            build_partition_plan(small_model, bad_owner, 2)

    def test_single_worker_plan_has_no_communication(self, small_model):
        plan = RandomPartitioner().partition(small_model, 1)
        assert plan.total_rows_transferred() == 0

    def test_summary_keys(self, small_plan):
        summary = small_plan.summary()
        assert summary["num_workers"] == 4
        assert summary["total_rows_transferred"] == small_plan.total_rows_transferred()


class TestHypergraphPartitioner:
    def test_reduces_communication_vs_random(self, structured_model):
        hgp = HypergraphPartitioner(seed=2).partition(structured_model, 8)
        rp = RandomPartitioner(seed=2).partition(structured_model, 8)
        assert hgp.total_rows_transferred() < 0.5 * rp.total_rows_transferred()

    def test_respects_balance_constraint(self, structured_model):
        partitioner = HypergraphPartitioner(epsilon=0.05, seed=2)
        plan = partitioner.partition(structured_model, 8)
        assert plan.load_imbalance() <= 1.15  # epsilon plus discretisation slack

    def test_single_worker_short_circuit(self, structured_model):
        partitioner = HypergraphPartitioner()
        owner = partitioner.assign(structured_model, 1)
        assert set(owner.tolist()) == {0}
        assert partitioner.last_quality.cut_weight == 0.0

    def test_quality_diagnostics_populated(self, structured_model):
        partitioner = HypergraphPartitioner(seed=4)
        partitioner.partition(structured_model, 4)
        quality = partitioner.last_quality
        assert quality is not None
        assert 0.0 <= quality.cut_fraction <= 1.0
        assert quality.load_imbalance >= 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HypergraphPartitioner(epsilon=-0.1)
        with pytest.raises(ValueError):
            HypergraphPartitioner(clusters_per_part=0)

    def test_deterministic_in_seed(self, structured_model):
        a = HypergraphPartitioner(seed=7).assign(structured_model, 4)
        b = HypergraphPartitioner(seed=7).assign(structured_model, 4)
        np.testing.assert_array_equal(a, b)


class TestHelpers:
    def test_aggregate_connectivity_symmetric_no_diagonal(self, small_model):
        adjacency = aggregate_connectivity(small_model)
        assert (adjacency != adjacency.T).nnz == 0
        assert adjacency.diagonal().sum() == 0

    def test_cut_weight_zero_for_single_part(self, small_model):
        adjacency = aggregate_connectivity(small_model)
        owner = np.zeros(small_model.num_neurons, dtype=int)
        assert cut_weight(adjacency, owner) == 0.0

    def test_cut_weight_positive_for_split(self, small_model):
        adjacency = aggregate_connectivity(small_model)
        owner = np.arange(small_model.num_neurons) % 2
        assert cut_weight(adjacency, owner) > 0.0

    def test_balanced_capacities(self):
        assert balanced_capacities(100, 4, epsilon=0.0) == 25
        assert balanced_capacities(100, 4, epsilon=0.1) == pytest.approx(27.5)
        with pytest.raises(ValueError):
            balanced_capacities(100, 0)


class TestMetrics:
    def test_evaluate_plan_consistency(self, small_plan):
        metrics = evaluate_plan(small_plan)
        assert metrics.total_rows_transferred == small_plan.total_rows_transferred()
        assert metrics.num_workers == small_plan.num_workers
        assert metrics.load_imbalance == pytest.approx(small_plan.load_imbalance())
        assert len(metrics.rows_transferred_per_layer) == small_plan.num_layers

    def test_compare_plans_keys_by_partitioner(self, structured_model):
        plans = [
            HypergraphPartitioner(seed=1).partition(structured_model, 4),
            RandomPartitioner(seed=1).partition(structured_model, 4),
        ]
        comparison = compare_plans(plans)
        assert set(comparison) == {"HGP-DNN", "RP"}

    def test_as_dict_round_trip(self, small_plan):
        data = evaluate_plan(small_plan).as_dict()
        assert data["num_workers"] == 4
        assert "load_imbalance" in data


@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=0, max_value=99),
)
@settings(max_examples=20, deadline=None)
def test_plan_send_recv_symmetry_property(workers, seed):
    """Property: send/recv maps mirror each other for any partition."""
    config = GraphChallengeConfig(
        neurons=64, layers=2, nnz_per_row=4, num_communities=8, seed=seed
    )
    model = build_graph_challenge_model(config)
    plan = RandomPartitioner(seed=seed).partition(model, workers)
    for layer in range(plan.num_layers):
        maps = plan.comm_maps[layer]
        sent_pairs = {
            (source, target, tuple(rows.tolist()))
            for source in range(workers)
            for target, rows in maps.send[source].items()
        }
        recv_pairs = {
            (source, target, tuple(rows.tolist()))
            for target in range(workers)
            for source, rows in maps.recv[target].items()
        }
        assert sent_pairs == recv_pairs

"""Tests for the scenario library: arrival processes, scenarios, mixtures.

Locks the contracts ISSUE 4 introduced:

1. Every :class:`ArrivalProcess` is deterministic under a fixed seed and
   emits exactly the requested number of sorted timestamps inside the
   horizon.
2. The processes generate the *shapes* they claim: the diurnal process's
   empirical rate tracks its intensity curve, the MMPP's burst and quiet
   interarrival means separate, the flash crowd's spike window is denser
   than the baseline.
3. ``Scenario``/``build_scenario_workload`` reproduce the classic Poisson
   generator byte-for-byte and preserve the sample-accounting rules; a
   ``MixtureScenario`` preserves per-tenant query populations with tenant
   provenance on every query.
4. ``TraceProcess`` replays recorded timestamps exactly (JSON and CSV) and
   rejects malformed traces loudly.
"""

import json

import numpy as np
import pytest

from repro import (
    BurstyProcess,
    DiurnalProcess,
    FlashCrowdProcess,
    MixtureScenario,
    PoissonProcess,
    Scenario,
    SporadicWorkload,
    TraceProcess,
    build_scenario_workload,
    generate_sporadic_workload,
)

HORIZON = 86400.0

ALL_PROCESSES = [
    PoissonProcess(),
    DiurnalProcess(),
    BurstyProcess(),
    FlashCrowdProcess(),
    # allow_partial: the protocol tests request fewer arrivals than recorded.
    TraceProcess(arrival_times=np.linspace(0.0, HORIZON - 1.0, 200), allow_partial=True),
]


def _rng(seed=11):
    return np.random.default_rng(seed)


class TestArrivalProcessProtocol:
    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: p.name)
    def test_count_sorted_and_within_horizon(self, process):
        times = process.arrival_times(150, HORIZON, _rng())
        assert times.shape == (150,)
        assert np.all(np.diff(times) >= 0.0)
        assert times[0] >= 0.0 and times[-1] <= HORIZON

    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: p.name)
    def test_deterministic_in_seed(self, process):
        a = process.arrival_times(80, HORIZON, _rng(3))
        b = process.arrival_times(80, HORIZON, _rng(3))
        assert np.array_equal(a, b)

    @pytest.mark.parametrize(
        "process",
        [PoissonProcess(), DiurnalProcess(), BurstyProcess(), FlashCrowdProcess()],
        ids=lambda p: p.name,
    )
    def test_different_seeds_differ(self, process):
        a = process.arrival_times(80, HORIZON, _rng(1))
        b = process.arrival_times(80, HORIZON, _rng(2))
        assert not np.array_equal(a, b)

    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: p.name)
    def test_invalid_requests_rejected(self, process):
        with pytest.raises(ValueError):
            process.arrival_times(-1, HORIZON, _rng())
        with pytest.raises(ValueError):
            process.arrival_times(10, 0.0, _rng())

    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: p.name)
    def test_describe_is_json_friendly(self, process):
        description = process.describe()
        assert description["name"] == process.name
        json.dumps(description)

    def test_split_counts_matches_sequential_draws(self):
        """The default multi-population split IS sequential per-population draws."""
        process = PoissonProcess()
        split = process.split_counts([5, 3, 7], HORIZON, _rng(9))
        rng = _rng(9)
        expected = [process.arrival_times(count, HORIZON, rng) for count in (5, 3, 7)]
        for got, want in zip(split, expected):
            assert np.array_equal(got, want)


class TestDiurnalProcess:
    def test_empirical_rate_tracks_intensity_curve(self):
        """Arrival mass concentrates where the intensity curve is high."""
        process = DiurnalProcess(peak_time_fraction=0.5, night_level=0.05)
        times = process.arrival_times(4000, HORIZON, _rng(7))
        # Bin the day and correlate empirical counts with the curve.
        bins = np.linspace(0.0, HORIZON, 25)
        counts, _ = np.histogram(times, bins=bins)
        centers = 0.5 * (bins[:-1] + bins[1:])
        curve = process.intensity(centers, HORIZON)
        correlation = np.corrcoef(counts, curve)[0, 1]
        assert correlation > 0.9
        # Day (peak quarter) is much denser than night (trough quarters).
        day = counts[(centers > 0.375 * HORIZON) & (centers < 0.625 * HORIZON)].mean()
        night = counts[(centers < 0.125 * HORIZON) | (centers > 0.875 * HORIZON)].mean()
        assert day > 3.0 * night

    def test_intensity_bounds(self):
        process = DiurnalProcess(night_level=0.2)
        grid = np.linspace(0.0, HORIZON, 1000)
        values = process.intensity(grid, HORIZON)
        assert values.min() >= 0.2 - 1e-12
        assert values.max() <= 1.0 + 1e-12

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DiurnalProcess(peak_time_fraction=1.5)
        with pytest.raises(ValueError):
            DiurnalProcess(night_level=0.0)
        with pytest.raises(ValueError):
            DiurnalProcess(period_seconds=-1.0)


class TestBurstyProcess:
    def test_burst_and_quiet_interarrival_means_separate(self):
        """MMPP regimes are visible in the arrivals: bursts are much denser."""
        process = BurstyProcess(
            burst_factor=20.0, mean_quiet_seconds=7200.0, mean_burst_seconds=1800.0
        )
        seed = 23
        times = process.arrival_times(3000, HORIZON, _rng(seed))
        # The dwell path consumes the generator first, so a same-seeded
        # generator reconstructs the exact regime segments.
        segments = process.dwell_segments(HORIZON, _rng(seed))
        assert any(is_burst for _, _, is_burst in segments)
        assert any(not is_burst for _, _, is_burst in segments)

        def mean_gap(in_burst: bool) -> float:
            gaps = []
            for start, end, burst in segments:
                if burst is not in_burst:
                    continue
                inside = times[(times >= start) & (times < end)]
                if inside.size >= 2:
                    gaps.extend(np.diff(inside))
            return float(np.mean(gaps))

        assert mean_gap(True) * 5.0 < mean_gap(False)

    def test_dwell_segments_cover_horizon(self):
        process = BurstyProcess()
        segments = process.dwell_segments(HORIZON, _rng(5))
        assert segments[0][0] == 0.0
        assert segments[-1][1] == HORIZON
        for (_, end_a, state_a), (start_b, _, state_b) in zip(segments, segments[1:]):
            assert end_a == start_b
            assert state_a != state_b

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BurstyProcess(burst_factor=1.0)
        with pytest.raises(ValueError):
            BurstyProcess(mean_quiet_seconds=0.0)
        with pytest.raises(ValueError):
            BurstyProcess(mean_burst_seconds=-5.0)


class TestFlashCrowdProcess:
    def test_spike_window_is_denser_than_baseline(self):
        process = FlashCrowdProcess(
            spike_start_fraction=0.5, spike_duration_fraction=0.05, spike_factor=30.0
        )
        times = process.arrival_times(4000, HORIZON, _rng(13))
        spike_start, spike_end = process.spike_window(HORIZON)
        in_spike = np.count_nonzero((times >= spike_start) & (times <= spike_end))
        spike_rate = in_spike / (spike_end - spike_start)
        base_rate = (times.size - in_spike) / (HORIZON - (spike_end - spike_start))
        # The window runs at 30x the baseline; allow generous sampling slack.
        assert spike_rate > 10.0 * base_rate

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FlashCrowdProcess(spike_start_fraction=1.0)
        with pytest.raises(ValueError):
            FlashCrowdProcess(spike_duration_fraction=0.0)
        with pytest.raises(ValueError):
            FlashCrowdProcess(spike_start_fraction=0.99, spike_duration_fraction=0.05)
        with pytest.raises(ValueError):
            FlashCrowdProcess(spike_factor=0.5)


class TestTraceProcess:
    def test_replays_exact_timestamps(self):
        recorded = [0.0, 10.5, 99.0, 400.0]
        process = TraceProcess(arrival_times=recorded)
        assert np.array_equal(process.arrival_times(4, 500.0, _rng()), recorded)

    def test_partial_replay_is_opt_in(self):
        recorded = [0.0, 10.5, 99.0, 400.0]
        strict = TraceProcess(arrival_times=recorded)
        # By default an underdrawn request refuses to drop trailing arrivals.
        with pytest.raises(ValueError, match="allow_partial"):
            strict.arrival_times(2, 500.0, _rng())
        with pytest.raises(ValueError, match="allow_partial"):
            strict.split_counts([1, 1], 500.0, _rng())
        partial = TraceProcess(arrival_times=recorded, allow_partial=True)
        assert np.array_equal(partial.arrival_times(2, 500.0, _rng()), recorded[:2])

    def test_json_and_csv_loading(self, tmp_path):
        recorded = [1.0, 2.5, 7.25]
        json_path = tmp_path / "trace.json"
        json_path.write_text(json.dumps({"arrival_times": recorded}))
        assert np.array_equal(TraceProcess(path=json_path).times, recorded)

        bare_path = tmp_path / "bare.json"
        bare_path.write_text(json.dumps(recorded))
        assert np.array_equal(TraceProcess(path=bare_path).times, recorded)

        csv_path = tmp_path / "trace.csv"
        csv_path.write_text("query_id,arrival_time\n0,1.0\n1,2.5\n2,7.25\n")
        assert np.array_equal(TraceProcess(path=csv_path).times, recorded)

        headerless = tmp_path / "headerless.csv"
        headerless.write_text("1.0\n2.5\n7.25\n")
        assert np.array_equal(TraceProcess(path=headerless).times, recorded)

    def test_malformed_traces_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="sorted"):
            TraceProcess(arrival_times=[5.0, 1.0])
        with pytest.raises(ValueError, match="non-negative"):
            TraceProcess(arrival_times=[-1.0, 2.0])
        with pytest.raises(ValueError, match="at least one"):
            TraceProcess(arrival_times=[])
        with pytest.raises(ValueError, match="exactly one"):
            TraceProcess()
        with pytest.raises(ValueError, match="exactly one"):
            TraceProcess(arrival_times=[1.0], path="x.json")
        bad = tmp_path / "trace.txt"
        bad.write_text("1.0\n")
        with pytest.raises(ValueError, match="unsupported trace format"):
            TraceProcess(path=bad)

    def test_overdrawn_or_overlong_traces_rejected(self):
        process = TraceProcess(arrival_times=[1.0, 2.0, 3.0])
        with pytest.raises(ValueError, match="holds 3 arrivals"):
            process.arrival_times(4, 500.0, _rng())
        with pytest.raises(ValueError, match="past the horizon"):
            process.arrival_times(3, 2.5, _rng())

    def test_split_counts_deals_round_robin_in_arrival_order(self):
        process = TraceProcess(arrival_times=[0.0, 1.0, 2.0, 3.0, 4.0])
        first, second = process.split_counts([3, 2], 10.0, _rng())
        assert np.array_equal(first, [0.0, 2.0, 4.0])
        assert np.array_equal(second, [1.0, 3.0])
        # The global multiset of timestamps is preserved and each share sorted.
        merged = np.sort(np.concatenate([first, second]))
        assert np.array_equal(merged, [0.0, 1.0, 2.0, 3.0, 4.0])


class TestScenario:
    def test_poisson_scenario_reproduces_classic_generator(self):
        """The classic generator IS the Poisson scenario (byte-for-byte)."""
        classic = generate_sporadic_workload(
            daily_samples=104 * 16, batch_size=16, neuron_counts=(256, 512), seed=29
        )
        scenario = Scenario(
            "poisson",
            PoissonProcess(),
            daily_samples=104 * 16,
            batch_size=16,
            neuron_counts=(256, 512),
            seed=29,
        )
        built = scenario.build()
        assert built.horizon_seconds == classic.horizon_seconds
        assert built.queries == classic.queries

    def test_sample_accounting_matches_generator_rules(self):
        scenario = Scenario(
            "diurnal",
            DiurnalProcess(),
            daily_samples=103,
            batch_size=10,
            neuron_counts=(64, 128, 256),
            seed=2,
        )
        workload = scenario.build()
        assert workload.total_samples == 103
        assert sorted(workload.samples_by_neurons().values()) == [34, 34, 35]
        for queries in workload.queries_by_neurons().values():
            sizes = sorted(q.samples for q in queries)
            assert sizes[:-1] == [10] * (len(sizes) - 1)
            assert sizes[-1] >= 10

    def test_build_is_deterministic(self):
        scenario = Scenario(
            "bursty", BurstyProcess(), daily_samples=200, batch_size=10,
            neuron_counts=(64,), seed=5,
        )
        assert scenario.build().queries == scenario.build().queries

    def test_tenant_tag_stamped_on_queries(self):
        scenario = Scenario(
            "web", PoissonProcess(), daily_samples=40, batch_size=4,
            neuron_counts=(64,), seed=5, tenant="tenant-a",
        )
        workload = scenario.build()
        assert all(query.tenant == "tenant-a" for query in workload.queries)

    def test_trace_scenario_replays_recorded_arrivals(self):
        recorded = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0]
        scenario = Scenario(
            "replay",
            TraceProcess(arrival_times=recorded),
            daily_samples=24,
            batch_size=4,
            neuron_counts=(64, 128),
            seed=0,
            horizon_seconds=100.0,
        )
        workload = scenario.build()
        assert [q.arrival_time for q in workload.queries] == recorded
        # Round-robin dealing spreads the sizes across the trace.
        assert [q.neurons for q in workload.queries] == [64, 128, 64, 128, 64, 128]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Scenario("", PoissonProcess(), daily_samples=10)
        with pytest.raises(ValueError):
            build_scenario_workload(PoissonProcess(), daily_samples=0)
        with pytest.raises(ValueError):
            build_scenario_workload(PoissonProcess(), daily_samples=10, batch_size=0)
        with pytest.raises(ValueError):
            build_scenario_workload(PoissonProcess(), daily_samples=10, neuron_counts=())


class TestMixtureScenario:
    def _mixture(self):
        web = Scenario(
            "web", DiurnalProcess(), daily_samples=40, batch_size=4,
            neuron_counts=(64,), seed=5, horizon_seconds=600.0,
        )
        batch = Scenario(
            "batch", BurstyProcess(), daily_samples=24, batch_size=4,
            neuron_counts=(64, 128), seed=6, horizon_seconds=600.0,
        )
        return web, batch, MixtureScenario("mix", (web, batch))

    def test_per_tenant_query_counts_preserved(self):
        web, batch, mixture = self._mixture()
        workload = mixture.build()
        by_tenant = workload.queries_by_tenant()
        assert set(by_tenant) == {"web", "batch"}
        assert len(by_tenant["web"]) == web.build().num_queries
        assert len(by_tenant["batch"]) == batch.build().num_queries
        assert workload.num_queries == len(by_tenant["web"]) + len(by_tenant["batch"])

    def test_merged_trace_is_sorted_with_sequential_ids(self):
        _, _, mixture = self._mixture()
        workload = mixture.build()
        times = [q.arrival_time for q in workload.queries]
        assert times == sorted(times)
        assert [q.query_id for q in workload.queries] == list(range(workload.num_queries))

    def test_tenant_provenance_preserves_component_queries(self):
        """Grouping by tenant recovers each component's trace exactly."""
        web, _, mixture = self._mixture()
        merged_web = mixture.build().queries_by_tenant()["web"]
        original = web.build().queries
        assert [(q.arrival_time, q.neurons, q.samples) for q in merged_web] == [
            (q.arrival_time, q.neurons, q.samples) for q in original
        ]

    def test_per_tenant_model_size_mixes_respected(self):
        _, _, mixture = self._mixture()
        by_tenant = mixture.build().queries_by_tenant()
        assert {q.neurons for q in by_tenant["web"]} == {64}
        assert {q.neurons for q in by_tenant["batch"]} == {64, 128}

    def test_explicit_tenant_tags_win_over_names(self):
        web, batch, _ = self._mixture()
        from dataclasses import replace

        tagged = MixtureScenario("mix", (replace(web, tenant="prod"), batch))
        assert tagged.tenants == ("prod", "batch")
        assert set(tagged.build().queries_by_tenant()) == {"prod", "batch"}

    def test_horizon_is_component_maximum(self):
        web, batch, _ = self._mixture()
        from dataclasses import replace

        longer = replace(batch, horizon_seconds=1200.0)
        assert MixtureScenario("mix", (web, longer)).horizon_seconds == 1200.0

    def test_invalid_mixtures_rejected(self):
        web, batch, _ = self._mixture()
        with pytest.raises(ValueError):
            MixtureScenario("mix", ())
        with pytest.raises(ValueError):
            MixtureScenario("", (web,))
        with pytest.raises(ValueError, match="distinct"):
            MixtureScenario("mix", (web, web))

    def test_describe_names_components_and_tenants(self):
        _, _, mixture = self._mixture()
        description = mixture.describe()
        assert description["tenants"] == ["web", "batch"]
        assert [c["name"] for c in description["components"]] == ["web", "batch"]
        json.dumps(description)

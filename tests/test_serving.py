"""Tests for the shared-timeline serving layer (and its engine refactor).

Covers the three invariants the serving subsystem is built on:

1. *Identity*: a single query replayed at ``t=0`` on a cold pool is
   bit-for-bit the same as calling ``FSDInference.infer`` directly.
2. *Time-translation*: launch spans, runtimes and cost deltas of an
   invocation started at ``at_time=T`` equal those at ``t=0``.
3. *Causal warm reuse*: on a shared timeline, warm starts happen exactly
   when an execution environment sat idle for less than the keepalive --
   and are billed as warm (not cold) starts.
"""

import numpy as np
import pytest

from repro import (
    CloudEnvironment,
    EngineConfig,
    FSDInference,
    FSDServingBackend,
    GraphChallengeConfig,
    HypergraphPartitioner,
    InferenceQuery,
    InferenceServer,
    QueryWorkloadFactory,
    ServingConfig,
    SporadicWorkload,
    Variant,
    build_graph_challenge_model,
    generate_input_batch,
    generate_sporadic_workload,
)
from repro.comm import ChannelStats
from repro.core.launch import launch_worker_tree
from repro.serving import peak_overlap


@pytest.fixture(scope="module")
def tiny_model():
    config = GraphChallengeConfig(
        neurons=64, layers=2, nnz_per_row=4, num_communities=4, seed=7
    )
    return build_graph_challenge_model(config)


def _serial_backend(cloud, model, warm_keepalive_seconds=900.0):
    factory = QueryWorkloadFactory(model_builder=lambda neurons: model)
    return FSDServingBackend(
        cloud,
        factory,
        config_for=lambda neurons: EngineConfig(variant=Variant.SERIAL, workers=1),
        warm_keepalive_seconds=warm_keepalive_seconds,
    )


class TestSingleQueryIdentity:
    def test_served_query_bit_identical_to_direct_infer(
        self, small_model, small_batch, small_plan
    ):
        """Serving one query at t=0 on a cold pool IS FSDInference.infer."""
        direct_engine = FSDInference(
            CloudEnvironment(), EngineConfig(variant=Variant.QUEUE, workers=4)
        )
        direct = direct_engine.infer(small_model, small_batch, small_plan)

        backend = FSDServingBackend(
            CloudEnvironment(),
            QueryWorkloadFactory(
                model_builder=lambda neurons: small_model,
                batch_builder=lambda neurons, samples: small_batch,
            ),
            config_for=lambda neurons: EngineConfig(variant=Variant.QUEUE, workers=4),
            plan_for=lambda neurons, model: small_plan,
        )
        workload = SporadicWorkload(
            queries=[
                InferenceQuery(
                    query_id=0,
                    arrival_time=0.0,
                    neurons=small_model.num_neurons,
                    samples=small_batch.shape[1],
                )
            ]
        )
        outcome = backend.execute(workload.queries[0], at_time=0.0)
        served = outcome.result

        np.testing.assert_array_equal(served.output.indptr, direct.output.indptr)
        np.testing.assert_array_equal(served.output.indices, direct.output.indices)
        np.testing.assert_array_equal(served.output.data, direct.output.data)
        assert served.latency_seconds == direct.latency_seconds
        assert served.cost.total == direct.cost.total
        assert served.cost.by_service == direct.cost.by_service
        assert served.metrics.batch_summary() == direct.metrics.batch_summary()
        assert served.metrics.per_layer_table() == direct.metrics.per_layer_table()

    def test_server_records_match_backend_outcome(self, small_model, small_batch, small_plan):
        backend = FSDServingBackend(
            CloudEnvironment(),
            QueryWorkloadFactory(
                model_builder=lambda neurons: small_model,
                batch_builder=lambda neurons, samples: small_batch,
            ),
            config_for=lambda neurons: EngineConfig(variant=Variant.QUEUE, workers=4),
            plan_for=lambda neurons, model: small_plan,
        )
        workload = SporadicWorkload(
            queries=[
                InferenceQuery(0, 0.0, small_model.num_neurons, small_batch.shape[1])
            ]
        )
        report = InferenceServer(backend).serve(workload)
        record = report.records[0]
        assert record.started_at == 0.0
        assert record.queue_delay_seconds == 0.0
        assert record.service_seconds == record.latency_seconds
        assert report.cost.total == pytest.approx(record.cost)
        assert report.channel_stats.messages_sent > 0
        assert report.peak_concurrent_workers == 4


class TestSharedTimelineReplay:
    def test_replay_hundred_queries_yields_latencies_and_daily_cost(self, tiny_model):
        workload = generate_sporadic_workload(
            daily_samples=100 * 4, batch_size=4, neuron_counts=(64,), seed=3
        )
        assert workload.num_queries >= 100
        cloud = CloudEnvironment()
        report = InferenceServer(_serial_backend(cloud, tiny_model)).serve(workload)

        assert report.num_queries == workload.num_queries
        assert all(record.service_seconds > 0 for record in report.records)
        starts = [record.started_at for record in report.records]
        assert starts == sorted(starts)
        # One shared timeline: queries sit at their absolute arrival times.
        assert report.records[-1].started_at > 3600.0
        assert report.makespan_seconds > 3600.0
        # Daily cost report scoped to the serve, with sensible aggregates.
        assert report.cost.total > 0
        assert report.cost.record_count > 0
        assert (
            report.p50_latency_seconds
            <= report.p95_latency_seconds
            <= report.p99_latency_seconds
        )
        # Sporadic daily arrivals must produce both cold and warm starts.
        assert report.cold_start_count >= 1
        assert report.warm_start_count >= 1
        assert report.cold_start_count + report.warm_start_count == report.num_queries

    def test_replay_is_deterministic(self, tiny_model):
        workload = generate_sporadic_workload(
            daily_samples=40, batch_size=4, neuron_counts=(64,), seed=9
        )
        reports = [
            InferenceServer(_serial_backend(CloudEnvironment(), tiny_model)).serve(workload)
            for _ in range(2)
        ]
        assert reports[0].summary() == reports[1].summary()

    def test_bounded_concurrency_delays_admission(self, tiny_model):
        queries = [InferenceQuery(i, 0.0, 64, 4) for i in range(3)]
        workload = SporadicWorkload(queries=queries, horizon_seconds=60.0)
        cloud = CloudEnvironment()
        report = InferenceServer(
            _serial_backend(cloud, tiny_model),
            ServingConfig(max_concurrent_queries=1),
        ).serve(workload)
        records = report.records
        for previous, current in zip(records, records[1:]):
            assert current.started_at >= previous.finished_at
        assert records[1].queue_delay_seconds > 0
        assert report.peak_concurrent_queries == 1

    def test_unbounded_admission_overlaps_queries(self, tiny_model):
        queries = [InferenceQuery(i, 0.0, 64, 4) for i in range(3)]
        workload = SporadicWorkload(queries=queries, horizon_seconds=60.0)
        report = InferenceServer(
            _serial_backend(CloudEnvironment(), tiny_model)
        ).serve(workload)
        assert all(record.queue_delay_seconds == 0.0 for record in report.records)
        assert report.peak_concurrent_queries == 3

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ServingConfig(max_concurrent_queries=0)


class TestWarmPoolOnSharedTimeline:
    def test_warm_reuse_within_keepalive_bills_warm_not_cold(self, tiny_model):
        queries = [
            InferenceQuery(0, 0.0, 64, 4),
            InferenceQuery(1, 60.0, 64, 4),     # within the keepalive: warm
            InferenceQuery(2, 5000.0, 64, 4),   # idle > keepalive: cold again
        ]
        workload = SporadicWorkload(queries=queries)
        cloud = CloudEnvironment()
        report = InferenceServer(
            _serial_backend(cloud, tiny_model, warm_keepalive_seconds=900.0)
        ).serve(workload)
        first, second, third = report.records
        assert first.cold_starts == 1 and first.warm_starts == 0
        assert second.cold_starts == 0 and second.warm_starts == 1
        assert third.cold_starts == 1 and third.warm_starts == 0
        # Warm starts skip the cold-start delay, so the warm query is faster.
        assert second.service_seconds < first.service_seconds
        assert third.service_seconds == pytest.approx(first.service_seconds)
        # The platform's own billing records agree with the serving report.
        serial_records = [
            r for r in cloud.faas.invocation_records if "serial" in r.function_name
        ]
        assert [r.cold for r in serial_records] == [True, False, True]

    def test_serve_scopes_keepalive_and_restores_legacy_rule(self, tiny_model):
        cloud = CloudEnvironment()
        backend = _serial_backend(cloud, tiny_model)
        # Constructing a backend must not change the platform's semantics.
        assert cloud.faas.warm_keepalive_seconds is None
        workload = SporadicWorkload(queries=[InferenceQuery(0, 0.0, 64, 4)])
        InferenceServer(backend).serve(workload)
        assert cloud.faas.warm_keepalive_seconds is None
        # Direct infer calls on the same cloud keep the legacy timeless reuse
        # rule: a request at t=0 can still claim the environment the serve
        # freed at t>0.
        engine = FSDInference(cloud, EngineConfig(variant=Variant.SERIAL, workers=1))
        batch = generate_input_batch(64, samples=4, seed=11)
        result = engine.infer(tiny_model, batch)
        assert result.metrics.per_worker[0].cold_start is False

    def test_platform_configured_keepalive_wins_over_backend_default(self, tiny_model):
        cloud = CloudEnvironment(faas_warm_keepalive_seconds=10.0)
        backend = _serial_backend(cloud, tiny_model, warm_keepalive_seconds=900.0)
        queries = [InferenceQuery(0, 0.0, 64, 4), InferenceQuery(1, 60.0, 64, 4)]
        report = InferenceServer(backend).serve(SporadicWorkload(queries=queries))
        # 60 s gap > the platform's 10 s keepalive: the second query is cold.
        assert report.records[1].cold_starts == 1
        assert cloud.faas.warm_keepalive_seconds == 10.0

    def test_environment_freed_in_the_future_is_not_warm(self, cloud):
        from repro.cloud import FunctionConfig

        cloud.faas.warm_keepalive_seconds = 900.0
        cloud.faas.create_function(FunctionConfig(name="fn", memory_mb=512))
        first = cloud.faas.start_invocation("fn", at_time=100.0)
        first.charge_duration(50.0)
        first.finish()  # environment freed at ~t=150
        # A request placed before the environment was freed cannot reuse it.
        earlier = cloud.faas.start_invocation("fn", at_time=10.0)
        assert earlier.cold
        earlier.finish()

    def test_legacy_timeless_reuse_preserved_without_keepalive(self, cloud):
        from repro.cloud import FunctionConfig

        assert cloud.faas.warm_keepalive_seconds is None
        cloud.faas.create_function(FunctionConfig(name="fn", memory_mb=512))
        first = cloud.faas.start_invocation("fn", at_time=100.0)
        first.charge_duration(5.0)
        first.finish()
        # Legacy private-timeline behaviour: reuse regardless of timestamps.
        second = cloud.faas.start_invocation("fn", at_time=0.0)
        assert not second.cold
        second.finish()

    def test_warm_environment_count_respects_time_gating(self, cloud):
        from repro.cloud import FunctionConfig

        cloud.faas.warm_keepalive_seconds = 100.0
        cloud.faas.create_function(FunctionConfig(name="fn", memory_mb=512))
        invocation = cloud.faas.start_invocation("fn", at_time=0.0)
        invocation.finish()
        freed_at = invocation.clock.now
        assert cloud.faas.warm_environment_count("fn") == 1
        assert cloud.faas.warm_environment_count("fn", at_time=freed_at + 1.0) == 1
        assert cloud.faas.warm_environment_count("fn", at_time=freed_at + 1000.0) == 0


class TestNonzeroStartTimes:
    def test_distributed_infer_is_time_translation_invariant(
        self, small_model, small_batch, small_plan
    ):
        shift = 3600.0
        results = []
        for at_time in (0.0, shift):
            engine = FSDInference(
                CloudEnvironment(), EngineConfig(variant=Variant.QUEUE, workers=4)
            )
            results.append(engine.infer(small_model, small_batch, small_plan, at_time=at_time))
        base, shifted = results

        assert shifted.latency_seconds == pytest.approx(base.latency_seconds)
        assert shifted.cost.total == pytest.approx(base.cost.total)
        assert shifted.cost.by_service == pytest.approx(base.cost.by_service)
        assert shifted.launch.launch_span_seconds == pytest.approx(
            base.launch.launch_span_seconds
        )
        assert shifted.metrics.launch_seconds == pytest.approx(base.metrics.launch_seconds)
        assert shifted.metrics.coordinator_seconds == pytest.approx(
            base.metrics.coordinator_seconds
        )
        for base_worker, shifted_worker in zip(
            base.metrics.per_worker, shifted.metrics.per_worker
        ):
            assert shifted_worker.runtime_seconds == pytest.approx(
                base_worker.runtime_seconds
            )
        # The absolute placement moved by exactly the shift.
        assert shifted.started_at == shift
        assert shifted.finished_at == pytest.approx(base.finished_at + shift)
        for base_inv, shifted_inv in zip(
            base.launch.invocations, shifted.launch.invocations
        ):
            assert shifted_inv.started_at == pytest.approx(base_inv.started_at + shift)
        np.testing.assert_array_equal(shifted.output.data, base.output.data)

    def test_serial_infer_is_time_translation_invariant(self, small_model, small_batch):
        shift = 1234.5
        results = []
        for at_time in (0.0, shift):
            engine = FSDInference(
                CloudEnvironment(), EngineConfig(variant=Variant.SERIAL, workers=1)
            )
            results.append(engine.infer(small_model, small_batch, at_time=at_time))
        base, shifted = results
        assert shifted.latency_seconds == pytest.approx(base.latency_seconds)
        assert shifted.cost.total == pytest.approx(base.cost.total)
        assert shifted.finished_at == pytest.approx(base.finished_at + shift)

    def test_negative_at_time_rejected(self, small_model, small_batch):
        engine = FSDInference(
            CloudEnvironment(), EngineConfig(variant=Variant.SERIAL, workers=1)
        )
        with pytest.raises(ValueError):
            engine.infer(small_model, small_batch, at_time=-1.0)

    def test_launch_tree_standalone_at_time(self):
        from repro.cloud import FunctionConfig

        launches = []
        for at_time in (0.0, 500.0):
            platform = CloudEnvironment().faas
            platform.create_function(FunctionConfig(name="worker", memory_mb=512))
            launches.append(launch_worker_tree(platform, "worker", 5, 2, at_time=at_time))
        base, shifted = launches
        assert shifted.root_started_at >= 500.0
        assert shifted.launch_span_seconds == pytest.approx(base.launch_span_seconds)
        for base_inv, shifted_inv in zip(base.invocations, shifted.invocations):
            assert shifted_inv.started_at == pytest.approx(base_inv.started_at + 500.0)


class TestChannelStatsSnapshotDelta:
    def test_snapshot_is_independent_copy(self):
        stats = ChannelStats(bytes_sent=10, messages_sent=2)
        snap = stats.snapshot()
        stats.bytes_sent += 5
        assert snap.bytes_sent == 10
        assert stats.bytes_sent == 15

    def test_delta_subtracts_every_counter(self):
        stats = ChannelStats(bytes_sent=10, poll_calls=3)
        snap = stats.snapshot()
        stats.bytes_sent += 7
        stats.poll_calls += 2
        stats.get_calls += 1
        diff = stats.delta(snap)
        assert diff.bytes_sent == 7
        assert diff.poll_calls == 2
        assert diff.get_calls == 1
        assert diff.messages_sent == 0

    def test_merge_of_delta_and_snapshot_roundtrips(self):
        stats = ChannelStats(bytes_sent=4, put_calls=1)
        snap = stats.snapshot()
        stats.bytes_sent += 6
        recombined = snap.merge(stats.delta(snap))
        assert vars(recombined) == vars(stats)


class TestPeakOverlap:
    def test_touching_intervals_do_not_overlap(self):
        assert peak_overlap([(0.0, 1.0), (1.0, 2.0)]) == 1

    def test_nested_intervals_counted(self):
        assert peak_overlap([(0.0, 10.0), (1.0, 2.0), (3.0, 4.0), (3.5, 9.0)]) == 3

    def test_empty(self):
        assert peak_overlap([]) == 0

    def test_zero_length_interval_counts_as_momentarily_active(self):
        """An instantaneous query must not vanish from peak concurrency."""
        assert peak_overlap([(5.0, 5.0)]) == 1

    def test_zero_length_interval_overlaps_a_strictly_containing_interval(self):
        assert peak_overlap([(0.0, 10.0), (5.0, 5.0)]) == 2

    def test_zero_length_interval_touching_endpoints_does_not_overlap(self):
        # The touching rule applies to instants too: a zero-length interval at
        # another interval's start (or end) releases/claims its slot cleanly.
        assert peak_overlap([(5.0, 5.0), (5.0, 10.0)]) == 1
        assert peak_overlap([(0.0, 5.0), (5.0, 5.0)]) == 1

    def test_coinciding_zero_length_intervals_are_concurrent(self):
        assert peak_overlap([(3.0, 3.0), (3.0, 3.0)]) == 2

    def test_zero_length_does_not_inflate_a_larger_peak_elsewhere(self):
        assert peak_overlap([(0.0, 10.0), (1.0, 9.0), (20.0, 20.0)]) == 2

    def test_instantaneous_queries_visible_in_served_peaks(self, tiny_model):
        """End-to-end: a zero-latency backend still reports peak concurrency."""

        from repro.serving import ServingBackend
        from repro.serving.backends import QueryOutcome

        class InstantBackend(ServingBackend):
            name = "instant"
            factory = QueryWorkloadFactory()

            def _execute(self, query, model, batch, at_time):
                return QueryOutcome(latency_seconds=0.0, cost=0.0)

            def execute(self, query, at_time):  # skip model materialisation
                return self._execute(query, None, None, at_time)

        workload = SporadicWorkload(
            queries=[InferenceQuery(0, 10.0, 64, 4), InferenceQuery(1, 10.0, 64, 4)]
        )
        report = InferenceServer(InstantBackend()).serve(workload)
        assert report.peak_concurrent_queries == 2


class TestEmptyReportPercentiles:
    def _empty_report(self):
        from repro.cloud import CostReport
        from repro.serving import ServingConfig, ServingReport

        return ServingReport(
            backend="fsd",
            config=ServingConfig(),
            horizon_seconds=0.0,
            records=[],
            cost=CostReport(),
            peak_concurrent_queries=0,
            peak_concurrent_workers=0,
        )

    def test_percentiles_of_empty_report_are_nan_not_zero(self):
        import math

        report = self._empty_report()
        assert math.isnan(report.latency_percentile(50.0))
        assert math.isnan(report.p50_latency_seconds)
        assert math.isnan(report.p95_latency_seconds)
        assert math.isnan(report.p99_latency_seconds)

    def test_summary_maps_empty_percentiles_to_none(self):
        import json

        summary = self._empty_report().summary()
        assert summary["p50_latency_seconds"] is None
        assert summary["p95_latency_seconds"] is None
        assert summary["p99_latency_seconds"] is None
        # The summary stays JSON-serialisable (None, not NaN).
        json.dumps(summary)

    def test_nonempty_summary_percentiles_are_plain_floats(self, tiny_model):
        workload = SporadicWorkload(queries=[InferenceQuery(0, 0.0, 64, 4)])
        summary = (
            InferenceServer(_serial_backend(CloudEnvironment(), tiny_model))
            .serve(workload)
            .summary()
        )
        assert isinstance(summary["p50_latency_seconds"], float)


class TestChannelStatsAccumulate:
    def test_accumulate_matches_merge(self):
        total_merge = ChannelStats()
        total_accumulate = ChannelStats()
        parts = [
            ChannelStats(bytes_sent=10, messages_sent=2, poll_calls=1),
            ChannelStats(bytes_received=7, get_calls=3),
            ChannelStats(bytes_sent=5, empty_polls=4, delete_calls=2),
        ]
        for part in parts:
            total_merge = total_merge.merge(part)
            returned = total_accumulate.accumulate(part)
            assert returned is total_accumulate
        assert vars(total_accumulate) == vars(total_merge)

    def test_accumulate_agrees_with_snapshot_delta_bookkeeping(self):
        # The serving loop's in-place fold must equal reconstructing the same
        # totals from snapshot()/delta() pairs around each increment.
        live = ChannelStats(bytes_sent=3)
        folded = ChannelStats()
        for increment in (4, 9, 1):
            before = live.snapshot()
            live.bytes_sent += increment
            live.poll_calls += 1
            folded.accumulate(live.delta(before))
        assert folded.bytes_sent == 14
        assert folded.poll_calls == 3
        assert vars(live.delta(ChannelStats(bytes_sent=3))) == vars(folded)


class TestServerBackendColdWarmDerivation:
    def _serve_mode(self, mode, small_model, small_batch):
        from repro import ServerMode, ServerServingBackend

        backend = ServerServingBackend(
            CloudEnvironment(),
            mode,
            QueryWorkloadFactory(
                model_builder=lambda neurons: small_model,
                batch_builder=lambda neurons, samples: small_batch,
            ),
        )
        workload = SporadicWorkload(
            queries=[InferenceQuery(0, 0.0, small_model.num_neurons, small_batch.shape[1])]
        )
        return InferenceServer(backend).serve(workload)

    def test_always_on_cold_is_a_warm_start(self, small_model, small_batch):
        """The fleet is already provisioned: reloading the model is not a cold
        start, it is always-on-cold's steady-state service latency."""
        from repro import ServerMode

        report = self._serve_mode(ServerMode.ALWAYS_ON_COLD, small_model, small_batch)
        assert report.cold_start_count == 0
        assert report.warm_start_count == 1

    def test_always_on_hot_is_a_warm_start(self, small_model, small_batch):
        from repro import ServerMode

        report = self._serve_mode(ServerMode.ALWAYS_ON_HOT, small_model, small_batch)
        assert report.cold_start_count == 0
        assert report.warm_start_count == 1

    def test_job_scoped_provisions_and_is_cold(self, small_model, small_batch):
        from repro import ServerMode

        report = self._serve_mode(ServerMode.JOB_SCOPED, small_model, small_batch)
        assert report.cold_start_count == 1
        assert report.warm_start_count == 0

    def test_provisioned_flag_reflects_what_ran(self, cloud, small_model, small_batch):
        from repro import ServerMode, run_server_query

        job = run_server_query(cloud, small_model, small_batch, ServerMode.JOB_SCOPED)
        cold = run_server_query(cloud, small_model, small_batch, ServerMode.ALWAYS_ON_COLD)
        assert job.provisioned
        assert not cold.provisioned


class TestPerTenantReporting:
    """Tenant provenance survives the replay and pivots per tenant."""

    def _mixture_workload(self):
        from repro import MixtureScenario, PoissonProcess, Scenario

        shared = dict(
            daily_samples=16, batch_size=4, neuron_counts=(64,), horizon_seconds=600.0
        )
        return MixtureScenario(
            "mix",
            (
                Scenario("web", PoissonProcess(), seed=5, **shared),
                Scenario("batch", PoissonProcess(), seed=6, **shared),
            ),
        ).build()

    def test_untagged_workload_summary_has_no_tenants_key(self, tiny_model):
        workload = generate_sporadic_workload(
            daily_samples=16, batch_size=4, neuron_counts=(64,), seed=3
        )
        report = InferenceServer(
            _serial_backend(CloudEnvironment(), tiny_model)
        ).serve(workload)
        assert "tenants" not in report.summary()
        assert all(record.tenant is None for record in report.records)
        assert set(report.by_tenant()) == {None}

    def test_tenant_tags_survive_replay(self, tiny_model):
        workload = self._mixture_workload()
        report = InferenceServer(
            _serial_backend(CloudEnvironment(), tiny_model)
        ).serve(workload)
        expected = {t: len(qs) for t, qs in workload.queries_by_tenant().items()}
        got = {t: len(rs) for t, rs in report.records_by_tenant().items()}
        assert got == expected

    def test_by_tenant_pivot_is_consistent_with_aggregates(self, tiny_model):
        workload = self._mixture_workload()
        report = InferenceServer(
            _serial_backend(CloudEnvironment(), tiny_model)
        ).serve(workload)
        pivot = report.by_tenant()
        assert set(pivot) == {"web", "batch"}
        assert sum(view["num_queries"] for view in pivot.values()) == report.num_queries
        assert sum(view["cost_total"] for view in pivot.values()) == pytest.approx(
            sum(record.cost for record in report.records)
        )
        assert (
            sum(view["cold_start_count"] for view in pivot.values())
            == report.cold_start_count
        )
        for view in pivot.values():
            assert view["p50_latency_seconds"] <= view["p95_latency_seconds"]
            assert 0.0 <= view["cold_start_fraction"] <= 1.0

    def test_summary_tenants_key_matches_pivot(self, tiny_model):
        workload = self._mixture_workload()
        report = InferenceServer(
            _serial_backend(CloudEnvironment(), tiny_model)
        ).serve(workload)
        summary = report.summary()
        assert set(summary["tenants"]) == {"web", "batch"}
        assert summary["tenants"]["web"] == report.by_tenant()["web"]
        # the tenants key is JSON-serialisable (fingerprint payload)
        import json

        json.dumps(summary, sort_keys=True)

    def test_tenants_survive_coalesced_batches(self, tiny_model):
        from repro import BatchCoalescingPolicy

        workload = self._mixture_workload()
        report = InferenceServer(
            _serial_backend(CloudEnvironment(), tiny_model),
            ServingConfig(policies=(BatchCoalescingPolicy(window_seconds=600.0),)),
        ).serve(workload)
        assert report.coalesced_query_count > 0
        merged = [record for record in report.records if record.was_coalesced]
        by_id = {query.query_id: query for query in workload.queries}
        for record in merged:
            assert record.tenant == by_id[record.query_id].tenant

"""Tests for the serving policy engine (coalescing, autoscaling, event loop).

Locks the three contracts ISSUE 3 introduced:

1. *Policies-off identity*: the event-driven scheduler with no policies is
   byte-identical to the PR 2 inline admission loop (reimplemented here as a
   reference), so every pre-policy fingerprint stays valid.
2. *Batch coalescing*: same-model queries inside the window merge into one
   backend execution with exact cost attribution and provenance; window
   boundaries behave as specified (zero window = no batching, deadline
   arrivals start the next window, mixed sizes never merge) and the
   analytical cost model can veto merging.
3. *Queue-depth autoscaling*: the admission limit responds monotonically to
   queue depth and supersedes the static bound.
"""

import heapq

import pytest

from repro import (
    BatchCoalescingPolicy,
    CloudEnvironment,
    CoalescingProfile,
    EngineConfig,
    FSDServingBackend,
    InferenceQuery,
    InferenceServer,
    QueryWorkloadFactory,
    QueueDepthAutoscaler,
    ServingConfig,
    SporadicWorkload,
    Variant,
    generate_sporadic_workload,
    merge_queries,
    recommend_coalescing,
)
from repro.serving import QueryRecord


@pytest.fixture
def serial_backend(tiny_model_policies):
    def build(cloud=None):
        return FSDServingBackend(
            cloud or CloudEnvironment(),
            QueryWorkloadFactory(model_builder=lambda neurons: tiny_model_policies),
            config_for=lambda neurons: EngineConfig(variant=Variant.SERIAL, workers=1),
        )

    return build


@pytest.fixture(scope="module")
def tiny_model_policies():
    from repro import GraphChallengeConfig, build_graph_challenge_model

    config = GraphChallengeConfig(
        neurons=64, layers=2, nnz_per_row=4, num_communities=4, seed=7
    )
    return build_graph_challenge_model(config)


def _coalescing_server(backend, window_seconds, **kwargs):
    policy = BatchCoalescingPolicy(window_seconds=window_seconds, **kwargs)
    return InferenceServer(backend, ServingConfig(policies=(policy,))), policy


class TestMergeQueries:
    def test_provenance_and_samples(self):
        queries = [
            InferenceQuery(5, 30.0, 64, 4),
            InferenceQuery(2, 10.0, 64, 8),
        ]
        merged = merge_queries(queries)
        assert merged.query_id == 2  # earliest arrival leads
        assert merged.arrival_time == 10.0
        assert merged.samples == 12
        assert merged.merged_from == (2, 5)
        assert merged.is_merged
        assert not queries[0].is_merged

    def test_mixed_model_sizes_rejected(self):
        with pytest.raises(ValueError):
            merge_queries([InferenceQuery(0, 0.0, 64, 4), InferenceQuery(1, 1.0, 128, 4)])

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            merge_queries([])


class TestPoliciesOffRegression:
    """The event loop with no policies IS the PR 2 inline admission loop."""

    @staticmethod
    def _reference_serve(backend, workload, max_concurrent_queries):
        """The pre-event-loop scheduler, verbatim from PR 2."""
        backend.begin(workload)
        in_flight = []
        records = []
        for query in workload.iter_trace():
            start = query.arrival_time
            while in_flight and in_flight[0] <= start:
                heapq.heappop(in_flight)
            if max_concurrent_queries is not None:
                while len(in_flight) >= max_concurrent_queries:
                    start = max(start, heapq.heappop(in_flight))
            outcome = backend.execute(query, at_time=start)
            finished = start + outcome.latency_seconds
            heapq.heappush(in_flight, finished)
            records.append(
                QueryRecord(
                    query_id=query.query_id,
                    neurons=query.neurons,
                    samples=query.samples,
                    arrival_time=query.arrival_time,
                    started_at=start,
                    finished_at=finished,
                    cost=outcome.cost,
                    cold_starts=outcome.cold_starts,
                    warm_starts=outcome.warm_starts,
                )
            )
        return records, backend.finish()

    @pytest.mark.parametrize("limit", [None, 1, 2])
    def test_event_loop_matches_reference_byte_for_byte(self, serial_backend, limit):
        workload = generate_sporadic_workload(
            daily_samples=30 * 4, batch_size=4, neuron_counts=(64,), seed=17
        )
        reference_records, reference_cost = self._reference_serve(
            serial_backend(), workload, limit
        )
        report = InferenceServer(
            serial_backend(), ServingConfig(max_concurrent_queries=limit)
        ).serve(workload)
        assert report.records == reference_records
        assert report.cost.total == reference_cost.total
        assert report.cost.by_service == reference_cost.by_service

    def test_policy_free_summary_has_no_policy_keys(self, serial_backend):
        workload = SporadicWorkload(queries=[InferenceQuery(0, 0.0, 64, 4)])
        summary = InferenceServer(serial_backend()).serve(workload).summary()
        assert "policies" not in summary
        assert set(summary) == {
            "backend",
            "num_queries",
            "total_samples",
            "cost_total",
            "p50_latency_seconds",
            "p95_latency_seconds",
            "p99_latency_seconds",
            "makespan_seconds",
            "cold_start_count",
            "warm_start_count",
            "peak_concurrent_queries",
            "peak_concurrent_workers",
        }


class TestBatchCoalescing:
    def test_queries_inside_window_merge_into_one_execution(self, serial_backend):
        queries = [InferenceQuery(i, 10.0 * i, 64, 4) for i in range(3)]
        workload = SporadicWorkload(queries=queries, horizon_seconds=600.0)
        server, policy = _coalescing_server(serial_backend(), window_seconds=60.0)
        report = server.serve(workload)

        assert report.execution_count == 1
        assert report.coalesced_query_count == 3
        assert policy.released == [(64, 3)]
        for record in report.records:
            assert record.coalesced_group == (0, 1, 2)
            # The batch starts when the window closes (leader arrival + window).
            assert record.started_at == 60.0
        # Every query observes the merged completion relative to its own arrival.
        latencies = [record.latency_seconds for record in report.records]
        assert latencies[0] > latencies[1] > latencies[2]

    def test_merged_cost_attribution_is_exact_and_cheaper(self, serial_backend):
        queries = [InferenceQuery(i, 5.0 * i, 64, 4) for i in range(4)]
        workload = SporadicWorkload(queries=queries, horizon_seconds=600.0)
        unbatched = InferenceServer(serial_backend()).serve(workload)
        server, _ = _coalescing_server(serial_backend(), window_seconds=120.0)
        coalesced = server.serve(workload)

        # Per-query shares sum back to the ledger total of the serve (exact up
        # to one ulp of re-summation order).
        assert sum(r.cost for r in coalesced.records) == pytest.approx(
            coalesced.cost.total, rel=1e-12
        )
        # Figure-4 economics: one merged request beats four separate ones.
        assert coalesced.cost.total < unbatched.cost.total
        # The single merged execution launched once: one cold start in total.
        assert coalesced.cold_start_count + coalesced.warm_start_count == 1

    def test_zero_window_equals_no_batching(self, serial_backend):
        # Includes two queries arriving at the exact same instant: with a
        # zero-second window the release tick still precedes them.
        queries = [
            InferenceQuery(0, 0.0, 64, 4),
            InferenceQuery(1, 0.0, 64, 4),
            InferenceQuery(2, 50.0, 64, 4),
        ]
        workload = SporadicWorkload(queries=queries, horizon_seconds=600.0)
        plain = InferenceServer(serial_backend()).serve(workload)
        server, _ = _coalescing_server(serial_backend(), window_seconds=0.0)
        zero = server.serve(workload)

        assert zero.execution_count == 3
        assert zero.coalesced_query_count == 0
        assert [
            (r.query_id, r.started_at, r.finished_at, r.cost) for r in zero.records
        ] == [(r.query_id, r.started_at, r.finished_at, r.cost) for r in plain.records]

    def test_query_straddling_the_window_starts_a_new_batch(self, serial_backend):
        queries = [
            InferenceQuery(0, 0.0, 64, 4),
            InferenceQuery(1, 30.0, 64, 4),   # inside the window: merges
            InferenceQuery(2, 60.0, 64, 4),   # exactly at the deadline: next window
            InferenceQuery(3, 200.0, 64, 4),  # far outside: alone
        ]
        workload = SporadicWorkload(queries=queries, horizon_seconds=600.0)
        server, policy = _coalescing_server(serial_backend(), window_seconds=60.0)
        report = server.serve(workload)

        groups = [record.coalesced_group for record in report.records]
        assert groups[0] == (0, 1) and groups[1] == (0, 1)
        assert groups[2] == () and groups[3] == ()
        assert report.execution_count == 3
        assert policy.released == [(64, 2), (64, 1), (64, 1)]

    def test_mixed_model_sizes_never_merge(self, tiny_model_policies):
        from repro import GraphChallengeConfig, build_graph_challenge_model

        other = build_graph_challenge_model(
            GraphChallengeConfig(
                neurons=128, layers=2, nnz_per_row=4, num_communities=4, seed=7
            )
        )
        models = {64: tiny_model_policies, 128: other}
        backend = FSDServingBackend(
            CloudEnvironment(),
            QueryWorkloadFactory(model_builder=lambda neurons: models[neurons]),
            config_for=lambda neurons: EngineConfig(variant=Variant.SERIAL, workers=1),
        )
        queries = [
            InferenceQuery(0, 0.0, 64, 4),
            InferenceQuery(1, 1.0, 128, 4),
            InferenceQuery(2, 2.0, 64, 4),
        ]
        workload = SporadicWorkload(queries=queries, horizon_seconds=600.0)
        server, _ = _coalescing_server(backend, window_seconds=60.0)
        report = server.serve(workload)

        by_id = {record.query_id: record for record in report.records}
        assert by_id[0].coalesced_group == (0, 2)
        assert by_id[2].coalesced_group == (0, 2)
        assert by_id[1].coalesced_group == ()
        assert report.execution_count == 2

    def test_full_batch_closes_the_window_early(self, serial_backend):
        queries = [InferenceQuery(i, float(i), 64, 4) for i in range(3)]
        workload = SporadicWorkload(queries=queries, horizon_seconds=600.0)
        server, policy = _coalescing_server(
            serial_backend(), window_seconds=500.0, max_batch_queries=2
        )
        report = server.serve(workload)

        assert policy.released == [(64, 2), (64, 1)]
        by_id = {record.query_id: record for record in report.records}
        # The full batch flushed at the second arrival, not at the deadline.
        assert by_id[0].started_at == 1.0 and by_id[1].started_at == 1.0
        # The leftover query waited out its own full window.
        assert by_id[2].started_at == 2.0 + 500.0

    def test_cost_model_gate_vetoes_uneconomical_merging(self, serial_backend):
        # A profile where the merged batch forces much larger workers, so the
        # gb-second growth swamps the saved invocation charges.
        losing = CoalescingProfile(
            variant=Variant.SERIAL,
            workers=1,
            layers=2,
            per_query_runtime_seconds=10.0,
            worker_memory_mb=512.0,
            merged_worker_memory_mb=512.0 * 64,
        )
        assert not recommend_coalescing(losing).merge

        queries = [InferenceQuery(i, 10.0 * i, 64, 4) for i in range(3)]
        workload = SporadicWorkload(queries=queries, horizon_seconds=600.0)
        server, policy = _coalescing_server(
            serial_backend(), window_seconds=60.0, profile_for=lambda query: losing
        )
        report = server.serve(workload)
        assert report.execution_count == 3
        assert report.coalesced_query_count == 0
        assert policy.released == []

    def test_batch_cap_of_one_equals_no_batching(self, serial_backend):
        queries = [InferenceQuery(i, 5.0 * i, 64, 4) for i in range(3)]
        workload = SporadicWorkload(queries=queries, horizon_seconds=600.0)
        plain = InferenceServer(serial_backend()).serve(workload)
        server, policy = _coalescing_server(
            serial_backend(), window_seconds=100.0, max_batch_queries=1
        )
        capped = server.serve(workload)

        assert capped.execution_count == 3
        assert capped.coalesced_query_count == 0
        assert policy.released == []
        # No query is ever held: timing and cost match the policy-free replay.
        assert [
            (r.query_id, r.started_at, r.finished_at, r.cost) for r in capped.records
        ] == [(r.query_id, r.started_at, r.finished_at, r.cost) for r in plain.records]

    def test_peak_concurrent_queries_counts_batch_members_beyond_the_bound(
        self, serial_backend
    ):
        """The admission bound gates executions; merged batches count once
        against it, while the report's peak counts client-visible queries."""
        queries = [InferenceQuery(i, float(i), 64, 4) for i in range(4)]
        workload = SporadicWorkload(queries=queries, horizon_seconds=600.0)
        report = InferenceServer(
            serial_backend(),
            ServingConfig(
                max_concurrent_queries=1,
                policies=(BatchCoalescingPolicy(window_seconds=10.0),),
            ),
        ).serve(workload)
        assert report.execution_count == 1
        assert report.peak_concurrent_queries == 4

    def test_invalid_policy_parameters_rejected(self):
        with pytest.raises(ValueError):
            BatchCoalescingPolicy(window_seconds=-1.0)
        with pytest.raises(ValueError):
            BatchCoalescingPolicy(window_seconds=1.0, max_batch_queries=0)
        with pytest.raises(ValueError):
            BatchCoalescingPolicy(window_seconds=1.0, max_hold_seconds=-0.5)


class TestLatencyCappedCoalescing:
    """max_hold_seconds: the SLO cap on the leader's coalescing delay."""

    @staticmethod
    def _record_tuples(report):
        return [
            (r.query_id, r.started_at, r.finished_at, r.cost, r.coalesced_group)
            for r in report.records
        ]

    def test_default_none_is_byte_identical_to_uncapped(self, serial_backend):
        workload = generate_sporadic_workload(
            daily_samples=20 * 4, batch_size=4, neuron_counts=(64,), seed=19
        )
        uncapped, _ = _coalescing_server(serial_backend(), window_seconds=1800.0)
        capped_none, _ = _coalescing_server(
            serial_backend(), window_seconds=1800.0, max_hold_seconds=None
        )
        a = uncapped.serve(workload)
        b = capped_none.serve(workload)
        assert self._record_tuples(a) == self._record_tuples(b)
        assert a.cost.total == b.cost.total

    def test_cap_at_or_above_window_changes_nothing(self, serial_backend):
        queries = [InferenceQuery(i, 10.0 * i, 64, 4) for i in range(3)]
        workload = SporadicWorkload(queries=queries, horizon_seconds=600.0)
        plain, _ = _coalescing_server(serial_backend(), window_seconds=60.0)
        wide, _ = _coalescing_server(
            serial_backend(), window_seconds=60.0, max_hold_seconds=60.0
        )
        assert self._record_tuples(plain.serve(workload)) == self._record_tuples(
            wide.serve(workload)
        )

    def test_cap_below_window_flushes_early_and_bounds_leader_delay(
        self, serial_backend
    ):
        queries = [
            InferenceQuery(0, 0.0, 64, 4),
            InferenceQuery(1, 20.0, 64, 4),   # inside the capped window: merges
            InferenceQuery(2, 40.0, 64, 4),   # after the capped flush: next batch
        ]
        workload = SporadicWorkload(queries=queries, horizon_seconds=600.0)
        server, policy = _coalescing_server(
            serial_backend(), window_seconds=300.0, max_hold_seconds=30.0
        )
        report = server.serve(workload)

        by_id = {record.query_id: record for record in report.records}
        # The leader flushed at arrival + cap, not arrival + window.
        assert by_id[0].started_at == 30.0
        assert by_id[0].queue_delay_seconds == 30.0
        assert by_id[0].coalesced_group == (0, 1)
        # The straddler opened its own capped window.
        assert by_id[2].started_at == 40.0 + 30.0
        assert policy.released == [(64, 2), (64, 1)]
        # No leader ever waited past the cap for admission.
        for record in report.records:
            leader = record.coalesced_group[0] if record.coalesced_group else record.query_id
            if leader == record.query_id:
                assert record.queue_delay_seconds <= 30.0 + 1e-9

    def test_capped_window_still_cheaper_than_no_batching(self, serial_backend):
        queries = [InferenceQuery(i, 5.0 * i, 64, 4) for i in range(4)]
        workload = SporadicWorkload(queries=queries, horizon_seconds=600.0)
        plain = InferenceServer(serial_backend()).serve(workload)
        server, _ = _coalescing_server(
            serial_backend(), window_seconds=600.0, max_hold_seconds=30.0
        )
        capped = server.serve(workload)
        assert capped.execution_count < plain.execution_count
        assert capped.cost.total < plain.cost.total
        # ...at bounded latency: p95 stays within cap + service time of plain.
        assert capped.p95_latency_seconds < plain.p95_latency_seconds + 30.0 + 1e-9

    def test_describe_includes_the_cap(self):
        policy = BatchCoalescingPolicy(window_seconds=60.0, max_hold_seconds=10.0)
        assert policy.describe()["max_hold_seconds"] == 10.0


class TestRecommendCoalescing:
    def test_linear_scaling_merge_wins_on_fixed_charges(self):
        profile = CoalescingProfile(
            variant=Variant.SERIAL,
            workers=1,
            layers=2,
            per_query_runtime_seconds=5.0,
            worker_memory_mb=1024.0,
            batch_queries=4,
        )
        recommendation = recommend_coalescing(profile)
        assert recommendation.merge
        assert recommendation.merged_cost < recommendation.split_cost
        assert recommendation.predicted_saving > 0
        assert "once instead of per query" in recommendation.reason

    def test_distributed_variant_also_wins_via_coordinator_and_polling(self):
        profile = CoalescingProfile(
            variant=Variant.QUEUE,
            workers=4,
            layers=6,
            per_query_runtime_seconds=3.0,
            worker_memory_mb=2048.0,
            per_query_comm_bytes=64 * 1024.0,
            per_query_transfers=24,
            batch_queries=3,
        )
        assert recommend_coalescing(profile).merge

    def test_batch_of_one_rejected(self):
        with pytest.raises(ValueError):
            CoalescingProfile(
                variant=Variant.SERIAL,
                workers=1,
                layers=2,
                per_query_runtime_seconds=1.0,
                worker_memory_mb=512.0,
                batch_queries=1,
            )


class TestQueueDepthAutoscaler:
    def test_desired_limit_is_monotone_in_queue_depth(self):
        policy = QueueDepthAutoscaler(min_limit=1, max_limit=6, queries_per_slot=2)
        limits = [policy.desired_limit(depth) for depth in range(0, 40)]
        assert limits[0] == 1
        assert all(b >= a for a, b in zip(limits, limits[1:]))
        assert max(limits) == 6  # capped

    def test_burst_scales_admission_beyond_min_limit(self, serial_backend):
        queries = [InferenceQuery(i, 0.0, 64, 4) for i in range(10)]
        workload = SporadicWorkload(queries=queries, horizon_seconds=600.0)
        policy = QueueDepthAutoscaler(min_limit=1, max_limit=4, queries_per_slot=2)
        report = InferenceServer(
            serial_backend(), ServingConfig(policies=(policy,))
        ).serve(workload)

        assert report.num_queries == 10
        # The deep queue raised the limit above the floor...
        assert report.peak_concurrent_queries > 1
        # ...but never past the ceiling.
        assert report.peak_concurrent_queries <= 4
        assert max(limit for _, limit in policy.observations) == 4
        observed_depths = [depth for depth, _ in policy.observations]
        assert max(observed_depths) > 1

    def test_autoscaler_supersedes_static_bound(self, serial_backend):
        queries = [InferenceQuery(i, 0.0, 64, 4) for i in range(6)]
        workload = SporadicWorkload(queries=queries, horizon_seconds=600.0)
        policy = QueueDepthAutoscaler(min_limit=2, max_limit=3, queries_per_slot=2)
        report = InferenceServer(
            serial_backend(),
            ServingConfig(max_concurrent_queries=1, policies=(policy,)),
        ).serve(workload)
        # The static bound of 1 would have serialised everything.
        assert report.peak_concurrent_queries >= 2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            QueueDepthAutoscaler(min_limit=0)
        with pytest.raises(ValueError):
            QueueDepthAutoscaler(min_limit=4, max_limit=2)
        with pytest.raises(ValueError):
            QueueDepthAutoscaler(queries_per_slot=0)
        with pytest.raises(ValueError):
            QueueDepthAutoscaler().desired_limit(-1)
        with pytest.raises(ValueError):
            QueueDepthAutoscaler(scale_down_lag_ticks=-1)

    @staticmethod
    def _drive(policy, depths):
        """Feed a queue-depth sequence through admission_limit, return limits."""
        return [policy.admission_limit(None, depth, in_flight=0) for depth in depths]

    def test_lag_zero_is_byte_identical_to_memoryless_controller(self, serial_backend):
        queries = [InferenceQuery(i, 0.0, 64, 4) for i in range(10)]
        workload = SporadicWorkload(queries=queries, horizon_seconds=600.0)
        legacy = QueueDepthAutoscaler(min_limit=1, max_limit=4, queries_per_slot=2)
        lagged = QueueDepthAutoscaler(
            min_limit=1, max_limit=4, queries_per_slot=2, scale_down_lag_ticks=0
        )
        a = InferenceServer(serial_backend(), ServingConfig(policies=(legacy,))).serve(workload)
        b = InferenceServer(serial_backend(), ServingConfig(policies=(lagged,))).serve(workload)
        assert legacy.observations == lagged.observations
        assert [
            (r.query_id, r.started_at, r.finished_at, r.cost) for r in a.records
        ] == [(r.query_id, r.started_at, r.finished_at, r.cost) for r in b.records]

    def test_hysteresis_holds_the_limit_for_lag_ticks(self):
        policy = QueueDepthAutoscaler(
            min_limit=1, max_limit=8, queries_per_slot=1, scale_down_lag_ticks=3
        )
        policy.begin(SporadicWorkload(queries=[]))
        # Deep queue raises the limit immediately; the drain only lowers it
        # after three consecutive lower-depth observations.
        assert self._drive(policy, [5, 0, 0]) == [6, 6, 6]
        # Third consecutive low observation: the limit finally shrinks.
        assert self._drive(policy, [0]) == [1]

    def test_growth_resets_the_scale_down_streak(self):
        policy = QueueDepthAutoscaler(
            min_limit=1, max_limit=8, queries_per_slot=1, scale_down_lag_ticks=2
        )
        policy.begin(SporadicWorkload(queries=[]))
        # Two low observations would shrink -- but a burst in between resets
        # the streak, so the limit never flaps downward mid-burst.
        assert self._drive(policy, [5, 0, 6, 0, 0]) == [6, 6, 7, 7, 1]

    def test_observation_wanting_current_limit_resets_streak(self):
        policy = QueueDepthAutoscaler(
            min_limit=1, max_limit=8, queries_per_slot=1, scale_down_lag_ticks=2
        )
        policy.begin(SporadicWorkload(queries=[]))
        assert self._drive(policy, [4, 0, 4, 0, 0]) == [5, 5, 5, 5, 1]

    def test_begin_resets_hysteresis_state(self):
        policy = QueueDepthAutoscaler(
            min_limit=1, max_limit=8, queries_per_slot=1, scale_down_lag_ticks=2
        )
        policy.begin(SporadicWorkload(queries=[]))
        self._drive(policy, [5, 0])  # one low observation banked
        policy.begin(SporadicWorkload(queries=[]))
        # A fresh serve starts with no held limit and no streak.
        assert self._drive(policy, [0]) == [1]
        assert policy.observations == [(0, 1)]

    def test_describe_includes_lag(self):
        policy = QueueDepthAutoscaler(scale_down_lag_ticks=4)
        assert policy.describe()["scale_down_lag_ticks"] == 4

    def test_composes_with_coalescing(self, serial_backend):
        """Coalescing holds queries; the autoscaler paces merged admissions."""
        queries = [InferenceQuery(i, float(i), 64, 4) for i in range(6)]
        workload = SporadicWorkload(queries=queries, horizon_seconds=600.0)
        coalesce = BatchCoalescingPolicy(window_seconds=10.0)
        autoscale = QueueDepthAutoscaler(min_limit=1, max_limit=2, queries_per_slot=1)
        report = InferenceServer(
            serial_backend(), ServingConfig(policies=(coalesce, autoscale))
        ).serve(workload)
        assert report.num_queries == 6
        assert report.coalesced_query_count == 6
        assert report.execution_count < 6
        assert sum(r.cost for r in report.records) == pytest.approx(report.cost.total)

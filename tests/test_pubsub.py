"""Tests for the simulated pub/sub service (SNS analogue)."""

import pytest

from repro.cloud import (
    BatchTooLargeError,
    FilterPolicy,
    InvalidRequestError,
    PayloadTooLargeError,
    ResourceAlreadyExistsError,
    ResourceNotFoundError,
    VirtualClock,
)
from repro.cloud.billing import SERVICE_PUBSUB
from repro.cloud.pubsub import MAX_PUBLISH_BATCH, MAX_PUBLISH_BYTES
from repro.cloud.queues import QueueMessage


@pytest.fixture
def topic_and_queues(cloud):
    topic = cloud.pubsub.create_topic("t0")
    queues = [cloud.queues.create_queue(f"q{i}") for i in range(3)]
    for worker, queue in enumerate(queues):
        topic.subscribe(queue, FilterPolicy(conditions={"target": [worker]}))
    return topic, queues


class TestFilterPolicy:
    def test_matching_attribute(self):
        policy = FilterPolicy(conditions={"target": [1, 2]})
        assert policy.matches({"target": 1})
        assert policy.matches({"target": 2, "layer": 0})

    def test_missing_attribute_fails(self):
        policy = FilterPolicy(conditions={"target": [1]})
        assert not policy.matches({"layer": 3})

    def test_wrong_value_fails(self):
        policy = FilterPolicy(conditions={"target": [1]})
        assert not policy.matches({"target": 2})

    def test_multiple_conditions_all_required(self):
        policy = FilterPolicy(conditions={"target": [1], "layer": [0]})
        assert policy.matches({"target": 1, "layer": 0})
        assert not policy.matches({"target": 1, "layer": 5})


class TestTopicRegistry:
    def test_create_get_delete(self, cloud):
        topic = cloud.pubsub.create_topic("a")
        assert cloud.pubsub.get_topic("a") is topic
        assert "a" in cloud.pubsub
        cloud.pubsub.delete_topic("a")
        assert "a" not in cloud.pubsub

    def test_duplicate_rejected(self, cloud):
        cloud.pubsub.create_topic("a")
        with pytest.raises(ResourceAlreadyExistsError):
            cloud.pubsub.create_topic("a")

    def test_missing_topic_raises(self, cloud):
        with pytest.raises(ResourceNotFoundError):
            cloud.pubsub.get_topic("missing")


class TestPublishFanOut:
    def test_filtered_delivery_reaches_only_target_queue(self, topic_and_queues):
        topic, queues = topic_and_queues
        publisher = VirtualClock()
        deliveries = topic.publish(
            QueueMessage(body=b"for-worker-1", attributes={"target": 1}), publisher
        )
        assert deliveries == 1
        consumer = VirtualClock(publisher.now)
        assert queues[0].receive(consumer, wait_seconds=1.0) == []
        received = queues[1].receive(consumer, wait_seconds=5.0)
        assert len(received) == 1
        assert received[0].body == b"for-worker-1"

    def test_delivery_carries_fanout_latency(self, topic_and_queues):
        topic, queues = topic_and_queues
        publisher = VirtualClock()
        topic.publish(QueueMessage(body=b"x", attributes={"target": 0}), publisher)
        publish_done = publisher.now
        consumer = VirtualClock(publish_done)
        queues[0].receive(consumer, wait_seconds=5.0)
        assert consumer.now > publish_done

    def test_batch_limits_enforced(self, topic_and_queues):
        topic, _ = topic_and_queues
        clock = VirtualClock()
        too_many = [QueueMessage(body=b"m", attributes={"target": 0})] * (MAX_PUBLISH_BATCH + 1)
        with pytest.raises(BatchTooLargeError):
            topic.publish_batch(too_many, clock)
        too_big = [
            QueueMessage(body=b"x" * (MAX_PUBLISH_BYTES // 2 + 1), attributes={"target": 0}),
            QueueMessage(body=b"x" * (MAX_PUBLISH_BYTES // 2 + 1), attributes={"target": 0}),
        ]
        with pytest.raises(PayloadTooLargeError):
            topic.publish_batch(too_big, clock)
        with pytest.raises(InvalidRequestError):
            topic.publish_batch([], clock)

    def test_unfiltered_subscription_receives_everything(self, cloud):
        topic = cloud.pubsub.create_topic("all")
        queue = cloud.queues.create_queue("sink")
        topic.subscribe(queue)
        clock = VirtualClock()
        topic.publish(QueueMessage(body=b"a", attributes={"target": 99}), clock)
        consumer = VirtualClock(clock.now)
        assert len(queue.receive(consumer, wait_seconds=5.0)) == 1


class TestPublishBilling:
    def test_publish_billed_in_64kb_increments(self, topic_and_queues, cloud):
        topic, _ = topic_and_queues
        clock = VirtualClock()
        payload = b"x" * (130 * 1024)  # needs 3 increments
        topic.publish(QueueMessage(body=payload, attributes={"target": 0}), clock)
        publish_records = cloud.ledger.filter(service=SERVICE_PUBSUB, operation="publish")
        assert publish_records[0].quantity == 3

    def test_delivered_bytes_are_billed(self, topic_and_queues, cloud):
        topic, _ = topic_and_queues
        clock = VirtualClock()
        topic.publish(QueueMessage(body=b"x" * 1000, attributes={"target": 2}), clock)
        byte_records = cloud.ledger.filter(service=SERVICE_PUBSUB, operation="delivery_bytes")
        assert len(byte_records) == 1
        assert byte_records[0].quantity == 1000

    def test_undelivered_message_has_no_byte_charge(self, topic_and_queues, cloud):
        topic, _ = topic_and_queues
        clock = VirtualClock()
        topic.publish(QueueMessage(body=b"x", attributes={"target": 42}), clock)
        assert cloud.ledger.filter(service=SERVICE_PUBSUB, operation="delivery_bytes") == []

    def test_stats_counters(self, topic_and_queues):
        topic, _ = topic_and_queues
        clock = VirtualClock()
        topic.publish_batch(
            [
                QueueMessage(body=b"a", attributes={"target": 0}),
                QueueMessage(body=b"b", attributes={"target": 1}),
            ],
            clock,
        )
        assert topic.total_publish_calls == 1
        assert topic.total_messages_published == 2
        assert topic.total_bytes_delivered == 2

"""Tests for the Graph Challenge generator and the sporadic workload model."""

import numpy as np
import pytest

from repro.workloads import (
    GraphChallengeConfig,
    InferenceQuery,
    PAPER_BATCH_SIZE,
    PAPER_BIASES,
    PAPER_LAYER_COUNT,
    PAPER_NEURON_COUNTS,
    SporadicWorkload,
    build_graph_challenge_model,
    generate_input_batch,
    generate_sporadic_workload,
    paper_configuration,
)


class TestGraphChallengeConfig:
    def test_defaults_are_valid(self):
        config = GraphChallengeConfig()
        assert config.neurons == 1024
        assert config.effective_bias == PAPER_BIASES[1024]

    def test_paper_bias_used_for_paper_sizes(self):
        for neurons, bias in PAPER_BIASES.items():
            config = GraphChallengeConfig(neurons=neurons)
            assert config.effective_bias == bias

    def test_explicit_bias_wins(self):
        config = GraphChallengeConfig(neurons=1024, bias=-0.99)
        assert config.effective_bias == -0.99

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            GraphChallengeConfig(neurons=1)
        with pytest.raises(ValueError):
            GraphChallengeConfig(layers=0)
        with pytest.raises(ValueError):
            GraphChallengeConfig(neurons=64, nnz_per_row=100)
        with pytest.raises(ValueError):
            GraphChallengeConfig(num_communities=0)
        with pytest.raises(ValueError):
            GraphChallengeConfig(community_link_fraction=1.5)
        with pytest.raises(ValueError):
            GraphChallengeConfig(links_per_community=0)

    def test_name_defaults_to_parameter_slug(self):
        config = GraphChallengeConfig(neurons=512, layers=6, seed=3)
        assert "512" in config.effective_name
        assert GraphChallengeConfig(name="custom").effective_name == "custom"

    def test_paper_configuration_helper(self):
        config = paper_configuration(16384, layers=12)
        assert config.neurons == 16384
        assert config.bias == PAPER_BIASES[16384]
        with pytest.raises(ValueError):
            paper_configuration(999)

    def test_paper_constants(self):
        assert PAPER_LAYER_COUNT == 120
        assert PAPER_BATCH_SIZE == 10_000
        assert PAPER_NEURON_COUNTS == (1024, 4096, 16384, 65536)


class TestModelGenerator:
    def test_structure_matches_config(self):
        config = GraphChallengeConfig(neurons=128, layers=5, nnz_per_row=8, num_communities=8)
        model = build_graph_challenge_model(config)
        assert model.num_layers == 5
        assert model.num_neurons == 128
        # nnz per row is approximately nnz_per_row (duplicates are merged).
        avg_nnz = model.total_nnz / (5 * 128)
        assert 5 <= avg_nnz <= 8

    def test_deterministic_in_seed(self):
        config = GraphChallengeConfig(neurons=64, layers=2, nnz_per_row=4, num_communities=4, seed=9)
        a = build_graph_challenge_model(config)
        b = build_graph_challenge_model(config)
        for wa, wb in zip(a.weights, b.weights):
            assert (wa != wb).nnz == 0

    def test_different_seeds_differ(self):
        base = dict(neurons=64, layers=2, nnz_per_row=4, num_communities=4)
        a = build_graph_challenge_model(GraphChallengeConfig(seed=1, **base))
        b = build_graph_challenge_model(GraphChallengeConfig(seed=2, **base))
        assert any((wa != wb).nnz > 0 for wa, wb in zip(a.weights, b.weights))

    def test_activations_survive_through_layers(self):
        """The synthetic weights/bias keep activations alive (non-degenerate)."""
        config = GraphChallengeConfig(neurons=256, layers=6, nnz_per_row=8, num_communities=16)
        model = build_graph_challenge_model(config)
        batch = generate_input_batch(256, samples=10, seed=1)
        output = model.forward(batch)
        assert output.nnz > 0

    def test_community_structure_creates_locality(self):
        """Most weight references stay within the planted community pools."""
        config = GraphChallengeConfig(
            neurons=256, layers=3, nnz_per_row=8, num_communities=8,
            community_link_fraction=1.0, links_per_community=1, seed=5,
        )
        model = build_graph_challenge_model(config)
        # With link fraction 1.0 and a single linked community (itself), the
        # aggregated connectivity graph must be block-diagonal under the hidden
        # permutation: every neuron's references stay inside one group of 32.
        from repro.partitioning import aggregate_connectivity

        adjacency = aggregate_connectivity(model)
        # Each vertex should connect to at most community_size - 1 = 31 others.
        degrees = np.diff(adjacency.indptr)
        assert degrees.max() <= 31


class TestInputBatches:
    def test_shape_and_binary_values(self):
        batch = generate_input_batch(128, samples=20, density=0.25, seed=3)
        assert batch.shape == (128, 20)
        assert set(np.unique(batch.data)) == {1.0}

    def test_density_controls_nnz(self):
        sparse_batch = generate_input_batch(1000, 10, density=0.05, seed=1)
        dense_batch = generate_input_batch(1000, 10, density=0.5, seed=1)
        assert sparse_batch.nnz < dense_batch.nnz

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_input_batch(10, samples=0)
        with pytest.raises(ValueError):
            generate_input_batch(10, samples=1, density=0.0)

    def test_deterministic_in_seed(self):
        a = generate_input_batch(64, 5, seed=7)
        b = generate_input_batch(64, 5, seed=7)
        assert (a != b).nnz == 0


class TestSporadicWorkload:
    def test_total_samples_preserved(self):
        workload = generate_sporadic_workload(daily_samples=35_000, batch_size=10_000)
        assert workload.total_samples == 35_000

    def test_samples_spread_over_neuron_counts(self):
        workload = generate_sporadic_workload(daily_samples=80_000, batch_size=10_000)
        by_neurons = workload.samples_by_neurons()
        assert set(by_neurons) == set(PAPER_NEURON_COUNTS)
        assert all(v == 20_000 for v in by_neurons.values())

    def test_arrivals_within_horizon_and_sorted(self):
        workload = generate_sporadic_workload(daily_samples=100_000, batch_size=10_000, seed=5)
        times = [q.arrival_time for q in workload.queries]
        assert times == sorted(times)
        assert all(0 <= t <= workload.horizon_seconds for t in times)

    def test_query_ids_sequential(self):
        workload = generate_sporadic_workload(daily_samples=50_000, batch_size=10_000)
        assert [q.query_id for q in workload.queries] == list(range(workload.num_queries))

    def test_deterministic_in_seed(self):
        a = generate_sporadic_workload(40_000, seed=3)
        b = generate_sporadic_workload(40_000, seed=3)
        assert [q.arrival_time for q in a.queries] == [q.arrival_time for q in b.queries]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_sporadic_workload(0)
        with pytest.raises(ValueError):
            generate_sporadic_workload(100, batch_size=0)
        with pytest.raises(ValueError):
            generate_sporadic_workload(100, neuron_counts=())

    def test_max_concurrent_queries(self):
        workload = generate_sporadic_workload(200_000, batch_size=10_000, seed=1)
        assert workload.max_concurrent_queries(1.0) >= 1
        assert workload.max_concurrent_queries(86_400.0) == workload.num_queries

    def test_cross_model_remainder_spread_evenly(self):
        """An uneven daily volume is never dumped on a single model size."""
        workload = generate_sporadic_workload(
            daily_samples=103, batch_size=10, neuron_counts=(64, 128, 256), seed=2
        )
        assert workload.total_samples == 103
        by_neurons = workload.samples_by_neurons()
        # 103 over 3 sizes: 35 + 34 + 34 -- no two sizes differ by more than 1.
        assert sorted(by_neurons.values()) == [34, 34, 35]

    def test_last_query_of_each_model_size_absorbs_tail(self):
        workload = generate_sporadic_workload(
            daily_samples=103, batch_size=10, neuron_counts=(64, 128, 256), seed=2
        )
        for neurons, queries in workload.queries_by_neurons().items():
            sizes = sorted(q.samples for q in queries)
            # Every query is a full batch except the last, which absorbs the
            # sub-batch remainder (no extra undersized query is spawned).
            assert sizes[:-1] == [10] * (len(sizes) - 1)
            assert sizes[-1] >= 10

    def test_trace_replay_hooks(self):
        workload = generate_sporadic_workload(400, batch_size=10, seed=4)
        trace = list(workload.iter_trace())
        assert [q.query_id for q in trace] == list(range(workload.num_queries))
        times = [q.arrival_time for q in trace]
        assert times == sorted(times)
        gaps = workload.interarrival_seconds()
        assert len(gaps) == workload.num_queries
        assert np.all(gaps >= 0.0)
        head = workload.head(5)
        assert head.num_queries == 5
        assert [q.query_id for q in head.queries] == [q.query_id for q in trace[:5]]
        assert head.horizon_seconds == workload.horizon_seconds
        with pytest.raises(ValueError):
            workload.head(0)


class TestValidatedConstructor:
    """SporadicWorkload.from_queries: the shared, validated build path."""

    def test_accepts_well_formed_traces(self):
        queries = [
            InferenceQuery(0, 0.0, 64, 4),
            InferenceQuery(1, 10.0, 64, 4),
            InferenceQuery(2, 10.0, 128, 4),  # ties are fine
        ]
        workload = SporadicWorkload.from_queries(queries, horizon_seconds=600.0)
        assert workload.num_queries == 3
        assert workload.horizon_seconds == 600.0

    def test_unsorted_trace_rejected_with_clear_error(self):
        queries = [InferenceQuery(0, 50.0, 64, 4), InferenceQuery(1, 10.0, 64, 4)]
        with pytest.raises(ValueError, match="sorted in non-decreasing order"):
            SporadicWorkload.from_queries(queries, horizon_seconds=600.0)

    def test_negative_and_nonfinite_arrivals_rejected(self):
        with pytest.raises(ValueError, match="finite and non-negative"):
            SporadicWorkload.from_queries([InferenceQuery(0, -1.0, 64, 4)])
        with pytest.raises(ValueError, match="finite and non-negative"):
            SporadicWorkload.from_queries([InferenceQuery(0, float("nan"), 64, 4)])

    def test_arrival_past_horizon_rejected(self):
        with pytest.raises(ValueError, match="past the workload horizon"):
            SporadicWorkload.from_queries(
                [InferenceQuery(0, 700.0, 64, 4)], horizon_seconds=600.0
            )

    def test_invalid_horizon_rejected(self):
        with pytest.raises(ValueError, match="horizon_seconds"):
            SporadicWorkload.from_queries([], horizon_seconds=0.0)

    def test_head_goes_through_validation(self):
        workload = generate_sporadic_workload(400, batch_size=10, seed=4)
        head = workload.head(3)
        assert head.num_queries == 3
        # A malformed underlying trace surfaces when head rebuilds from it.
        broken = SporadicWorkload(
            queries=[InferenceQuery(0, -5.0, 64, 4)], horizon_seconds=600.0
        )
        with pytest.raises(ValueError, match="finite and non-negative"):
            broken.head(1)

    def test_queries_by_tenant_grouping(self):
        queries = [
            InferenceQuery(0, 0.0, 64, 4, tenant="a"),
            InferenceQuery(1, 1.0, 64, 4, tenant="b"),
            InferenceQuery(2, 2.0, 64, 4, tenant="a"),
            InferenceQuery(3, 3.0, 64, 4),
        ]
        workload = SporadicWorkload.from_queries(queries, horizon_seconds=600.0)
        grouped = workload.queries_by_tenant()
        assert {t: len(qs) for t, qs in grouped.items()} == {"a": 2, "b": 1, None: 1}

"""Tests for the MPI-style collectives and the hierarchical launch tree."""

import numpy as np
import pytest
from scipy import sparse

from repro.cloud import CloudEnvironment, FunctionConfig, VirtualClock
from repro.comm import (
    ObjectChannel,
    QueueChannel,
    all_gather_rows,
    barrier,
    broadcast_rows,
    reduce_to_root,
)
from repro.core import LaunchTree, launch_worker_tree


def contributions_for(workers, cols=4, seed=0):
    """One disjoint row slice per worker covering rows [0, workers*2)."""
    rng = np.random.default_rng(seed)
    contributions = {}
    for worker in range(workers):
        rows = np.array([2 * worker, 2 * worker + 1])
        matrix = sparse.random(2, cols, density=0.8, format="csr", random_state=rng, dtype=np.float32)
        contributions[worker] = (rows, matrix)
    return contributions


class TestBarrier:
    def test_barrier_synchronises_clocks(self):
        clocks = [VirtualClock(1.0), VirtualClock(5.0), VirtualClock(3.0)]
        synced = barrier(clocks)
        assert synced == 5.0
        assert all(clock.now == 5.0 for clock in clocks)

    def test_barrier_with_overhead(self):
        clocks = [VirtualClock(2.0), VirtualClock(1.0)]
        synced = barrier(clocks, overhead_seconds=0.5)
        assert synced == pytest.approx(2.5)

    def test_empty_barrier_rejected(self):
        with pytest.raises(ValueError):
            barrier([])


@pytest.mark.parametrize("channel_type", ["queue", "object"])
class TestReduceBroadcastGather:
    def _channel(self, cloud, channel_type, workers):
        channel = QueueChannel(cloud) if channel_type == "queue" else ObjectChannel(cloud)
        channel.prepare(workers)
        return channel

    def test_reduce_to_root_assembles_all_rows(self, cloud, channel_type):
        workers = 3
        channel = self._channel(cloud, channel_type, workers)
        contributions = contributions_for(workers, seed=1)
        clocks = {w: VirtualClock() for w in range(workers)}
        assembled = reduce_to_root(channel, layer=9, root=0, contributions=contributions, clocks=clocks)
        assert assembled.shape[0] == workers * 2
        for worker, (rows, matrix) in contributions.items():
            np.testing.assert_allclose(
                np.asarray(assembled[rows, :].todense()),
                np.asarray(matrix.todense()),
                rtol=1e-6,
            )

    def test_reduce_requires_root_contribution(self, cloud, channel_type):
        channel = self._channel(cloud, channel_type, 2)
        contributions = {1: (np.array([0]), sparse.csr_matrix((1, 4)))}
        with pytest.raises(ValueError):
            reduce_to_root(channel, 0, 0, contributions, {1: VirtualClock()})

    def test_reduce_advances_root_clock(self, cloud, channel_type):
        workers = 2
        channel = self._channel(cloud, channel_type, workers)
        contributions = contributions_for(workers, seed=2)
        clocks = {w: VirtualClock() for w in range(workers)}
        reduce_to_root(channel, 3, 0, contributions, clocks)
        assert clocks[0].now > 0.0

    def test_broadcast_reaches_every_worker(self, cloud, channel_type):
        workers = 3
        channel = self._channel(cloud, channel_type, workers)
        rows = np.array([0, 1, 2])
        rng = np.random.default_rng(3)
        matrix = sparse.random(3, 5, density=0.9, format="csr", random_state=rng, dtype=np.float32)
        clocks = {w: VirtualClock() for w in range(workers)}
        results = broadcast_rows(channel, 4, 0, rows, matrix, clocks)
        assert set(results) == {0, 1, 2}
        for worker in range(1, workers):
            received_rows, received = results[worker]
            np.testing.assert_array_equal(received_rows, rows)
            assert (received != matrix).nnz == 0

    def test_all_gather_gives_everyone_everything(self, cloud, channel_type):
        workers = 3
        channel = self._channel(cloud, channel_type, workers)
        contributions = contributions_for(workers, seed=4)
        clocks = {w: VirtualClock() for w in range(workers)}
        gathered = all_gather_rows(channel, 7, contributions, clocks)
        for receiver in range(workers):
            assert set(gathered[receiver]) == set(range(workers))
            for source, (rows, matrix) in contributions.items():
                got_rows, got = gathered[receiver][source]
                np.testing.assert_array_equal(np.sort(got_rows), np.sort(rows))
                assert got.nnz == matrix.nnz


class TestLaunchTree:
    def test_root_has_no_parent(self):
        tree = LaunchTree(num_workers=7, branching_factor=2)
        assert tree.parent(0) is None

    def test_parent_child_consistency(self):
        tree = LaunchTree(num_workers=13, branching_factor=3)
        for worker in range(1, 13):
            parent = tree.parent(worker)
            assert worker in tree.children(parent)

    def test_every_worker_reachable_exactly_once(self):
        tree = LaunchTree(num_workers=20, branching_factor=4)
        seen = [0]
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for child in tree.children(node):
                seen.append(child)
                frontier.append(child)
        assert sorted(seen) == list(range(20))

    def test_rank_of_matches_children(self):
        tree = LaunchTree(num_workers=10, branching_factor=3)
        for parent in range(3):
            for sibling, child in enumerate(tree.children(parent)):
                assert tree.rank_of(parent, sibling) == child

    def test_depth_and_height(self):
        tree = LaunchTree(num_workers=8, branching_factor=2)
        assert tree.depth(0) == 0
        assert tree.depth(1) == 1
        assert tree.depth(7) == 3
        assert tree.height() == 3

    def test_height_shrinks_with_branching_factor(self):
        deep = LaunchTree(num_workers=62, branching_factor=2).height()
        shallow = LaunchTree(num_workers=62, branching_factor=8).height()
        assert shallow < deep

    def test_leaves_have_no_children(self):
        tree = LaunchTree(num_workers=5, branching_factor=4)
        assert tree.is_leaf(4)
        assert not tree.is_leaf(0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LaunchTree(num_workers=0, branching_factor=2)
        with pytest.raises(ValueError):
            LaunchTree(num_workers=4, branching_factor=0)
        tree = LaunchTree(num_workers=4, branching_factor=2)
        with pytest.raises(ValueError):
            tree.parent(10)
        with pytest.raises(ValueError):
            tree.rank_of(0, 5)
        with pytest.raises(ValueError):
            tree.rank_of(None, 1)


class TestLaunchWorkerTree:
    def _platform(self, cloud):
        cloud.faas.create_function(FunctionConfig(name="worker", memory_mb=1024))
        return cloud.faas

    def test_launches_requested_number_of_workers(self, cloud):
        platform = self._platform(cloud)
        result = launch_worker_tree(platform, "worker", 9, 3, VirtualClock())
        assert len(result.invocations) == 9
        assert result.completed_at >= result.root_started_at

    def test_children_start_after_parents(self, cloud):
        platform = self._platform(cloud)
        result = launch_worker_tree(platform, "worker", 10, 2, VirtualClock())
        for worker in range(1, 10):
            parent = result.tree.parent(worker)
            assert result.invocations[worker].started_at > result.invocations[parent].started_at

    def test_hierarchical_faster_than_sequential_for_many_workers(self, cloud):
        """The tree launch finishes sooner than a single-loop central launch (P=62)."""
        platform = self._platform(cloud)
        tree_result = launch_worker_tree(platform, "worker", 62, 4, VirtualClock())

        sequential_clock = VirtualClock()
        sequential_starts = [
            platform.start_invocation("worker", invoker_clock=sequential_clock, force_cold=True).started_at
            for _ in range(62)
        ]
        assert tree_result.completed_at < max(sequential_starts)

    def test_launch_span_nonnegative(self, cloud):
        platform = self._platform(cloud)
        result = launch_worker_tree(platform, "worker", 1, 4, VirtualClock())
        assert result.launch_span_seconds == pytest.approx(0.0)

"""Tests for the SLO-constrained deployment planner.

Locks the planner contracts:

1. **Knob vocabulary.** ``policies_from_knobs`` maps serialized knob dicts
   onto policy tuples, with neutral values (zero window, ``None`` autoscale
   limit) mapping to *no policy* so an all-neutral candidate replays
   byte-identically to a policy-free serve.
2. **Search space.** The declarative grid enumerates backend x knob
   combinations; successive-halving refinement bisects numeric knob
   intervals around the incumbent and terminates.
3. **Analytic scoring.** The affine probe fit and the candidate estimator
   are monotone in the coalescing knobs (bigger windows amortise fixed
   charges but add hold latency).
4. **Pareto.** No returned frontier point is dominated -- property-style,
   both for the pure helper and for the planner's simulated frontier.
5. **End-to-end planning.** Finalists are replayed, verdicts respect the
   SLO (including per-tenant overrides on mixtures), the winner is the
   cheapest compliant frontier point, and a planner-evaluated policy-free
   candidate is bit-identical to a direct ``InferenceServer`` serve.
6. **Determinism.** Same seed + same search space => identical
   ``PlanReport`` (fingerprints, Pareto ordering, winner) across runs and
   across thread/process executors.
"""

import pickle

import numpy as np
import pytest

from repro import (
    BatchCoalescingPolicy,
    DeploymentPlanner,
    EndpointBackendSpec,
    EndpointServingBackend,
    FSDBackendSpec,
    FSDServingBackend,
    HPCBackendSpec,
    HPCServingBackend,
    InferenceServer,
    MixtureScenario,
    PlanCandidate,
    PoissonProcess,
    PolicySetSpec,
    QueryCostModel,
    QueueDepthAutoscaler,
    Scenario,
    SearchSpace,
    ServerBackendSpec,
    ServerServingBackend,
    ServingConfig,
    SizeStats,
    SLOSpec,
    WorkloadStats,
    calibrate_backend,
    estimate_candidate,
    estimate_cold_fraction,
    policies_from_knobs,
)
from repro.planner import pareto_indices

TINY = dict(layers=2, nnz_per_row=4)


def tiny_fsd_spec() -> FSDBackendSpec:
    return FSDBackendSpec(variant="serial", **TINY)


@pytest.fixture
def scenario():
    return Scenario(
        "poisson",
        PoissonProcess(),
        seed=3,
        daily_samples=24,
        batch_size=4,
        neuron_counts=(64,),
        horizon_seconds=600.0,
    )


@pytest.fixture
def search_space():
    return SearchSpace(
        backends={"fsd-serial": tiny_fsd_spec(), "server-job": ServerBackendSpec(**TINY)},
        knobs={"coalesce_window_seconds": (0.0, 60.0, 240.0)},
    )


class TestPoliciesFromKnobs:
    def test_neutral_knobs_build_no_policies(self):
        assert policies_from_knobs({}) == ()
        assert policies_from_knobs({"coalesce_window_seconds": 0.0}) == ()
        assert policies_from_knobs({"autoscale_max_limit": None}) == ()
        assert (
            policies_from_knobs({"coalesce_window_seconds": 0.0, "autoscale_max_limit": None})
            == ()
        )

    def test_coalescing_knobs(self):
        (policy,) = policies_from_knobs(
            {
                "coalesce_window_seconds": 120.0,
                "coalesce_max_batch_queries": 3,
                "coalesce_max_hold_seconds": 60.0,
            }
        )
        assert isinstance(policy, BatchCoalescingPolicy)
        assert policy.window_seconds == 120.0
        assert policy.max_batch_queries == 3
        assert policy.max_hold_seconds == 60.0

    def test_autoscaler_knobs(self):
        (policy,) = policies_from_knobs(
            {
                "autoscale_max_limit": 6,
                "autoscale_min_limit": 2,
                "autoscale_queries_per_slot": 3,
                "autoscale_scale_down_lag_ticks": 1,
            }
        )
        assert isinstance(policy, QueueDepthAutoscaler)
        assert (policy.min_limit, policy.max_limit) == (2, 6)
        assert (policy.queries_per_slot, policy.scale_down_lag_ticks) == (3, 1)

    def test_both_policies_ordered_coalesce_first(self):
        policies = policies_from_knobs(
            {"coalesce_window_seconds": 60.0, "autoscale_max_limit": 4}
        )
        assert [type(p) for p in policies] == [BatchCoalescingPolicy, QueueDepthAutoscaler]

    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError, match="unknown policy knobs"):
            policies_from_knobs({"no_such_knob": 1})

    def test_policy_set_spec_fresh_instances_and_pickling(self):
        spec = PolicySetSpec.from_knobs({"coalesce_window_seconds": 30.0})
        first, second = spec(), spec()
        assert first[0] is not second[0]  # policies are stateful: fresh per call
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone().__class__ is tuple
        # knob order does not matter for identity
        assert spec == PolicySetSpec(knobs=(("coalesce_window_seconds", 30.0),))
        with pytest.raises(ValueError):
            PolicySetSpec.from_knobs({"bogus": 1})


class TestBackendSpecs:
    def test_specs_build_their_backends(self):
        assert isinstance(tiny_fsd_spec()(), FSDServingBackend)
        assert isinstance(ServerBackendSpec(**TINY)(), ServerServingBackend)
        assert isinstance(EndpointBackendSpec(**TINY)(), EndpointServingBackend)
        assert isinstance(HPCBackendSpec(ranks=1, **TINY)(), HPCServingBackend)

    def test_serial_variant_coerces_single_worker(self):
        backend = FSDBackendSpec(variant="serial", workers=8, **TINY)()
        assert backend._config_for(64).workers == 1

    def test_invalid_spec_values_rejected(self):
        with pytest.raises(ValueError):
            FSDBackendSpec(variant="no-such-variant")
        with pytest.raises(ValueError):
            ServerBackendSpec(mode="no-such-mode")

    def test_specs_are_picklable(self):
        for spec in (
            tiny_fsd_spec(),
            ServerBackendSpec(**TINY),
            EndpointBackendSpec(**TINY),
            HPCBackendSpec(ranks=2, **TINY),
        ):
            assert pickle.loads(pickle.dumps(spec)) == spec

    def test_each_call_owns_a_private_cloud(self):
        spec = tiny_fsd_spec()
        assert spec().cloud is not spec().cloud


class TestSearchSpace:
    def test_grid_enumeration(self, search_space):
        candidates = search_space.candidates()
        assert len(candidates) == 6  # 2 backends x 3 window values
        assert len({c.label for c in candidates}) == 6
        backends = {c.backend for c in candidates}
        assert backends == {"fsd-serial", "server-job"}

    def test_knob_grids_deduplicate(self):
        space = SearchSpace(
            backends={"fsd": tiny_fsd_spec()},
            knobs={"coalesce_window_seconds": (0.0, 60.0, 0.0)},
        )
        assert len(space.candidates()) == 2

    def test_invalid_spaces_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace(backends={})
        with pytest.raises(ValueError):
            SearchSpace(backends={"fsd": tiny_fsd_spec()}, knobs={"bogus": (1,)})
        with pytest.raises(ValueError):
            SearchSpace(backends={"fsd": tiny_fsd_spec()}, knobs={"coalesce_window_seconds": ()})

    def test_refinement_bisects_numeric_intervals(self, search_space):
        explored = search_space.candidates()
        incumbent = next(
            c
            for c in explored
            if c.backend == "fsd-serial" and c.knob_dict["coalesce_window_seconds"] == 60.0
        )
        proposals = search_space.refine_around(incumbent, explored)
        values = sorted(c.knob_dict["coalesce_window_seconds"] for c in proposals)
        assert values == [30.0, 150.0]  # midpoints of (0, 60) and (60, 240)
        assert all(c.backend == "fsd-serial" for c in proposals)

    def test_refinement_never_reproposes_explored_points(self, search_space):
        explored = set(search_space.candidates())
        incumbent = next(iter(explored))
        for _ in range(6):  # drive refinement to exhaustion on integer knobs
            proposals = search_space.refine_around(incumbent, explored)
            assert not (set(proposals) & explored)
            explored.update(proposals)

    def test_integer_knob_refinement_terminates(self):
        space = SearchSpace(
            backends={"fsd": tiny_fsd_spec()},
            knobs={"autoscale_max_limit": (2, 4)},
        )
        explored = set(space.candidates())
        incumbent = next(c for c in explored if c.knob_dict["autoscale_max_limit"] == 4)
        first = space.refine_around(incumbent, explored)
        assert [c.knob_dict["autoscale_max_limit"] for c in first] == [3]
        explored.update(first)
        assert space.refine_around(first[0], explored) == []  # bracket collapsed

    def test_non_numeric_knobs_are_not_refined(self):
        space = SearchSpace(
            backends={"fsd": tiny_fsd_spec()},
            knobs={"autoscale_max_limit": (None, 4)},
        )
        incumbent = next(
            c for c in space.candidates() if c.knob_dict["autoscale_max_limit"] is None
        )
        assert space.refine_around(incumbent, space.candidates()) == []


class TestPlanCandidate:
    def test_canonical_knob_order_and_label(self):
        a = PlanCandidate("fsd", (("coalesce_window_seconds", 60.0), ("autoscale_max_limit", 4)))
        b = PlanCandidate("fsd", (("autoscale_max_limit", 4), ("coalesce_window_seconds", 60.0)))
        assert a == b and hash(a) == hash(b)
        assert a.label == "fsd[autoscale_max_limit=4,coalesce_window_seconds=60]"
        assert PlanCandidate("fsd").label == "fsd"

    def test_invalid_candidates_rejected(self):
        with pytest.raises(ValueError):
            PlanCandidate("")
        with pytest.raises(ValueError):
            PlanCandidate("fsd", (("bogus", 1),))


class TestAnalyticScoring:
    def test_affine_fit_recovers_fixed_and_marginal(self):
        model = QueryCostModel.from_probes(
            small=(4, 0.01 + 4 * 0.002, 1.0 + 4 * 0.25),
            large=(8, 0.01 + 8 * 0.002, 1.0 + 8 * 0.25),
        )
        assert model.fixed_cost == pytest.approx(0.01)
        assert model.cost_per_sample == pytest.approx(0.002)
        assert model.base_latency_seconds == pytest.approx(1.0)
        assert model.latency_per_sample == pytest.approx(0.25)

    def test_fit_clamps_negative_slopes(self):
        model = QueryCostModel.from_probes(small=(4, 0.01, 2.0), large=(8, 0.005, 1.0))
        assert model.cost_per_sample == 0.0
        assert model.latency_per_sample == 0.0
        with pytest.raises(ValueError):
            QueryCostModel.from_probes(small=(8, 0.0, 0.0), large=(4, 0.0, 0.0))

    def test_workload_stats_from_workload(self, scenario):
        stats = WorkloadStats.from_workload(scenario.build())
        assert [size.neurons for size in stats.sizes] == [64]
        assert stats.total_queries == 6
        assert stats.horizon_seconds == 600.0

    def test_coalescing_amortises_fixed_charges_and_adds_hold(self):
        stats = WorkloadStats(
            horizon_seconds=3600.0, sizes=(SizeStats(neurons=64, queries=60, mean_samples=4.0),)
        )
        model = QueryCostModel(
            fixed_cost=0.01, cost_per_sample=0.001,
            base_latency_seconds=1.0, latency_per_sample=0.1,
        )
        plain = estimate_candidate(stats, {64: model})
        merged = estimate_candidate(stats, {64: model}, coalesce_window_seconds=300.0)
        assert merged.total_cost < plain.total_cost  # fixed charges paid once per batch
        assert merged.p95_latency_seconds > plain.p95_latency_seconds  # leader waits
        assert merged.expected_executions < plain.expected_executions
        # marginal (per-sample) charges never amortise
        marginal = stats.sizes[0].queries * stats.sizes[0].mean_samples * model.cost_per_sample
        assert merged.total_cost >= marginal

    def test_hold_cap_and_batch_cap_bound_the_estimate(self):
        stats = WorkloadStats(
            horizon_seconds=3600.0, sizes=(SizeStats(neurons=64, queries=60, mean_samples=4.0),)
        )
        model = QueryCostModel(0.01, 0.001, 1.0, 0.1)
        uncapped = estimate_candidate(stats, {64: model}, coalesce_window_seconds=300.0)
        capped_hold = estimate_candidate(
            stats, {64: model}, coalesce_window_seconds=300.0, coalesce_max_hold_seconds=60.0
        )
        assert capped_hold.p95_latency_seconds < uncapped.p95_latency_seconds
        capped_batch = estimate_candidate(
            stats, {64: model}, coalesce_window_seconds=300.0, coalesce_max_batch_queries=2
        )
        assert capped_batch.expected_executions > uncapped.expected_executions

    def test_standing_cost_and_cold_penalty(self):
        stats = WorkloadStats(
            horizon_seconds=3600.0, sizes=(SizeStats(neurons=64, queries=10, mean_samples=4.0),)
        )
        model = QueryCostModel(0.01, 0.001, 1.0, 0.1, cold_penalty_seconds=5.0)
        base = estimate_candidate(stats, {64: model})
        standing = estimate_candidate(stats, {64: model}, standing_cost=1.0)
        assert standing.total_cost == pytest.approx(base.total_cost + 1.0)
        cold = estimate_candidate(stats, {64: model}, cold_fraction=0.5)
        assert cold.p95_latency_seconds == pytest.approx(base.p95_latency_seconds + 5.0)
        warm = estimate_candidate(stats, {64: model}, cold_fraction=0.01)
        assert warm.p95_latency_seconds == pytest.approx(base.p95_latency_seconds)


class TestCalibration:
    def test_calibration_fits_per_size_models(self, scenario):
        stats = WorkloadStats.from_workload(scenario.build())
        calibration = calibrate_backend("fsd", tiny_fsd_spec(), stats)
        assert set(calibration.models) == {64}
        model = calibration.models[64]
        assert model.execution_cost(4.0) > 0.0
        assert model.execution_latency(4.0) > 0.0
        assert calibration.standing_cost == 0.0  # pay-per-use substrate

    def test_calibration_is_deterministic(self, scenario):
        stats = WorkloadStats.from_workload(scenario.build())
        first = calibrate_backend("fsd", tiny_fsd_spec(), stats)
        second = calibrate_backend("fsd", tiny_fsd_spec(), stats)
        assert first.models == second.models
        assert first.standing_cost == second.standing_cost

    def test_always_on_standing_cost_is_positive(self, scenario):
        stats = WorkloadStats.from_workload(scenario.build())
        calibration = calibrate_backend(
            "always-on", ServerBackendSpec(mode="always_on_hot", **TINY), stats
        )
        assert calibration.standing_cost > 0.0

    def test_cold_fraction_estimate(self, scenario):
        workload = scenario.build()
        assert estimate_cold_fraction(workload, None) == 0.0
        # A keepalive longer than the horizon leaves only the per-size first
        # arrivals cold.
        assert estimate_cold_fraction(workload, 10 * workload.horizon_seconds) == pytest.approx(
            1.0 / workload.num_queries
        )
        # A zero keepalive makes every positive gap a cold start.
        assert estimate_cold_fraction(workload, 0.0) == 1.0


class TestPareto:
    def test_no_kept_point_dominated_property(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            points = [tuple(p) for p in rng.uniform(0.0, 1.0, size=(30, 2))]
            kept = pareto_indices(points)
            assert kept, "a non-empty cloud always has a frontier"
            for i in kept:
                for j in range(len(points)):
                    if i == j:
                        continue
                    dominates = (
                        points[j][0] <= points[i][0]
                        and points[j][1] <= points[i][1]
                        and points[j] != points[i]
                    )
                    assert not dominates, f"kept point {i} dominated by {j}"
            # every dropped point is dominated by some kept point
            for j in set(range(len(points))) - set(kept):
                assert any(
                    points[i][0] <= points[j][0] and points[i][1] <= points[j][1]
                    for i in kept
                )

    def test_ties_survive_together(self):
        assert pareto_indices([(1.0, 1.0), (1.0, 1.0)]) == [0, 1]


class TestSLOSpec:
    def test_needs_at_least_one_bound(self):
        with pytest.raises(ValueError):
            SLOSpec()
        with pytest.raises(ValueError):
            SLOSpec(p95_latency_seconds=-1.0)

    def test_latency_and_budget_verdicts(self):
        slo = SLOSpec(p95_latency_seconds=10.0, daily_budget=1.0)
        horizon = 43200.0  # half a day: daily cost doubles the horizon cost
        good = {"p95_latency_seconds": 5.0, "cost_total": 0.4}
        assert slo.evaluate(good, horizon).compliant
        slow = {"p95_latency_seconds": 20.0, "cost_total": 0.4}
        verdict = slo.evaluate(slow, horizon)
        assert not verdict.compliant and "p95" in verdict.violations[0]
        pricey = {"p95_latency_seconds": 5.0, "cost_total": 0.6}
        verdict = slo.evaluate(pricey, horizon)
        assert not verdict.compliant and "budget" in verdict.violations[0]

    def test_empty_replay_latencies_pass(self):
        slo = SLOSpec(p95_latency_seconds=10.0, p99_latency_seconds=20.0)
        assert slo.evaluate(
            {"p95_latency_seconds": None, "p99_latency_seconds": None, "cost_total": 0.0},
            86400.0,
        ).compliant

    def test_per_tenant_overrides(self):
        slo = SLOSpec(per_tenant_p95={"web": 1.0})
        summary = {
            "p95_latency_seconds": 5.0,
            "cost_total": 0.0,
            "tenants": {"web": {"p95_latency_seconds": 0.5}},
        }
        assert slo.evaluate(summary, 86400.0).compliant
        summary["tenants"]["web"]["p95_latency_seconds"] = 2.0
        assert not slo.evaluate(summary, 86400.0).compliant
        # an override naming an absent tenant cannot be witnessed => violation
        verdict = slo.evaluate({"p95_latency_seconds": 5.0, "cost_total": 0.0}, 86400.0)
        assert not verdict.compliant and "no queries" in verdict.violations[0]


class TestDeploymentPlanner:
    def test_end_to_end_plan(self, scenario, search_space):
        planner = DeploymentPlanner(search_space, SLOSpec(p95_latency_seconds=120.0))
        report = planner.plan(scenario)
        assert report.frontier_labels, "a feasible space yields a non-empty frontier"
        assert report.winner is not None
        assert report.winner.slo.compliant
        assert report.winner.simulated_p95 <= 120.0
        # only finalists were replayed; pruned candidates carry no summary
        for result in report.candidates:
            if result.finalist:
                assert result.summary is not None and result.slo is not None
                assert result.fingerprint is not None
            else:
                assert result.summary is None and result.fingerprint is None
        assert len(report.finalists) <= len(report.candidates)
        # the winner is the cheapest compliant frontier configuration
        compliant = [r for r in report.frontier if r.slo.compliant]
        assert report.winner.simulated_cost == min(r.simulated_cost for r in compliant)
        # rendering works and includes the winner marker
        assert "winner" in report.render_markdown()
        assert report.to_dict()["winner"] == report.winner_label

    def test_frontier_has_no_dominated_point(self, scenario, search_space):
        """Property: no returned frontier point is dominated by any finalist."""
        planner = DeploymentPlanner(search_space, SLOSpec(p95_latency_seconds=120.0))
        report = planner.plan(scenario)
        evaluated = [r for r in report.finalists if r.summary is not None]
        for point in report.frontier:
            for other in evaluated:
                if other.label == point.label:
                    continue
                dominates = (
                    other.simulated_cost <= point.simulated_cost
                    and (other.simulated_p95 or 0.0) <= (point.simulated_p95 or 0.0)
                    and (
                        other.simulated_cost < point.simulated_cost
                        or (other.simulated_p95 or 0.0) < (point.simulated_p95 or 0.0)
                    )
                )
                assert not dominates, f"frontier point {point.label} dominated by {other.label}"

    def test_policy_free_candidate_matches_direct_serve(self, scenario):
        """A planner-evaluated no-policy candidate is exactly an InferenceServer
        serve of the same scenario on the same backend -- no planner drift."""
        space = SearchSpace(
            backends={"fsd-serial": tiny_fsd_spec()},
            knobs={"coalesce_window_seconds": (0.0, 120.0)},
        )
        planner = DeploymentPlanner(space, SLOSpec(p95_latency_seconds=600.0), refine_rounds=0)
        report = planner.plan(scenario)
        plain = next(
            r
            for r in report.finalists
            if r.candidate.knob_dict["coalesce_window_seconds"] == 0.0
        )
        direct = InferenceServer(tiny_fsd_spec()(), ServingConfig()).serve(scenario.build())
        assert plain.summary == direct.summary()
        assert "policies" not in plain.summary

    def test_plan_is_deterministic_across_runs(self, scenario, search_space):
        planner = DeploymentPlanner(search_space, SLOSpec(p95_latency_seconds=120.0))
        first = planner.plan(scenario)
        second = planner.plan(scenario)
        assert first.frontier_labels == second.frontier_labels
        assert first.winner_label == second.winner_label
        assert [r.fingerprint for r in first.finalists] == [
            r.fingerprint for r in second.finalists
        ]
        assert [r.analytic for r in first.candidates] == [r.analytic for r in second.candidates]

    def test_plan_identical_across_thread_and_process_executors(self, scenario, search_space):
        slo = SLOSpec(p95_latency_seconds=120.0)
        threaded = DeploymentPlanner(search_space, slo, executor="thread").plan(scenario)
        processed = DeploymentPlanner(search_space, slo, executor="process").plan(scenario)
        assert threaded.frontier_labels == processed.frontier_labels
        assert threaded.winner_label == processed.winner_label
        assert [r.fingerprint for r in threaded.finalists] == [
            r.fingerprint for r in processed.finalists
        ]
        assert [r.summary for r in threaded.finalists] == [
            r.summary for r in processed.finalists
        ]

    def test_unsatisfiable_budget_yields_no_winner(self, scenario):
        space = SearchSpace(backends={"fsd-serial": tiny_fsd_spec()})
        planner = DeploymentPlanner(space, SLOSpec(daily_budget=1e-12))
        report = planner.plan(scenario)
        assert report.winner is None
        assert report.frontier_labels  # the frontier is still reported

    def test_per_tenant_slo_on_mixture(self):
        shared = dict(daily_samples=16, batch_size=4, neuron_counts=(64,), horizon_seconds=600.0)
        mixture = MixtureScenario(
            "mix",
            (
                Scenario("web", PoissonProcess(), seed=5, **shared),
                Scenario("batch", PoissonProcess(), seed=6, **shared),
            ),
        )
        space = SearchSpace(backends={"fsd-serial": tiny_fsd_spec()})
        generous = DeploymentPlanner(
            space, SLOSpec(per_tenant_p95={"web": 600.0, "batch": 600.0})
        ).plan(mixture)
        assert generous.winner is not None
        assert set(generous.winner.summary["tenants"]) == {"web", "batch"}
        strict = DeploymentPlanner(space, SLOSpec(per_tenant_p95={"web": 1e-9})).plan(mixture)
        assert strict.winner is None
        verdict = strict.finalists[0].slo
        assert any("'web'" in violation for violation in verdict.violations)

    def test_unknown_tenant_override_rejected(self):
        shared = dict(daily_samples=8, batch_size=4, neuron_counts=(64,), horizon_seconds=600.0)
        mixture = MixtureScenario("mix", (Scenario("web", PoissonProcess(), seed=5, **shared),))
        space = SearchSpace(backends={"fsd-serial": tiny_fsd_spec()})
        planner = DeploymentPlanner(space, SLOSpec(per_tenant_p95={"nope": 1.0}))
        with pytest.raises(ValueError, match="nope"):
            planner.plan(mixture)

    def test_tenant_override_on_untagged_scenario_rejected(self, scenario):
        """An untagged scenario can never satisfy a per-tenant override, so
        the planner fails upfront instead of replaying to a winnerless report."""
        space = SearchSpace(backends={"fsd-serial": tiny_fsd_spec()})
        planner = DeploymentPlanner(space, SLOSpec(per_tenant_p95={"web": 5.0}))
        with pytest.raises(ValueError, match="web"):
            planner.plan(scenario)

    def test_replay_identical_finalists_share_one_serve(self, scenario):
        """Candidates whose knobs construct the same policy tuple (here: two
        neutral variants) replay once and share the summary, but keep
        distinct identities and fingerprints."""
        space = SearchSpace(
            backends={"fsd-serial": tiny_fsd_spec()},
            knobs={
                "coalesce_window_seconds": (0.0,),
                "coalesce_max_hold_seconds": (None, 900.0),
            },
        )
        planner = DeploymentPlanner(space, SLOSpec(p95_latency_seconds=600.0), refine_rounds=0)
        report = planner.plan(scenario)
        neutral = [r for r in report.finalists if r.summary is not None]
        assert len(neutral) == 2
        assert neutral[0].summary == neutral[1].summary
        assert neutral[0].fingerprint != neutral[1].fingerprint  # knobs differ

    def test_invalid_planner_configuration(self, search_space):
        with pytest.raises(ValueError):
            DeploymentPlanner(search_space, SLOSpec(p95_latency_seconds=1.0), refine_rounds=-1)
        with pytest.raises(ValueError):
            DeploymentPlanner(search_space, SLOSpec(p95_latency_seconds=1.0), max_finalists=0)
        with pytest.raises(ValueError, match="unknown executor"):
            DeploymentPlanner(search_space, SLOSpec(p95_latency_seconds=1.0), executor="fiber")

    def test_refinement_explores_beyond_the_grid(self, scenario):
        space = SearchSpace(
            backends={"fsd-serial": tiny_fsd_spec()},
            knobs={"coalesce_window_seconds": (0.0, 240.0)},
        )
        slo = SLOSpec(p95_latency_seconds=120.0)
        coarse = DeploymentPlanner(space, slo, refine_rounds=0).plan(scenario)
        refined = DeploymentPlanner(space, slo, refine_rounds=2).plan(scenario)
        assert len(refined.candidates) > len(coarse.candidates)
        grid_values = {0.0, 240.0}
        explored = {
            r.candidate.knob_dict["coalesce_window_seconds"] for r in refined.candidates
        }
        assert explored - grid_values, "refinement proposed off-grid windows"

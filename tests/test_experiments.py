"""Tests for the experiment-campaign runner.

Locks the campaign contracts:

1. A campaign replays its full (scenario x backend x policy set) grid, one
   independent serving replay per cell, and the report indexes every cell.
2. Campaign results are deterministic under fixed scenario seeds: per-cell
   fingerprints are identical across runs, and a parallel run equals a
   serial run (cells own private clouds, results land by grid index).
3. A campaign cell is *exactly* a direct ``InferenceServer`` serve of the
   same scenario on the same backend -- no campaign-layer drift.
4. Pivots, markdown rendering and JSON export expose the headline metrics
   (cost/query, p95 latency, cold-start fraction).
"""

import json

import pytest

from repro import (
    BatchCoalescingPolicy,
    Campaign,
    CampaignCell,
    CampaignReport,
    CloudEnvironment,
    DiurnalProcess,
    EngineConfig,
    FSDServingBackend,
    HPCServingBackend,
    InferenceServer,
    PoissonProcess,
    QueryWorkloadFactory,
    Scenario,
    ServingConfig,
    Variant,
)


@pytest.fixture(scope="module")
def tiny_model_experiments():
    from repro import GraphChallengeConfig, build_graph_challenge_model

    config = GraphChallengeConfig(
        neurons=64, layers=2, nnz_per_row=4, num_communities=4, seed=7
    )
    return build_graph_challenge_model(config)


@pytest.fixture
def scenarios():
    shared = dict(daily_samples=24, batch_size=4, neuron_counts=(64,), horizon_seconds=600.0)
    return [
        Scenario("poisson", PoissonProcess(), seed=3, **shared),
        Scenario("diurnal", DiurnalProcess(), seed=4, **shared),
    ]


@pytest.fixture
def backends(tiny_model_experiments):
    def fsd():
        return FSDServingBackend(
            CloudEnvironment(),
            QueryWorkloadFactory(model_builder=lambda neurons: tiny_model_experiments),
            config_for=lambda neurons: EngineConfig(variant=Variant.SERIAL, workers=1),
        )

    def hpc():
        return HPCServingBackend(
            1, QueryWorkloadFactory(model_builder=lambda neurons: tiny_model_experiments)
        )

    return {"fsd": fsd, "hpc-1": hpc}


class TestCampaignGrid:
    def test_full_grid_is_replayed(self, scenarios, backends):
        campaign = Campaign(scenarios, backends)
        report = campaign.run(max_workers=1)
        assert len(report.cells) == 4
        assert report.scenarios == ["poisson", "diurnal"]
        assert report.backends == ["fsd", "hpc-1"]
        assert report.policy_sets == ["none"]
        for result in report.cells:
            assert result.summary["num_queries"] == 6
            assert result.wall_seconds >= 0.0

    def test_cell_lookup(self, scenarios, backends):
        report = Campaign(scenarios, backends).run(max_workers=1)
        cell = report.cell("poisson", "fsd")
        assert cell.cell == CampaignCell("poisson", "fsd", "none")
        with pytest.raises(KeyError):
            report.cell("poisson", "no-such-backend")

    def test_policy_sets_are_grid_dimension(self, scenarios, backends):
        campaign = Campaign(
            [scenarios[0]],
            {"fsd": backends["fsd"]},
            policy_sets={
                "none": tuple,
                # detlint: allow[DET006] thread-executor test; process-pool coverage uses PolicySetSpec
                "coalesce": lambda: (BatchCoalescingPolicy(window_seconds=120.0),),
            },
        )
        report = campaign.run(max_workers=1)
        assert len(report.cells) == 2
        plain = report.cell("poisson", "fsd", "none")
        merged = report.cell("poisson", "fsd", "coalesce")
        assert "policies" not in plain.summary
        assert merged.summary["policies"][0]["name"] == "coalesce"
        # Coalescing merges close same-model arrivals into fewer executions.
        assert merged.summary["execution_count"] < merged.summary["num_queries"]

    def test_invalid_campaigns_rejected(self, scenarios, backends):
        with pytest.raises(ValueError):
            Campaign([], backends)
        with pytest.raises(ValueError):
            Campaign(scenarios, {})
        with pytest.raises(ValueError):
            Campaign(scenarios, backends, policy_sets={})
        with pytest.raises(ValueError):
            Campaign([scenarios[0], scenarios[0]], backends)  # duplicate name
        with pytest.raises(TypeError):
            Campaign({"broken": object()}, backends)


class TestCampaignDeterminism:
    def test_fingerprints_identical_across_runs(self, scenarios, backends):
        campaign = Campaign(scenarios, backends)
        first = campaign.run(max_workers=1)
        second = campaign.run(max_workers=1)
        assert [c.fingerprint for c in first.cells] == [c.fingerprint for c in second.cells]
        assert [c.summary for c in first.cells] == [c.summary for c in second.cells]

    def test_parallel_run_equals_serial_run(self, scenarios, backends):
        campaign = Campaign(scenarios, backends)
        serial = campaign.run(max_workers=1)
        parallel = campaign.run(max_workers=4)
        assert [c.cell for c in serial.cells] == [c.cell for c in parallel.cells]
        assert [c.summary for c in serial.cells] == [c.summary for c in parallel.cells]

    def test_cell_equals_direct_serving_replay(self, scenarios, backends):
        """A campaign cell is exactly an InferenceServer serve -- no drift."""
        report = Campaign(scenarios, backends).run(max_workers=1)
        direct = InferenceServer(backends["fsd"](), ServingConfig()).serve(
            scenarios[0].build()
        )
        assert report.cell("poisson", "fsd").summary == direct.summary()

    def test_fingerprint_ignores_wall_clock(self, scenarios, backends):
        report = Campaign(scenarios, backends).run(max_workers=1)
        cell = report.cells[0]
        before = cell.fingerprint
        cell.wall_seconds += 1000.0
        assert cell.fingerprint == before


class TestCampaignReportViews:
    def test_pivot_metrics(self, scenarios, backends):
        report = Campaign(scenarios, backends).run(max_workers=1)
        cost = report.pivot("cost_per_query")
        assert set(cost) == {"poisson", "diurnal"}
        assert set(cost["poisson"]) == {"fsd", "hpc-1"}
        assert cost["poisson"]["fsd"] > 0.0
        assert cost["poisson"]["hpc-1"] == 0.0  # the paper reports no HPC cost
        p95 = report.pivot("p95_latency_seconds")
        assert p95["diurnal"]["fsd"] > 0.0
        fraction = report.pivot("cold_start_fraction")
        assert 0.0 <= fraction["poisson"]["fsd"] <= 1.0
        assert fraction["poisson"]["hpc-1"] is None  # HPC has no cold/warm starts
        # Raw summary keys work as metrics too.
        assert report.pivot("num_queries")["poisson"]["fsd"] == 6
        with pytest.raises(KeyError):
            report.cells[0].metric("no-such-metric")

    def test_markdown_rendering(self, scenarios, backends):
        report = Campaign(scenarios, backends).run(max_workers=1)
        table = report.render_markdown("cost_per_query")
        lines = table.splitlines()
        assert lines[2] == "| scenario | fsd | hpc-1 |"
        assert lines[4].startswith("| poisson |")
        assert lines[5].startswith("| diurnal |")
        assert "n/a" in report.render_markdown("cold_start_fraction")

    def test_json_export_round_trips(self, scenarios, backends, tmp_path):
        report = Campaign(scenarios, backends).run(max_workers=1)
        path = tmp_path / "campaign.json"
        text = report.to_json(path)
        assert json.loads(text) == json.loads(path.read_text())
        payload = json.loads(text)
        assert payload["scenarios"] == ["poisson", "diurnal"]
        assert len(payload["cells"]) == 4
        assert set(payload["pivots"]["none"]) == {
            "cost_per_query",
            "p95_latency_seconds",
            "cold_start_fraction",
        }
        for cell in payload["cells"]:
            assert cell["fingerprint"]
            assert cell["summary"]["num_queries"] == 6

    def test_empty_report_views(self):
        report = CampaignReport()
        assert report.pivot("cost_per_query") == {}
        assert report.pivots() == {
            "cost_per_query": {},
            "p95_latency_seconds": {},
            "cold_start_fraction": {},
        }


def _spec_campaign():
    """A fully picklable campaign (named top-level factories, no closures)."""
    from repro import FSDBackendSpec, HPCBackendSpec, PolicySetSpec

    shared = dict(daily_samples=24, batch_size=4, neuron_counts=(64,), horizon_seconds=600.0)
    scenarios = [
        Scenario("poisson", PoissonProcess(), seed=3, **shared),
        Scenario("diurnal", DiurnalProcess(), seed=4, **shared),
    ]
    backends = {
        "fsd": FSDBackendSpec(variant="serial", layers=2, nnz_per_row=4),
        "hpc-1": HPCBackendSpec(ranks=1, layers=2, nnz_per_row=4),
    }
    policy_sets = {
        "none": PolicySetSpec(),
        "coalesce": PolicySetSpec.from_knobs({"coalesce_window_seconds": 120.0}),
    }
    return Campaign(scenarios, backends, policy_sets=policy_sets)


class TestCampaignExecutors:
    def test_process_pool_equals_thread_equals_serial(self):
        """Cell dispatch is picklable with named factories: the same grid
        replayed serially, on threads and on processes yields one report."""
        campaign = _spec_campaign()
        serial = campaign.run(max_workers=1)
        threaded = campaign.run(max_workers=4, executor="thread")
        processed = campaign.run(max_workers=4, executor="process")
        assert [c.cell for c in serial.cells] == [c.cell for c in processed.cells]
        assert (
            [c.summary for c in serial.cells]
            == [c.summary for c in threaded.cells]
            == [c.summary for c in processed.cells]
        )
        assert [c.fingerprint for c in serial.cells] == [
            c.fingerprint for c in processed.cells
        ]

    def test_campaign_dispatch_is_picklable(self):
        import pickle

        campaign = _spec_campaign()
        clone = pickle.loads(pickle.dumps(campaign.run_cell.__self__))
        assert clone.cells() == campaign.cells()

    def test_unknown_executor_rejected(self):
        campaign = _spec_campaign()
        with pytest.raises(ValueError, match="unknown executor"):
            campaign.run(executor="fiber")

    def test_explicit_cell_list_restricts_the_grid(self):
        campaign = _spec_campaign()
        cells = [
            CampaignCell("poisson", "fsd", "none"),
            CampaignCell("diurnal", "hpc-1", "coalesce"),
        ]
        report = campaign.run(max_workers=1, cells=cells)
        assert [c.cell for c in report.cells] == cells
        full = campaign.run(max_workers=1)
        assert report.cell("poisson", "fsd", "none").summary == full.cell(
            "poisson", "fsd", "none"
        ).summary

    def test_explicit_cells_validate_names(self):
        campaign = _spec_campaign()
        with pytest.raises(KeyError):
            campaign.run(cells=[CampaignCell("nope", "fsd", "none")])
        with pytest.raises(KeyError):
            campaign.run(cells=[CampaignCell("poisson", "nope", "none")])
        with pytest.raises(KeyError):
            campaign.run(cells=[CampaignCell("poisson", "fsd", "nope")])

"""Tests (including property-based tests) for the sparse substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.sparse import (
    RowBlock,
    as_csr,
    csr_nbytes,
    empty_csr,
    expand_rows,
    flop_count_spmm,
    relu_threshold,
    rows_with_nonzeros,
    add_bias_to_nonzero_structure,
    sparsify,
    split_rows,
    spmm,
)


def random_csr(rows, cols, density, seed):
    rng = np.random.default_rng(seed)
    return sparse.random(rows, cols, density=density, format="csr", random_state=rng, dtype=np.float32)


class TestBasics:
    def test_as_csr_passthrough(self):
        matrix = random_csr(4, 4, 0.5, 0)
        assert as_csr(matrix) is matrix

    def test_as_csr_from_dense(self):
        dense = np.eye(3)
        converted = as_csr(dense)
        assert sparse.isspmatrix_csr(converted)
        assert converted.nnz == 3

    def test_empty_csr(self):
        empty = empty_csr((5, 7))
        assert empty.shape == (5, 7)
        assert empty.nnz == 0

    def test_csr_nbytes_positive_and_grows(self):
        small = random_csr(10, 10, 0.1, 1)
        large = random_csr(100, 100, 0.3, 1)
        assert 0 < csr_nbytes(small) < csr_nbytes(large)

    def test_rows_with_nonzeros(self):
        matrix = sparse.csr_matrix(np.array([[0, 0], [1, 0], [0, 0], [2, 3]]))
        assert rows_with_nonzeros(matrix).tolist() == [1, 3]


class TestOps:
    def test_spmm_matches_dense(self):
        a = random_csr(8, 8, 0.4, 2)
        b = random_csr(8, 3, 0.5, 3)
        product = spmm(a, b)
        np.testing.assert_allclose(product.todense(), a.todense() @ b.todense(), rtol=1e-5)

    def test_bias_applied_only_to_stored_entries(self):
        matrix = sparse.csr_matrix(np.array([[1.0, 0.0], [0.0, 2.0]]))
        biased = add_bias_to_nonzero_structure(matrix, -0.5)
        dense = np.asarray(biased.todense())
        assert dense[0, 0] == pytest.approx(0.5)
        assert dense[0, 1] == 0.0  # untouched structural zero

    def test_bias_eliminates_entries_that_become_zero(self):
        matrix = sparse.csr_matrix(np.array([[0.5, 0.0], [0.0, 2.0]]))
        biased = add_bias_to_nonzero_structure(matrix, -0.5)
        assert biased.nnz == 1

    def test_relu_threshold_clamps_and_caps(self):
        matrix = sparse.csr_matrix(np.array([[-1.0, 50.0], [0.5, 0.0]]))
        result = relu_threshold(matrix, cap=32.0)
        dense = np.asarray(result.todense())
        assert dense[0, 0] == 0.0
        assert dense[0, 1] == 32.0
        assert dense[1, 0] == 0.5
        assert result.nnz == 2  # the negative entry was removed from the structure

    def test_relu_without_cap(self):
        matrix = sparse.csr_matrix(np.array([[100.0, -3.0]]))
        result = relu_threshold(matrix, cap=None)
        assert np.asarray(result.todense())[0, 0] == 100.0

    def test_sparsify_drops_below_threshold(self):
        dense = np.array([[0.0, 0.2], [0.05, 1.0]])
        result = sparsify(dense, threshold=0.1)
        assert result.nnz == 2

    def test_flop_count_zero_cases(self):
        a = empty_csr((4, 4))
        b = random_csr(4, 2, 0.5, 1)
        assert flop_count_spmm(a, b) == 0.0
        assert flop_count_spmm(b, empty_csr((2, 3))) == 0.0

    def test_flop_count_counts_pairings(self):
        weights = sparse.csr_matrix(np.array([[1.0, 1.0], [0.0, 1.0]]))
        activations = sparse.csr_matrix(np.array([[1.0, 0.0], [1.0, 1.0]]))
        # W row 0 pairs with act rows {0:1nnz, 1:2nnz}; W row 1 pairs with act row 1 (2nnz)
        assert flop_count_spmm(weights, activations) == pytest.approx(2.0 * (1 + 2 + 2))


class TestRowBlock:
    def test_row_block_extraction(self):
        matrix = random_csr(10, 6, 0.4, 4)
        block = RowBlock(global_rows=np.array([2, 5, 7]), local=matrix[[2, 5, 7], :])
        assert block.num_rows == 3
        assert block.owns(5)
        assert not block.owns(3)
        extracted = block.extract_rows([7, 2])
        np.testing.assert_allclose(extracted.todense(), matrix[[7, 2], :].todense())

    def test_mismatched_row_count_rejected(self):
        with pytest.raises(ValueError):
            RowBlock(global_rows=np.array([1, 2]), local=random_csr(3, 3, 0.5, 0))

    def test_extract_nonempty_rows(self):
        local = sparse.csr_matrix(np.array([[0.0, 0.0], [1.0, 0.0]]))
        block = RowBlock(global_rows=np.array([4, 9]), local=local)
        with_data, without_data = block.extract_nonempty_rows([4, 9])
        assert with_data == [9]
        assert without_data == [4]

    def test_split_rows_partitions_everything(self):
        matrix = random_csr(20, 5, 0.3, 5)
        owner = np.array([i % 3 for i in range(20)])
        blocks = split_rows(matrix, owner, 3)
        assert sum(b.num_rows for b in blocks) == 20
        total_nnz = sum(b.nnz for b in blocks)
        assert total_nnz == matrix.nnz

    def test_split_rows_validates_owner(self):
        matrix = random_csr(4, 4, 0.5, 0)
        with pytest.raises(ValueError):
            split_rows(matrix, np.array([0, 1]), 2)
        with pytest.raises(ValueError):
            split_rows(matrix, np.array([0, 1, 2, 5]), 3)


class TestExpandRows:
    def test_expand_round_trip(self):
        matrix = random_csr(12, 4, 0.4, 6)
        rows = np.array([1, 4, 9])
        expanded = expand_rows(rows, matrix[rows, :], 12)
        np.testing.assert_allclose(
            expanded[rows, :].todense(), matrix[rows, :].todense()
        )
        untouched = [i for i in range(12) if i not in rows.tolist()]
        assert expanded[untouched, :].nnz == 0

    def test_expand_validates_inputs(self):
        matrix = random_csr(3, 3, 0.5, 0)
        with pytest.raises(ValueError):
            expand_rows([0, 1], matrix, 10)
        with pytest.raises(ValueError):
            expand_rows([0, 1, 20], matrix, 10)

    def test_expand_unsorted_rows(self):
        matrix = random_csr(8, 3, 0.6, 7)
        rows = np.array([6, 0, 3])
        expanded = expand_rows(rows, matrix[rows, :], 8)
        np.testing.assert_allclose(expanded[6, :].todense(), matrix[6, :].todense())
        np.testing.assert_allclose(expanded[0, :].todense(), matrix[0, :].todense())


# ----------------------------- property-based tests -----------------------------


@st.composite
def csr_and_subset(draw):
    rows = draw(st.integers(min_value=1, max_value=30))
    cols = draw(st.integers(min_value=1, max_value=10))
    density = draw(st.floats(min_value=0.0, max_value=0.8))
    seed = draw(st.integers(min_value=0, max_value=1000))
    matrix = random_csr(rows, cols, density, seed)
    subset_size = draw(st.integers(min_value=0, max_value=rows))
    rng = np.random.default_rng(seed + 1)
    subset = rng.choice(rows, size=subset_size, replace=False)
    return matrix, subset


@given(csr_and_subset())
@settings(max_examples=40, deadline=None)
def test_expand_rows_preserves_every_value(data):
    """expand_rows never loses, duplicates or relocates values."""
    matrix, subset = data
    expanded = expand_rows(subset, matrix[subset, :], matrix.shape[0])
    assert expanded.shape == matrix.shape
    assert expanded.nnz == matrix[subset, :].nnz
    if len(subset):
        np.testing.assert_allclose(
            np.asarray(expanded[subset, :].todense()),
            np.asarray(matrix[subset, :].todense()),
            rtol=1e-6,
        )


@given(
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=999),
)
@settings(max_examples=40, deadline=None)
def test_split_rows_is_a_partition(rows, cols, parts, seed):
    """Every row/nonzero lands in exactly one block regardless of ownership."""
    matrix = random_csr(rows, cols, 0.4, seed)
    rng = np.random.default_rng(seed)
    owner = rng.integers(0, parts, size=rows)
    blocks = split_rows(matrix, owner, parts)
    assert len(blocks) == parts
    assert sum(b.num_rows for b in blocks) == rows
    assert sum(b.nnz for b in blocks) == matrix.nnz
    seen = np.concatenate([b.global_rows for b in blocks])
    assert sorted(seen.tolist()) == list(range(rows))


@given(
    st.integers(min_value=1, max_value=25),
    st.integers(min_value=1, max_value=6),
    st.floats(min_value=-2.0, max_value=2.0),
    st.integers(min_value=0, max_value=999),
)
@settings(max_examples=40, deadline=None)
def test_relu_threshold_invariants(rows, cols, bias, seed):
    """After bias + ReLU + cap, stored values are always within (0, cap]."""
    matrix = random_csr(rows, cols, 0.5, seed)
    biased = add_bias_to_nonzero_structure(matrix, bias)
    result = relu_threshold(biased, cap=32.0)
    if result.nnz:
        assert result.data.min() > 0.0
        assert result.data.max() <= 32.0

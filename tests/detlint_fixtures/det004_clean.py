# detlint: treat-as src/repro/planner/fixture.py
"""DET004 non-firing corpus: every unordered source is wrapped in sorted()."""

import os


def summarize(metrics):
    payload = {}
    for key in sorted(metrics.keys()):
        payload[key] = metrics[key]
    return payload


def unique_backends(cells):
    return [cell for cell in sorted(set(cells))]


def discover(path):
    return tuple(sorted(os.listdir(path)))

"""DET002 firing corpus: unseeded and module-level-state randomness."""

import random

import numpy as np
from numpy.random import default_rng


def jitter():
    return random.random() + random.randint(0, 3)


def noise(shape):
    return np.random.rand(*shape) + np.random.normal(size=shape)


def make_generator():
    return default_rng()


def make_generator_explicit_none():
    return np.random.default_rng(None)

"""DET006 non-firing corpus: named top-level factories (the Spec contract)."""

from repro.experiments import Campaign
from repro.planner import SearchSpace
from repro.serving.factories import FSDBackendSpec


def make_fsd_backend():
    return FSDBackendSpec(workers=2)()


def run_campaign(scenarios):
    backends = {"fsd": make_fsd_backend}
    return Campaign(scenarios, backends)


def plan(scenarios):
    return SearchSpace(backends={"fsd": make_fsd_backend})

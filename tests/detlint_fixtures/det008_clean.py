# detlint: treat-as src/repro/cloud/fixture.py
"""DET008 non-firing corpus: the canonical gated instrumentation point."""


class Channel:
    def send(self, message, clock):
        clock.advance(0.001)
        tracer = self._telemetry.tracer
        if tracer is not None:
            tracer.channel_op("queue", "send", self.name, clock.now)
            tracer.gauge_sample("queue.depth", len(self._messages) + 1, clock.now)
        self._messages.append(message)
        self.total_sends = self.total_sends + 1

    def receive(self, clock):
        clock.advance(0.001)
        tracer = self._telemetry.tracer
        if tracer is not None:
            tracer.channel_op("queue", "receive", self.name, clock.now)
        messages = list(self._messages)
        if tracer is not None:
            tracer.gauge_sample("queue.depth", len(self._messages), clock.now)
        return messages

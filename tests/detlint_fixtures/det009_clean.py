# detlint: treat-as src/repro/cloud/fixture.py
"""DET009 non-firing corpus: the canonical gated contention hook."""


class Channel:
    def send(self, message, clock):
        duration = 0.001
        clock.advance(duration)
        arbiter = self._contention.arbiter
        if arbiter is not None:
            arbiter.channel_op("queue", "send", self.name, clock.now, duration)
        self._messages.append(message)
        self.total_sends = self.total_sends + 1

    def receive(self, clock):
        duration = 0.001
        clock.advance(duration)
        arbiter = self._contention.arbiter
        if arbiter is not None:
            arbiter.channel_op("queue", "receive", self.name, clock.now, duration)
        messages = list(self._messages)
        if arbiter is not None:
            arbiter.channel_op("queue", "drain", self.name, clock.now, duration)
        return messages

# detlint: treat-as src/repro/fixture/simulated.py
"""DET001 non-firing corpus: simulated time flows from the virtual clock."""


def stamp_arrival(query, clock):
    query.arrived_at = clock.now


def measure(clock, at_time):
    return clock.now - at_time

# detlint: treat-as src/repro/fixture/registry.py
"""DET007 non-firing corpus: immutable module state only."""

__all__ = ["LIMITS", "KNOWN_KINDS", "DEFAULT_LABEL"]

LIMITS = (1, 2, 4, 8)
KNOWN_KINDS = frozenset({"transient", "preemption"})
DEFAULT_LABEL = "none"
PAIRS = tuple(sorted({"a": 1, "b": 2}.items()))


def scratch():
    # Function-local containers are private per call: not shared state.
    local = {"fine": []}
    return local

"""DET003 non-firing corpus: the threaded rng is the only stream."""

import numpy as np


def arrival_times(count, horizon, rng):
    return sorted(rng.uniform(0.0, horizon, size=count))


def build_scenario(seed):
    # Constructing a generator is fine when the function does NOT accept one:
    # this is the seam where a seed becomes the single threaded stream.
    rng = np.random.default_rng(seed)
    return arrival_times(10, 86400.0, rng)

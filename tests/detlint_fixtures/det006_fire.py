"""DET006 firing corpus: closures registered as campaign/planner factories."""

from repro.experiments import Campaign
from repro.planner import SearchSpace


def run_campaign(scenarios, cloud_factory):
    backends = {"fsd": lambda: cloud_factory()}
    backends["hpc"] = lambda: cloud_factory()
    return Campaign(scenarios, backends)


def run_inline(scenarios):
    return Campaign(scenarios, {"fsd": lambda: None})


def plan(make_backend):
    def local_backend():
        return make_backend()

    return SearchSpace(backends={"fsd": local_backend})

# detlint: treat-as src/repro/cloud/fixture.py
"""DET005 firing corpus: ungated injector use + mutation before the check."""


class Channel:
    def send_ungated(self, message, clock):
        clock.advance(0.001)
        # No `is not None` gate: chaos-off would crash on the None injector.
        self._faults.injector.check("queue", "send", self.name, clock.now)
        self._messages.append(message)

    def send_mutates_first(self, message, clock):
        clock.advance(0.001)
        self._messages.append(message)  # state mutated before the injection check
        self.total_sends = self.total_sends + 1
        injector = self._faults.injector
        if injector is not None:
            injector.check("queue", "send", self.name, clock.now)

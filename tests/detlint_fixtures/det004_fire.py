# detlint: treat-as src/repro/planner/fixture.py
"""DET004 firing corpus: unsorted iteration in a fingerprint module."""

import os


def summarize(metrics):
    payload = {}
    for key in metrics.keys():
        payload[key] = metrics[key]
    return payload


def unique_backends(cells):
    return [cell for cell in set(cells)]


def discover(path):
    return tuple(os.listdir(path))

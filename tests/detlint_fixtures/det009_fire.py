# detlint: treat-as src/repro/cloud/fixture.py
"""DET009 firing corpus: ungated arbiter use + mutation before the gate."""


class Channel:
    def send_ungated(self, message, clock):
        clock.advance(0.001)
        # No `is not None` gate: contention-off would crash on the None arbiter.
        self._contention.arbiter.channel_op("queue", "send", self.name, clock.now, 0.001)
        self._messages.append(message)

    def send_mutates_first(self, message, clock):
        clock.advance(0.001)
        self._messages.append(message)  # state mutated before the contention gate
        self.total_sends = self.total_sends + 1
        arbiter = self._contention.arbiter
        if arbiter is not None:
            arbiter.channel_op("queue", "send", self.name, clock.now, 0.001)

# detlint: treat-as src/repro/fixture/simulated.py
"""DET001 firing corpus: wall-clock calls on a simulated path."""

import time
from datetime import datetime
from time import perf_counter as pc


def stamp_arrival(query):
    query.arrived_at = time.time()


def measure():
    started = pc()
    return datetime.now(), started

"""DET002 non-firing corpus: every generator is explicitly seeded."""

import numpy as np
from numpy.random import default_rng


def make_generator(seed):
    return np.random.default_rng(seed)


def make_generator_from_sequence(seed, attempt):
    return default_rng([seed, attempt])


def make_bitgen(seed):
    return np.random.Generator(np.random.PCG64(seed))


def draw(rng, shape):
    return rng.normal(size=shape)

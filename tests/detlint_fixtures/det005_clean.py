# detlint: treat-as src/repro/cloud/fixture.py
"""DET005 non-firing corpus: the canonical gated injection point."""


class Channel:
    def send(self, message, clock):
        clock.advance(0.001)
        injector = self._faults.injector
        if injector is not None:
            injector.check("queue", "send", self.name, clock.now)
        self._messages.append(message)
        self.total_sends = self.total_sends + 1

    def receive(self, clock, enforce_timeout=True):
        injector = self._faults.injector
        if injector is not None and enforce_timeout:
            try:
                injector.check("queue", "receive", self.name, clock.now)
            except Exception:
                raise
        return list(self._messages)

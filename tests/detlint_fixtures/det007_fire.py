# detlint: treat-as src/repro/fixture/registry.py
"""DET007 firing corpus: module-level mutable containers (shared-state races)."""

from collections import OrderedDict, defaultdict


class _PlanCache:
    pass


RESULTS = []
SETTINGS = {"workers": 4}
SEEN = set()
_RECENT: "OrderedDict[str, int]" = OrderedDict()
_BY_KIND = defaultdict(list)
_PLANS = _PlanCache()

"""DET003 firing corpus: a function takes rng but forks its own stream."""

import numpy as np


def arrival_times(count, horizon, rng):
    local = np.random.default_rng(12345)  # ignores the threaded generator
    return sorted(local.uniform(0.0, horizon, size=count))


def nested_fork(rng):
    def helper():
        return np.random.default_rng(7)

    return helper().normal() + rng.normal()

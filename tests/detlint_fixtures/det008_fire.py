# detlint: treat-as src/repro/cloud/fixture.py
"""DET008 firing corpus: ungated tracer use + mutation before the gate."""


class Channel:
    def send_ungated(self, message, clock):
        clock.advance(0.001)
        # No `is not None` gate: telemetry-off would crash on the None tracer.
        self._telemetry.tracer.channel_op("queue", "send", self.name, clock.now)
        self._messages.append(message)

    def send_mutates_first(self, message, clock):
        clock.advance(0.001)
        self._messages.append(message)  # state mutated before the telemetry gate
        self.total_sends = self.total_sends + 1
        tracer = self._telemetry.tracer
        if tracer is not None:
            tracer.channel_op("queue", "send", self.name, clock.now)

"""Equivalence tests for the local-dimension compute core.

The hot-path rewrite (compacted-dimension SpMM kernels, vectorized
``expand_rows``/row extraction, cumsum-based ``chunk_rows``, frontier-based
cluster growing) must be *bit-for-bit* equivalent to the seed
implementations: the virtual-clock/cost model charges by sparsity structure,
so any deviation -- numeric or structural -- changes simulated results.
Every test here compares the current implementation against either

* a reference re-implementation of the seed algorithm (kept inline, in its
  original per-row/per-vertex Python form), or
* ``tests/data/seed_engine_reference.json``, exact fingerprints (hex floats
  and sha256 digests) captured by running the seed implementation.
"""

import hashlib
import json
from dataclasses import fields
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro import (
    CloudEnvironment,
    EngineConfig,
    FSDInference,
    GraphChallengeConfig,
    HypergraphPartitioner,
    SparseDNN,
    Variant,
    build_graph_challenge_model,
    generate_input_batch,
)
from repro.partitioning import build_partition_plan
from repro.comm.payload import (
    _ASSUMED_COMPRESSION,
    _HEADER,
    chunk_rows,
    decode_row_payload,
    encode_row_payload,
    estimate_payload_bytes,
)
from repro.sparse import (
    RowBlock,
    accumulate_spmm,
    as_csr,
    expand_rows,
    flop_count_spmm,
    gather_rows,
    unsafe_csr,
)

REFERENCE_PATH = Path(__file__).parent / "data" / "seed_engine_reference.json"


def random_csr(rows, cols, density, seed):
    rng = np.random.default_rng(seed)
    return sparse.random(
        rows, cols, density=density, format="csr", random_state=rng, dtype=np.float64
    )


def assert_csr_identical(left, right):
    """Structural and numeric equality, including within-row index order."""
    assert left.shape == right.shape
    assert np.array_equal(left.indptr, right.indptr)
    assert np.array_equal(left.indices, right.indices)
    assert np.array_equal(left.data, right.data)


# ----------------------------- seed reference implementations -----------------------------


def seed_expand_rows(global_rows, rows, total_rows):
    """The seed's expand_rows: per-row Python copy loop."""
    rows = as_csr(rows)
    global_rows = np.asarray(global_rows, dtype=np.int64)
    indptr = np.zeros(total_rows + 1, dtype=np.int64)
    local_counts = np.diff(rows.indptr)
    indptr[global_rows + 1] = local_counts
    np.cumsum(indptr, out=indptr)
    data = np.empty(rows.nnz, dtype=rows.data.dtype)
    indices = np.empty(rows.nnz, dtype=rows.indices.dtype)
    order = np.argsort(global_rows, kind="stable")
    cursor = 0
    for local in order:
        start, stop = rows.indptr[local], rows.indptr[local + 1]
        size = stop - start
        data[cursor:cursor + size] = rows.data[start:stop]
        indices[cursor:cursor + size] = rows.indices[start:stop]
        cursor += size
    return sparse.csr_matrix((data, indices, indptr), shape=(total_rows, rows.shape[1]))


def seed_chunk_boundaries(row_nnz, max_chunk_bytes):
    """The seed's greedy per-row chunk grouping; returns [start, stop) pairs."""
    boundaries = []
    start = 0
    current_rows = 0
    current_nnz = 0.0
    for index in range(len(row_nnz)):
        candidate_nnz = current_nnz + row_nnz[index]
        candidate_rows = current_rows + 1
        estimated = estimate_payload_bytes(np.array([candidate_nnz]), candidate_rows)
        if estimated > max_chunk_bytes and current_rows > 0:
            boundaries.append((start, index))
            start = index
            current_rows = 1
            current_nnz = float(row_nnz[index])
        else:
            current_rows = candidate_rows
            current_nnz = candidate_nnz
    boundaries.append((start, len(row_nnz)))
    return boundaries


def seed_grow_clusters(partitioner, adjacency, vertex_weights, num_workers):
    """The seed's _grow_clusters: argmax over all vertices per absorption."""
    from repro.partitioning.base import balanced_capacities

    n = adjacency.shape[0]
    num_clusters = min(n, num_workers * partitioner.clusters_per_part)
    target_size = balanced_capacities(
        vertex_weights.sum(), num_clusters, partitioner.epsilon
    )
    cluster_of = np.full(n, -1, dtype=np.int64)
    degree_order = np.argsort(-np.asarray(adjacency.sum(axis=1)).ravel())
    next_cluster = 0
    for seed_vertex in degree_order:
        if cluster_of[seed_vertex] != -1:
            continue
        if next_cluster >= num_clusters:
            break
        cluster_id = next_cluster
        next_cluster += 1
        cluster_of[seed_vertex] = cluster_id
        cluster_weight = vertex_weights[seed_vertex]
        connectivity = np.zeros(n, dtype=np.float64)
        row = adjacency.getrow(seed_vertex)
        connectivity[row.indices] += row.data
        while cluster_weight < target_size:
            connectivity_masked = np.where(cluster_of == -1, connectivity, 0.0)
            candidate = int(connectivity_masked.argmax())
            if connectivity_masked[candidate] <= 0.0:
                break
            cluster_of[candidate] = cluster_id
            cluster_weight += vertex_weights[candidate]
            row = adjacency.getrow(candidate)
            connectivity[row.indices] += row.data
    unassigned = np.flatnonzero(cluster_of == -1)
    if unassigned.size:
        cluster_weights = np.bincount(
            cluster_of[cluster_of >= 0],
            weights=vertex_weights[cluster_of >= 0],
            minlength=max(next_cluster, 1),
        )
        for vertex in unassigned:
            row = adjacency.getrow(vertex)
            neighbour_clusters = cluster_of[row.indices]
            neighbour_clusters = neighbour_clusters[neighbour_clusters >= 0]
            if neighbour_clusters.size:
                counts = np.bincount(neighbour_clusters, minlength=max(next_cluster, 1))
                cluster_id = int(counts.argmax())
            else:
                cluster_id = int(cluster_weights.argmin())
            cluster_of[vertex] = cluster_id
            cluster_weights[cluster_id] += vertex_weights[vertex]
    return cluster_of


# ----------------------------- expand_rows -----------------------------


@st.composite
def block_and_rows(draw):
    total = draw(st.integers(min_value=1, max_value=40))
    cols = draw(st.integers(min_value=1, max_value=8))
    density = draw(st.floats(min_value=0.0, max_value=0.9))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    matrix = random_csr(total, cols, density, seed)
    subset_size = draw(st.integers(min_value=0, max_value=total))
    rng = np.random.default_rng(seed + 1)
    subset = rng.choice(total, size=subset_size, replace=False)
    if draw(st.booleans()):
        subset = np.sort(subset)
    return matrix, subset


@given(block_and_rows())
@settings(max_examples=60, deadline=None)
def test_expand_rows_matches_seed(data):
    matrix, subset = data
    block = matrix[subset, :]
    expected = seed_expand_rows(subset, block, matrix.shape[0])
    actual = expand_rows(subset, block, matrix.shape[0])
    assert_csr_identical(expected, actual)
    assert actual.data.dtype == expected.data.dtype
    assert actual.indices.dtype == expected.indices.dtype


def test_expand_rows_empty_block():
    empty = sparse.csr_matrix((0, 4), dtype=np.float64)
    expected = seed_expand_rows([], empty, 6)
    actual = expand_rows([], empty, 6)
    assert_csr_identical(expected, actual)


def test_expand_rows_with_empty_rows_inside_block():
    dense = np.zeros((4, 3))
    dense[1, 2] = 5.0
    block = sparse.csr_matrix(dense)
    rows = np.array([7, 2, 5, 0])
    assert_csr_identical(
        seed_expand_rows(rows, block, 9), expand_rows(rows, block, 9)
    )


# ----------------------------- chunk_rows -----------------------------


@st.composite
def chunkable_rows(draw):
    count = draw(st.integers(min_value=0, max_value=60))
    cols = draw(st.integers(min_value=1, max_value=200))
    density = draw(st.floats(min_value=0.0, max_value=0.8))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    matrix = random_csr(max(count, 1), cols, density, seed)[:count, :]
    rows = np.arange(100, 100 + count, dtype=np.int64)
    limit = draw(st.integers(min_value=_HEADER.size + 17, max_value=6000))
    return rows, matrix, limit


@given(chunkable_rows())
@settings(max_examples=60, deadline=None)
def test_chunk_rows_matches_seed_boundaries(data):
    rows, matrix, limit = data
    chunks = chunk_rows(rows, matrix, max_chunk_bytes=limit, compress=True)
    if len(rows) == 0:
        assert len(chunks) == 1 and chunks[0].row_count == 0
        return
    row_nnz = np.diff(matrix.indptr)
    expected_boundaries = seed_chunk_boundaries(row_nnz, limit)
    # Reproduce the seed's recursive split of oversized encoded groups.
    expected_chunks = []

    def encode_group(start, stop):
        payload = encode_row_payload(rows[start:stop], matrix[start:stop, :], True)
        if len(payload) > limit and stop - start > 1:
            middle = (start + stop) // 2
            encode_group(start, middle)
            encode_group(middle, stop)
            return
        expected_chunks.append((payload, stop - start, int(row_nnz[start:stop].sum())))

    for start, stop in expected_boundaries:
        encode_group(start, stop)
    assert [(c.payload, c.row_count, c.nnz) for c in chunks] == expected_chunks


def test_chunk_rows_single_row_chunks():
    matrix = random_csr(8, 300, 0.9, 3)
    rows = np.arange(8)
    limit = _HEADER.size + 17  # too small for even one dense row estimate
    chunks = chunk_rows(rows, matrix, max_chunk_bytes=limit)
    assert sum(c.row_count for c in chunks) == 8
    row_nnz = np.diff(matrix.indptr)
    assert seed_chunk_boundaries(row_nnz, limit) == [(i, i + 1) for i in range(8)]


def test_chunk_rows_round_trips_all_rows():
    matrix = random_csr(40, 64, 0.4, 9)
    rows = np.arange(200, 240)
    chunks = chunk_rows(rows, matrix, max_chunk_bytes=2048)
    seen_rows, seen = [], []
    for chunk in chunks:
        ids, part = decode_row_payload(chunk.payload)
        seen_rows.extend(ids.tolist())
        seen.append(part)
    assert seen_rows == rows.tolist()
    stacked = sparse.vstack(seen, format="csr")
    assert_csr_identical(as_csr(matrix), stacked)


def test_chunk_rows_empty_rowset_marker_path():
    """Empty sends still produce one decodable chunk (the `.nul`-style path)."""
    empty = sparse.csr_matrix((0, 16), dtype=np.float64)
    chunks = chunk_rows([], empty, max_chunk_bytes=1024)
    assert len(chunks) == 1
    ids, part = decode_row_payload(chunks[0].payload)
    assert len(ids) == 0 and part.shape == (0, 16)


# ----------------------------- RowBlock extraction -----------------------------


@given(block_and_rows())
@settings(max_examples=40, deadline=None)
def test_rowblock_extraction_matches_dict_reference(data):
    matrix, subset = data
    block = RowBlock(global_rows=subset, local=matrix[subset, :])
    position = {int(g): i for i, g in enumerate(subset)}  # the seed's dict
    rng = np.random.default_rng(int(subset.sum()) + 1)
    if len(subset):
        queries = rng.choice(subset, size=min(len(subset), 5), replace=False)
        reference = matrix[subset, :][[position[int(q)] for q in queries], :]
        assert_csr_identical(as_csr(reference), block.extract_rows(queries))
        for q in queries:
            assert block.owns(int(q))
            assert block.local_index(int(q)) == position[int(q)]
    outside = [r for r in range(matrix.shape[0]) if r not in position]
    if outside:
        assert not block.owns(outside[0])
        with pytest.raises(KeyError):
            block.extract_rows([outside[0]])
        with pytest.raises(KeyError):
            block.local_index(outside[0])


def test_extract_nonempty_rows_matches_seed_and_caches():
    local = sparse.csr_matrix(np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 0.0], [2.0, 2.0]]))
    block = RowBlock(global_rows=np.array([4, 9, 1, 6]), local=local)
    with_data, without_data = block.extract_nonempty_rows([1, 4, 6, 9])
    assert with_data == [6, 9]
    assert without_data == [1, 4]
    # Second call hits the cached mask and must agree.
    assert block.extract_nonempty_rows([1, 4, 6, 9]) == (with_data, without_data)
    assert block._nonzero_mask is not None


def test_empty_extraction_from_empty_block():
    """Zero rows requested from a zero-row block is a valid empty extraction."""
    block = RowBlock(
        global_rows=np.empty(0, dtype=np.int64),
        local=sparse.csr_matrix((0, 3), dtype=np.float64),
    )
    extracted = block.extract_rows([])
    assert extracted.shape == (0, 3)
    with pytest.raises(KeyError):
        block.extract_rows([5])


def test_gather_rows_matches_scipy_fancy_indexing():
    matrix = random_csr(30, 12, 0.35, 5)
    for positions in ([], [0], [29, 0, 7, 7, 15], list(range(30))):
        positions = np.asarray(positions, dtype=np.int64)
        assert_csr_identical(matrix[positions, :], gather_rows(matrix, positions))


def test_unsafe_csr_matches_validating_constructor():
    matrix = random_csr(10, 6, 0.5, 8)
    rebuilt = unsafe_csr(
        matrix.data.copy(), matrix.indices.copy(), matrix.indptr.copy(), matrix.shape
    )
    assert_csr_identical(matrix, rebuilt)
    assert (rebuilt @ random_csr(6, 3, 0.5, 9)).shape == (10, 3)


# ----------------------------- compacted compute kernels -----------------------------


def _random_model(neurons, layers, seed):
    rng = np.random.default_rng(seed)
    weights = [
        sparse.random(neurons, neurons, density=0.08, format="csr", random_state=rng)
        for _ in range(layers)
    ]
    return SparseDNN(weights=weights, biases=[-0.2] * layers, name=f"rand-{seed}")


@given(
    st.integers(min_value=12, max_value=48),
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=0, max_value=500),
)
@settings(max_examples=25, deadline=None)
def test_compacted_kernels_match_global_formulation(neurons, workers, seed):
    """Per-(layer, worker) compact kernels == the seed's expand-and-multiply.

    Checks flop counts and the full product bit-for-bit, for both the local
    block and every received-source block, on randomized sparse models.
    """
    model = _random_model(neurons, 3, seed)
    rng = np.random.default_rng(seed + 13)
    owner = rng.integers(0, workers, size=neurons)
    owner[:workers] = np.arange(workers)  # every worker owns at least one row
    plan = build_partition_plan(model, owner, workers, partitioner_name="random")

    batch = 4
    activations = sparse.random(
        neurons, batch, density=0.3, format="csr", random_state=rng
    ).astype(np.float64)

    for layer in range(model.num_layers):
        for worker in range(workers):
            kernels = plan.layer_kernels(layer, worker)
            weight = plan.weight_blocks[layer][worker].local
            own_rows = plan.worker_rows(worker)
            x_own = activations[own_rows, :]

            expanded = expand_rows(own_rows, x_own, neurons)
            assert flop_count_spmm(kernels.local, x_own) == flop_count_spmm(
                weight, expanded
            )
            assert_csr_identical(weight @ expanded, kernels.local @ x_own)

            z_global = weight @ expanded
            z_compact = accumulate_spmm(None, kernels.local, x_own)
            for source, rows in plan.recv_map(layer, worker).items():
                x_src = activations[rows, :]
                received = expand_rows(rows, x_src, neurons)
                assert flop_count_spmm(kernels.by_source[source], x_src) == (
                    flop_count_spmm(weight, received)
                )
                z_global = z_global + weight @ received
                z_compact = accumulate_spmm(z_compact, kernels.by_source[source], x_src)
            assert_csr_identical(z_global, z_compact)


# ----------------------------- hypergraph cluster growing -----------------------------


@given(
    st.integers(min_value=8, max_value=80),
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=0, max_value=300),
)
@settings(max_examples=25, deadline=None)
def test_grow_clusters_matches_seed(vertices, workers, seed):
    rng = np.random.default_rng(seed)
    raw = sparse.random(vertices, vertices, density=0.15, format="csr", random_state=rng)
    adjacency = raw + raw.T
    adjacency.setdiag(0)
    adjacency.eliminate_zeros()
    adjacency = adjacency.tocsr()
    vertex_weights = rng.integers(1, 10, size=vertices).astype(np.float64)

    partitioner = HypergraphPartitioner(seed=0)
    expected = seed_grow_clusters(partitioner, adjacency, vertex_weights, workers)
    actual = partitioner._grow_clusters(adjacency, vertex_weights, workers)
    assert np.array_equal(expected, actual)


@pytest.mark.parametrize("neurons,workers", [(96, 3), (128, 5), (192, 4)])
def test_hypergraph_owner_deterministic_across_runs(neurons, workers):
    config = GraphChallengeConfig(
        neurons=neurons,
        layers=3,
        nnz_per_row=max(8, neurons // 32),
        num_communities=max(16, neurons // 32),
        community_link_fraction=0.93,
        seed=7,
    )
    model = build_graph_challenge_model(config)
    first = HypergraphPartitioner(seed=1).assign(model, workers)
    second = HypergraphPartitioner(seed=1).assign(model, workers)
    assert np.array_equal(first, second)


# ----------------------------- staging cache isolation -----------------------------


def test_same_named_models_do_not_share_staged_payloads():
    """Two models with the same default name must not serve stale payloads.

    The staged-payload cache is tied to the plan object, so a second engine
    running a *different* model (with a colliding name) must produce its own
    simulated results, identical to what a fresh process would compute.
    """
    rng = np.random.default_rng(0)
    owner = rng.integers(0, 2, size=24)
    owner[:2] = [0, 1]
    batch = sparse.random(24, 3, density=0.4, format="csr", random_state=rng).astype(
        np.float64
    )

    def run(model_seed):
        model = _random_model(24, 2, model_seed)
        assert model.name.startswith("rand-")
        model.name = "sparse-dnn"  # force the collision
        plan = build_partition_plan(model, owner, 2, partitioner_name="random")
        engine = FSDInference(
            CloudEnvironment(), EngineConfig(variant=Variant.OBJECT, workers=2)
        )
        return engine.infer(model, batch, plan)

    first = run(1)
    second = run(2)  # same process, same names, different weights
    fresh_second = run(2)  # what an uncontaminated run computes
    assert _csr_digest(second.output) == _csr_digest(fresh_second.output)
    assert second.cost.total.hex() == fresh_second.cost.total.hex()
    assert _csr_digest(first.output) != _csr_digest(second.output)


def test_reduce_rejects_narrower_num_columns():
    """The vectorized Reduce keeps the old error on width mismatch."""
    from repro.cloud import VirtualClock
    from repro.comm import ObjectChannel, ObjectChannelConfig, reduce_to_root

    cloud = CloudEnvironment()
    channel = ObjectChannel(cloud, ObjectChannelConfig(num_buckets=1))
    channel.prepare(2)
    contributions = {
        0: (np.array([0, 1]), random_csr(2, 6, 0.5, 1)),
        1: (np.array([2, 3]), random_csr(2, 6, 0.5, 2)),
    }
    clocks = {0: VirtualClock(0.0), 1: VirtualClock(0.0)}
    with pytest.raises(ValueError):
        reduce_to_root(channel, 0, 0, contributions, clocks, num_columns=3)


# ----------------------------- end-to-end engine equivalence -----------------------------


def _csr_digest(matrix):
    digest = hashlib.sha256()
    digest.update(np.asarray(matrix.shape, dtype=np.int64).tobytes())
    digest.update(matrix.indptr.astype(np.int64).tobytes())
    digest.update(matrix.indices.astype(np.int64).tobytes())
    digest.update(matrix.data.astype(np.float64).tobytes())
    return digest.hexdigest()


def _metric_dict(metric):
    out = {}
    for field in fields(metric):
        value = getattr(metric, field.name)
        if isinstance(value, float):
            out[field.name] = value.hex()
        elif isinstance(value, (int, bool, str)):
            out[field.name] = value
    return out


@pytest.fixture(scope="module")
def seed_reference():
    return json.loads(REFERENCE_PATH.read_text())


def test_engine_results_identical_to_seed(seed_reference):
    """Latency, cost, outputs and all metrics are bit-for-bit the seed's.

    The fixtures in ``tests/data/seed_engine_reference.json`` were captured
    by running the pre-rewrite implementation; the virtual-time and billing
    model charges by sparsity structure, so the local-dimension compute core
    must reproduce every number exactly -- down to the float bit pattern.
    """
    for entry in seed_reference["records"]:
        neurons, layers = entry["neurons"], entry["layers"]
        samples, workers = entry["samples"], entry["workers"]
        config = GraphChallengeConfig(
            neurons=neurons,
            layers=layers,
            nnz_per_row=min(64, max(8, neurons // 32)),
            num_communities=max(16, neurons // 32),
            community_link_fraction=0.93,
            seed=7,
        )
        model = build_graph_challenge_model(config)
        batch = generate_input_batch(neurons, samples=samples, density=0.25, seed=11)
        partitioner = HypergraphPartitioner(seed=1)
        owner = partitioner.assign(model, workers)
        assert (
            hashlib.sha256(owner.astype(np.int64).tobytes()).hexdigest()
            == entry["owner_sha256"]
        ), "partitioner ownership diverged from the seed"
        assert np.bincount(owner, minlength=workers).tolist() == entry["owner_bincount"]
        plan = partitioner.partition(model, workers)

        for variant_name, expected in entry["runs"].items():
            variant = Variant(variant_name)
            engine = FSDInference(
                CloudEnvironment(),
                EngineConfig(
                    variant=variant,
                    workers=workers if variant is not Variant.SERIAL else 1,
                ),
            )
            if variant is Variant.SERIAL:
                result = engine.infer(model, batch)
            else:
                result = engine.infer(model, batch, plan)
            context = f"{variant_name} N={neurons} P={workers}"
            assert result.latency_seconds.hex() == expected["latency_hex"], context
            assert result.cost.total.hex() == expected["cost_total_hex"], context
            assert _csr_digest(result.output) == expected["output_sha256"], context
            assert int(result.output.nnz) == expected["output_nnz"], context
            assert [
                _metric_dict(w) for w in result.metrics.per_worker
            ] == expected["per_worker"], context
            assert [
                _metric_dict(l) for l in result.metrics.per_layer
            ] == expected["per_layer"], context

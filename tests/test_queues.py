"""Tests for the simulated message queue service (SQS analogue)."""

import pytest

from repro.cloud import (
    CloudEnvironment,
    InvalidRequestError,
    PayloadTooLargeError,
    ResourceAlreadyExistsError,
    ResourceNotFoundError,
    VirtualClock,
)
from repro.cloud.billing import SERVICE_QUEUE
from repro.cloud.queues import MAX_MESSAGE_BYTES, MAX_RECEIVE_BATCH, QueueMessage


@pytest.fixture
def service(cloud):
    return cloud.queues


class TestQueueService:
    def test_create_and_get(self, service):
        queue = service.create_queue("q1")
        assert service.get_queue("q1") is queue
        assert "q1" in service
        assert service.list_queues() == ["q1"]

    def test_duplicate_creation_rejected(self, service):
        service.create_queue("q1")
        with pytest.raises(ResourceAlreadyExistsError):
            service.create_queue("q1")

    def test_get_or_create_is_idempotent(self, service):
        first = service.get_or_create_queue("q1")
        second = service.get_or_create_queue("q1")
        assert first is second

    def test_missing_queue_raises(self, service):
        with pytest.raises(ResourceNotFoundError):
            service.get_queue("nope")

    def test_delete_queue(self, service):
        service.create_queue("q1")
        service.delete_queue("q1")
        assert "q1" not in service


class TestSendReceive:
    def test_send_then_receive_round_trip(self, service):
        queue = service.create_queue("q")
        producer, consumer = VirtualClock(), VirtualClock()
        queue.send(QueueMessage(body=b"hello", attributes={"target": 1}), producer)
        messages = queue.receive(consumer, wait_seconds=5.0)
        assert len(messages) == 1
        assert messages[0].body == b"hello"
        assert messages[0].attributes["target"] == 1

    def test_send_advances_producer_clock(self, service):
        queue = service.create_queue("q")
        clock = VirtualClock()
        queue.send(QueueMessage(body=b"x"), clock)
        assert clock.now > 0.0

    def test_oversized_message_rejected(self, service):
        queue = service.create_queue("q")
        with pytest.raises(PayloadTooLargeError):
            queue.send(QueueMessage(body=b"x" * (MAX_MESSAGE_BYTES + 1)), VirtualClock())

    def test_receive_respects_visibility_timestamp(self, service):
        queue = service.create_queue("q")
        queue.deliver(QueueMessage(body=b"later", available_at=10.0))
        consumer = VirtualClock()
        # Short polling before the message is available returns nothing.
        assert queue.receive(consumer, wait_seconds=0.0) == []
        # Long polling waits (in virtual time) until it becomes available.
        messages = queue.receive(consumer, wait_seconds=20.0)
        assert len(messages) == 1
        assert consumer.now >= 10.0

    def test_long_poll_gives_up_after_wait(self, service):
        queue = service.create_queue("q")
        consumer = VirtualClock()
        assert queue.receive(consumer, wait_seconds=3.0) == []
        assert consumer.now >= 3.0

    def test_receive_batch_capped_at_ten(self, service):
        queue = service.create_queue("q")
        producer = VirtualClock()
        for i in range(15):
            queue.send(QueueMessage(body=bytes([i])), producer)
        consumer = VirtualClock(producer.now)
        first = queue.receive(consumer)
        second = queue.receive(consumer)
        assert len(first) == MAX_RECEIVE_BATCH
        assert len(second) == 5

    def test_received_messages_are_removed(self, service):
        queue = service.create_queue("q")
        producer = VirtualClock()
        queue.send(QueueMessage(body=b"only"), producer)
        consumer = VirtualClock(producer.now)
        assert len(queue.receive(consumer)) == 1
        assert queue.receive(consumer) == []
        assert queue.depth == 0

    def test_invalid_receive_parameters(self, service):
        queue = service.create_queue("q")
        with pytest.raises(InvalidRequestError):
            queue.receive(VirtualClock(), max_messages=0)
        with pytest.raises(InvalidRequestError):
            queue.receive(VirtualClock(), max_messages=11)
        with pytest.raises(InvalidRequestError):
            queue.receive(VirtualClock(), wait_seconds=30.0)

    def test_delete_batch_limits(self, service):
        queue = service.create_queue("q")
        messages = [QueueMessage(body=b"m") for _ in range(11)]
        with pytest.raises(Exception):
            queue.delete_batch(messages, VirtualClock())
        # empty delete is a silent no-op
        queue.delete_batch([], VirtualClock())


class TestQueueBilling:
    def test_every_api_call_is_billed(self, cloud):
        queue = cloud.queues.create_queue("q")
        producer = VirtualClock()
        queue.send(QueueMessage(body=b"x"), producer)
        consumer = VirtualClock(producer.now)
        received = queue.receive(consumer)
        queue.delete_batch(received, consumer)
        operations = {r.operation for r in cloud.ledger.filter(service=SERVICE_QUEUE)}
        assert operations == {"send", "receive", "delete"}

    def test_large_receive_billed_in_increments(self, cloud):
        queue = cloud.queues.create_queue("q")
        producer = VirtualClock()
        big = QueueMessage(body=b"x" * (200 * 1024))
        queue.send(big, producer)
        consumer = VirtualClock(producer.now)
        queue.receive(consumer)
        receive_records = cloud.ledger.filter(service=SERVICE_QUEUE, operation="receive")
        assert receive_records[0].quantity == 4  # 200 KB -> four 64 KB increments

    def test_long_polling_finds_messages_short_polling_would_wait_for(self, cloud):
        """Long polling returns in-flight messages instead of coming back empty."""
        queue = cloud.queues.create_queue("q")
        queue.deliver(QueueMessage(body=b"soon", available_at=1.0))
        short_consumer = VirtualClock()
        long_consumer = VirtualClock()
        short = queue.receive(short_consumer, wait_seconds=0.0)
        long = queue.receive(long_consumer, wait_seconds=5.0)
        assert short == []
        assert len(long) == 1

"""Tests for the deterministic chaos layer.

Locks the chaos contracts:

1. Fault plans are deterministic: the same seed and process list materialise
   the identical event sequence, and ``describe()`` is a stable identity.
2. Retry policies are pure functions of (policy, attempt, token): backoff
   schedules replay bit-for-bit and retryability follows the error taxonomy
   in :mod:`repro.cloud.errors`.
3. Chaos-off is byte-identical: a serve with ``chaos=None`` and a serve under
   an *empty* fault plan produce equal per-query records, and the chaos-off
   summary carries no chaos or outcome keys.
4. Chaos serves degrade gracefully and deterministically: a fault storm
   yields failed/shed outcomes and reliability metrics (never a crashed
   loop), and two serves under the same config produce identical summaries --
   across campaign thread and process executors too.
5. The campaign chaos axis composes: chaos-free cells keep their historical
   fingerprint payload, chaos cells are tagged, and ``ChaosScenario`` carries
   a config through an unmodified grid.
"""

from __future__ import annotations

import json

import pytest

from repro import (
    Campaign,
    ChaosConfig,
    ChaosScenario,
    CloudEnvironment,
    ColdStartStorm,
    EngineConfig,
    FaultInjector,
    FaultPlan,
    FSDServingBackend,
    FunctionPreemptedError,
    FunctionTimeoutError,
    InferenceServer,
    PoissonFaultProcess,
    PoissonProcess,
    PreemptionWindows,
    QueryWorkloadFactory,
    RetryPolicy,
    Scenario,
    ScheduledFaults,
    ServingConfig,
    TransientServiceError,
    Variant,
    generate_sporadic_workload,
)

HORIZON = 24 * 3600.0


@pytest.fixture(scope="module")
def tiny_model_chaos():
    from repro import GraphChallengeConfig, build_graph_challenge_model

    config = GraphChallengeConfig(
        neurons=64, layers=2, nnz_per_row=4, num_communities=4, seed=7
    )
    return build_graph_challenge_model(config)


def _fsd_backend(tiny_model, variant=Variant.SERIAL, workers=1):
    return FSDServingBackend(
        CloudEnvironment(),
        QueryWorkloadFactory(model_builder=lambda neurons: tiny_model),
        config_for=lambda neurons: EngineConfig(variant=variant, workers=workers),
    )


def _workload(daily_samples=48, seed=17):
    return generate_sporadic_workload(
        daily_samples=daily_samples, batch_size=4, neuron_counts=(64,), seed=seed
    )


def _storm_config(**overrides):
    """A fault storm aggressive enough to produce non-success outcomes."""
    defaults = dict(
        plan=FaultPlan(
            processes=(
                PoissonFaultProcess("queue", rate_per_hour=30.0),
                PreemptionWindows(windows=((4 * 3600.0, 8 * 3600.0),)),
                ColdStartStorm(deploy_times=(12 * 3600.0,)),
            ),
            seed=5,
        ),
        retry=RetryPolicy(max_attempts=3, initial_backoff_seconds=1.0, seed=9),
        channel_retry=RetryPolicy(max_attempts=4, initial_backoff_seconds=0.05, seed=11),
        deadline_seconds=3600.0,
    )
    defaults.update(overrides)
    return ChaosConfig(**defaults)


class TestFaultPlan:
    def test_materialise_is_deterministic(self):
        plan = FaultPlan(
            processes=(
                PoissonFaultProcess("queue", rate_per_hour=50.0),
                PoissonFaultProcess("object", rate_per_hour=10.0, resource="fsd-bucket-0"),
                PreemptionWindows(windows=((100.0, 200.0), (900.0, 1000.0))),
            ),
            seed=21,
        )
        first = plan.materialise(HORIZON)
        second = plan.materialise(HORIZON)
        assert first == second
        assert list(first) == sorted(first, key=lambda e: (e.time, e.kind, e.service or "", e.resource or ""))
        assert all(0.0 <= event.time <= HORIZON for event in first if event.kind == "transient")

    def test_seed_changes_the_draw(self):
        processes = (PoissonFaultProcess("queue", rate_per_hour=50.0),)
        a = FaultPlan(processes=processes, seed=1).materialise(HORIZON)
        b = FaultPlan(processes=processes, seed=2).materialise(HORIZON)
        assert a != b

    def test_scheduled_faults_are_verbatim(self):
        plan = FaultPlan(processes=(ScheduledFaults("pubsub", times=(30.0, 10.0)),))
        events = plan.materialise(HORIZON)
        assert [event.time for event in events] == [10.0, 30.0]
        assert all(event.service == "pubsub" for event in events)

    def test_describe_is_json_stable(self):
        plan = FaultPlan(
            processes=(PreemptionWindows(windows=((1.0, 2.0),)),), seed=3
        )
        assert json.dumps(plan.describe(), sort_keys=True) == json.dumps(
            plan.describe(), sort_keys=True
        )

    def test_bad_windows_rejected(self):
        with pytest.raises(ValueError):
            PreemptionWindows(windows=((5.0, 5.0),))
        with pytest.raises(ValueError):
            PreemptionWindows(windows=((-1.0, 5.0),))


class TestRetryPolicy:
    def test_backoff_schedule_replays(self):
        policy = RetryPolicy(max_attempts=5, initial_backoff_seconds=0.5, seed=3)
        schedule = [policy.backoff_seconds(attempt, token=7) for attempt in (1, 2, 3)]
        assert schedule == [policy.backoff_seconds(a, token=7) for a in (1, 2, 3)]
        # jitter varies by token, but the base geometric shape is preserved
        other = [policy.backoff_seconds(attempt, token=8) for attempt in (1, 2, 3)]
        assert schedule != other

    def test_backoff_is_capped(self):
        policy = RetryPolicy(
            max_attempts=10,
            initial_backoff_seconds=1.0,
            backoff_multiplier=10.0,
            max_backoff_seconds=5.0,
            jitter=0.0,
        )
        assert policy.backoff_seconds(1) == 1.0
        assert policy.backoff_seconds(4) == 5.0

    def test_retryability_follows_error_taxonomy(self):
        policy = RetryPolicy(max_attempts=3)
        transient = TransientServiceError("queue")
        preempted = FunctionPreemptedError("f", 1.0)
        timeout = FunctionTimeoutError("f", 900.0, 1000.0)
        assert policy.should_retry(transient, 1)
        assert policy.should_retry(preempted, 2)
        assert not policy.should_retry(transient, 3)  # attempts exhausted
        assert not policy.should_retry(timeout, 1)  # not retryable
        assert not policy.should_retry(ValueError("nope"), 1)


class TestFaultInjector:
    def test_transient_faults_fire_once_in_order(self):
        plan = FaultPlan(processes=(ScheduledFaults("queue", times=(10.0, 20.0)),))
        injector = FaultInjector(plan, HORIZON)
        injector.check("queue", "send", "q-0", now=5.0)  # nothing due yet
        with pytest.raises(TransientServiceError):
            injector.check("queue", "send", "q-0", now=12.0)
        with pytest.raises(TransientServiceError):
            injector.check("queue", "receive", "q-1", now=25.0)
        injector.check("queue", "send", "q-0", now=30.0)  # both consumed
        assert injector.injected_counts == {"transient_queue": 2}
        assert injector.total_injected == 2

    def test_resource_scoped_faults_skip_other_resources(self):
        plan = FaultPlan(
            processes=(ScheduledFaults("object", times=(10.0,), resource="bucket-3"),)
        )
        injector = FaultInjector(plan, HORIZON)
        injector.check("object", "put", "bucket-0", now=20.0)  # not a match
        with pytest.raises(TransientServiceError):
            injector.check("object", "put", "bucket-3", now=20.0)

    def test_preemption_kill_time_clamps_to_window(self):
        plan = FaultPlan(processes=(PreemptionWindows(windows=((100.0, 200.0),)),))
        injector = FaultInjector(plan, HORIZON)
        # invocation spanning the window start is killed at the start
        assert injector.preemption_kill_time("f", 50.0, 300.0) == 100.0
        # invocation starting inside the window is killed where it started
        assert injector.preemption_kill_time("f", 150.0, 300.0) == 150.0
        # invocation entirely outside survives
        assert injector.preemption_kill_time("f", 250.0, 300.0) is None


class TestChaosOffByteIdentity:
    def test_empty_plan_matches_chaos_off_records(self, tiny_model_chaos):
        workload = _workload()
        base = InferenceServer(_fsd_backend(tiny_model_chaos)).serve(workload)
        empty = InferenceServer(
            _fsd_backend(tiny_model_chaos),
            ServingConfig(chaos=ChaosConfig(plan=FaultPlan())),
        ).serve(workload)
        assert base.records == empty.records
        assert base.cost.total == empty.cost.total
        # the empty-plan summary differs only by its (gated) chaos block
        base_summary = base.summary()
        empty_summary = empty.summary()
        assert "chaos" not in base_summary
        assert "outcome_counts" not in base_summary
        chaos_block = empty_summary.pop("chaos")
        assert chaos_block["availability"] == 1.0
        assert chaos_block["fault_counts"] == {}
        assert base_summary == empty_summary

    def test_chaos_off_summary_has_no_reliability_keys(self, tiny_model_chaos):
        report = InferenceServer(_fsd_backend(tiny_model_chaos)).serve(_workload())
        summary = report.summary()
        assert "chaos" not in summary
        assert "outcome_counts" not in summary
        assert all(record.outcome == "completed" for record in report.records)
        assert report.availability == 1.0
        assert report.retry_count == 0


class TestChaosServe:
    @pytest.fixture(scope="class")
    def storm_reports(self, tiny_model_chaos):
        config = ServingConfig(chaos=_storm_config())
        workload = _workload()
        return [
            InferenceServer(_fsd_backend(tiny_model_chaos), config).serve(workload)
            for _ in range(2)
        ]

    def test_storm_degrades_gracefully(self, storm_reports):
        report = storm_reports[0]
        counts = report.outcome_counts()
        assert sum(counts.values()) == len(report.records)
        assert counts["completed"] > 0  # the loop kept serving
        assert counts["failed"] + counts["shed"] > 0  # the storm bit
        assert report.availability is not None and report.availability < 1.0
        assert report.fault_counts  # injections were recorded
        summary = report.summary()
        assert summary["outcome_counts"] == counts
        assert summary["chaos"]["availability"] == report.availability
        assert summary["chaos"]["retry_count"] == report.retry_count

    def test_storm_record_invariants(self, storm_reports):
        for record in storm_reports[0].records:
            assert record.outcome in ("completed", "failed", "shed")
            assert record.cost >= 0.0
            if record.outcome == "shed":
                assert record.attempts == 0
                assert record.failure_reason == "deadline_exceeded"
                assert record.cost == 0.0
            elif record.outcome == "failed":
                assert record.failure_reason is not None
            else:
                assert record.attempts >= 1
                assert record.failure_reason is None

    def test_storm_is_deterministic(self, storm_reports):
        first, second = storm_reports
        assert json.dumps(first.summary(), sort_keys=True, default=str) == json.dumps(
            second.summary(), sort_keys=True, default=str
        )
        assert first.records == second.records

    def test_channel_retries_survive_queue_faults(self, tiny_model_chaos):
        # QUEUE variant actually exercises the pub/sub + queue channel; the
        # channel-level retry policy absorbs a small burst of transient
        # faults (pending faults fire consecutively, so the burst must stay
        # below max_attempts) and every query still completes.
        config = ServingConfig(
            chaos=ChaosConfig(
                plan=FaultPlan(
                    processes=(ScheduledFaults("queue", times=(10.0, 20.0, 30.0)),)
                ),
                channel_retry=RetryPolicy(
                    max_attempts=6, initial_backoff_seconds=0.05, seed=2
                ),
            )
        )
        backend = _fsd_backend(tiny_model_chaos, variant=Variant.QUEUE, workers=2)
        report = InferenceServer(backend, config).serve(_workload(daily_samples=16))
        assert report.availability == 1.0
        assert report.channel_stats.retries == 3
        assert report.fault_counts == {"transient_queue": 3}
        assert report.summary()["chaos"]["channel_retries"] == report.channel_stats.retries


class TestCampaignChaosAxis:
    @pytest.fixture
    def scenario(self):
        return Scenario(
            "poisson",
            PoissonProcess(),
            daily_samples=24,
            batch_size=4,
            neuron_counts=(64,),
            seed=3,
        )

    @pytest.fixture
    def backends(self, tiny_model_chaos):
        def fsd():
            return _fsd_backend(tiny_model_chaos)

        return {"fsd": fsd}

    def test_grid_gains_a_chaos_axis(self, scenario, backends):
        campaign = Campaign(
            [scenario], backends, chaos_sets={"none": None, "storm": _storm_config()}
        )
        labels = [cell.label for cell in campaign.cells()]
        assert labels == ["poisson/fsd/none", "poisson/fsd/none/storm"]
        report = campaign.run(max_workers=1)
        clean = report.cell("poisson", "fsd")
        storm = report.cell("poisson", "fsd", chaos="storm")
        assert "chaos" not in clean.summary
        assert "chaos" in storm.summary
        assert report.chaos_sets == ["none", "storm"]
        assert "chaos_sets" in report.to_dict()

    def test_chaos_free_fingerprint_payload_unchanged(self, scenario, backends):
        # a chaos-free campaign's cells must hash exactly as before the axis
        with_axis = Campaign(
            [scenario], backends, chaos_sets={"none": None, "storm": _storm_config()}
        ).run(max_workers=1)
        without_axis = Campaign([scenario], backends).run(max_workers=1)
        assert (
            with_axis.cell("poisson", "fsd").fingerprint
            == without_axis.cell("poisson", "fsd").fingerprint
        )
        assert "chaos" not in without_axis.cells[0].to_dict()
        assert "chaos_sets" not in without_axis.to_dict()

    def test_chaos_scenario_carries_the_config(self, scenario, backends):
        config = _storm_config()
        wrapped = ChaosScenario(base=scenario, chaos=config)
        assert wrapped.name == "poisson+chaos"
        assert wrapped.describe()["chaos"] == config.describe()
        report = Campaign([wrapped], backends).run(max_workers=1)
        direct = Campaign(
            [scenario], backends, chaos_sets={"storm": config}
        ).run(max_workers=1)
        assert (
            report.cells[0].summary["chaos"]
            == direct.cell("poisson", "fsd", chaos="storm").summary["chaos"]
        )

    def test_executors_agree_under_chaos(self, scenario):
        # picklable spec factories so the same grid ships to worker processes
        from repro.serving.factories import FSDBackendSpec

        campaign = Campaign(
            [scenario],
            {"fsd": FSDBackendSpec(workers=2, layers=2)},
            chaos_sets={"none": None, "storm": _storm_config()},
        )
        thread = campaign.run(max_workers=2, executor="thread")
        process = campaign.run(max_workers=2, executor="process")
        assert [c.fingerprint for c in thread.cells] == [
            c.fingerprint for c in process.cells
        ]

    def test_unknown_chaos_set_rejected(self, scenario, backends):
        campaign = Campaign([scenario], backends)
        from repro import CampaignCell

        with pytest.raises(KeyError):
            campaign.run(cells=[CampaignCell("poisson", "fsd", chaos="storm")])

"""Sparse DNN model objects and their (de)serialisation."""

from .network import LayerStats, SparseDNN
from .serialization import (
    deserialize_csr,
    load_layer_rows,
    model_key,
    serialize_csr,
    store_model,
)

__all__ = [
    "LayerStats",
    "SparseDNN",
    "deserialize_csr",
    "load_layer_rows",
    "model_key",
    "serialize_csr",
    "store_model",
]

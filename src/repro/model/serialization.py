"""Serialisation of models, partitions and activations to the object store.

FSD-Inference keeps trained models, their offline-computed partitions and the
inference inputs in object storage; each FaaS worker reads only its own share
at invocation time (Figure 1).  The format here is a compact ``zlib``-
compressed binary encoding of CSR structures -- the same encoding is reused
for the inter-worker payloads in :mod:`repro.comm.payload`.
"""

from __future__ import annotations

import io
import struct
import zlib
from typing import Tuple

import numpy as np
from scipy import sparse

from ..cloud import Bucket, VirtualClock
from ..sparse import as_csr
from .network import SparseDNN

__all__ = [
    "serialize_csr",
    "deserialize_csr",
    "store_model",
    "load_layer_rows",
    "model_key",
]

_MAGIC = b"FSDC"
_HEADER = struct.Struct("<4sIIIQ")  # magic, rows, cols, dtype size, nnz


def serialize_csr(matrix: sparse.spmatrix, compress: bool = True) -> bytes:
    """Serialise a CSR matrix to a compact (optionally compressed) byte string."""
    matrix = as_csr(matrix).astype(np.float64)
    header = _HEADER.pack(_MAGIC, matrix.shape[0], matrix.shape[1], 4, matrix.nnz)
    buffer = io.BytesIO()
    buffer.write(header)
    buffer.write(matrix.indptr.astype(np.int64).tobytes())
    buffer.write(matrix.indices.astype(np.int32).tobytes())
    buffer.write(matrix.data.astype(np.float64).tobytes())
    raw = buffer.getvalue()
    if compress:
        return b"Z" + zlib.compress(raw, level=6)
    return b"R" + raw


def deserialize_csr(payload: bytes) -> sparse.csr_matrix:
    """Inverse of :func:`serialize_csr`."""
    if not payload:
        raise ValueError("cannot deserialise an empty payload")
    marker, body = payload[:1], payload[1:]
    if marker == b"Z":
        raw = zlib.decompress(body)
    elif marker == b"R":
        raw = body
    else:
        raise ValueError(f"unknown serialisation marker {marker!r}")
    magic, rows, cols, dtype_size, nnz = _HEADER.unpack_from(raw, 0)
    if magic != _MAGIC:
        raise ValueError("payload does not contain a serialised CSR matrix")
    offset = _HEADER.size
    indptr = np.frombuffer(raw, dtype=np.int64, count=rows + 1, offset=offset)
    offset += indptr.nbytes
    indices = np.frombuffer(raw, dtype=np.int32, count=nnz, offset=offset)
    offset += indices.nbytes
    data = np.frombuffer(raw, dtype=np.float64, count=nnz, offset=offset)
    return sparse.csr_matrix((data, indices, indptr), shape=(rows, cols))


def model_key(model_name: str, layer: int, part: str = "full") -> str:
    """Object-store key of one layer (or one layer partition) of a model."""
    return f"models/{model_name}/layer-{layer:04d}/{part}.csr"


def store_model(
    model: SparseDNN, bucket: Bucket, clock: VirtualClock, compress: bool = True
) -> Tuple[int, int]:
    """Upload every layer of ``model`` to ``bucket``.

    Returns ``(objects_written, total_bytes)``.  This is an offline step in
    the paper (models are partitioned and staged a priori), so callers
    typically use a throwaway clock and checkpoint billing afterwards.
    """
    total_bytes = 0
    for k, weight in enumerate(model.weights):
        payload = serialize_csr(weight, compress=compress)
        bucket.put_object(model_key(model.name, k), payload, clock)
        total_bytes += len(payload)
    return model.num_layers, total_bytes


def load_layer_rows(
    bucket: Bucket, model_name: str, layer: int, clock: VirtualClock, part: str = "full"
) -> sparse.csr_matrix:
    """Fetch and decode one stored layer (or layer partition)."""
    payload = bucket.get_object(model_key(model_name, layer, part), clock)
    return deserialize_csr(payload)

"""Sparse deep neural network model.

A :class:`SparseDNN` is the model object FSD-Inference performs inference
over: ``L`` fully-connected layers of equal width ``N`` with sparse weight
matrices, a per-layer scalar bias, ReLU activation and an activation cap
(the Graph Challenge recurrence).  The single-process :meth:`forward` pass is
the reproduction's ground truth -- every distributed variant and baseline is
checked against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np
from scipy import sparse

from ..sparse import as_csr, csr_nbytes, relu_threshold, spmm, add_bias_to_nonzero_structure

__all__ = ["SparseDNN", "LayerStats"]


@dataclass(frozen=True)
class LayerStats:
    """Structural statistics of one layer (used by partitioners and reports)."""

    index: int
    shape: tuple
    nnz: int
    bytes: int


class SparseDNN:
    """An ``L``-layer sparse feed-forward network of uniform width ``N``.

    Args:
        weights: per-layer CSR weight matrices, each of shape ``(N, N)``.
        biases: per-layer scalar bias added to stored pre-activation entries.
        activation_cap: saturation value applied after ReLU (Graph Challenge
            uses 32); ``None`` disables the cap.
        name: human-readable model identifier (used in object-store keys).
    """

    def __init__(
        self,
        weights: Sequence[sparse.spmatrix],
        biases: Sequence[float],
        activation_cap: Optional[float] = 32.0,
        name: str = "sparse-dnn",
    ):
        if not weights:
            raise ValueError("a SparseDNN needs at least one layer")
        if len(weights) != len(biases):
            raise ValueError(
                f"got {len(weights)} weight matrices but {len(biases)} biases"
            )
        self.weights: List[sparse.csr_matrix] = [as_csr(w).astype(np.float64) for w in weights]
        width = self.weights[0].shape[1]
        for k, w in enumerate(self.weights):
            if w.shape != (width, width):
                raise ValueError(
                    f"layer {k} has shape {w.shape}; expected ({width}, {width}) -- "
                    "FSD-Inference assumes uniform layer width"
                )
        self.biases: List[float] = [float(b) for b in biases]
        self.activation_cap = activation_cap
        self.name = name
        #: encoded staging payloads keyed by the staging scheme, mirroring
        #: ``PartitionPlan.staged_payload_cache``: the payload bytes are a pure
        #: function of this object's contents, so caching them here lets
        #: repeated runs (benchmark sweeps, serving replays) skip re-encoding
        #: while distinct models can never collide.
        self.staged_payload_cache: dict = {}

    # -- structural properties ----------------------------------------------------

    @property
    def num_layers(self) -> int:
        return len(self.weights)

    @property
    def num_neurons(self) -> int:
        return self.weights[0].shape[0]

    @property
    def total_nnz(self) -> int:
        return int(sum(w.nnz for w in self.weights))

    def layer_stats(self) -> List[LayerStats]:
        return [
            LayerStats(index=k, shape=w.shape, nnz=int(w.nnz), bytes=csr_nbytes(w))
            for k, w in enumerate(self.weights)
        ]

    def nbytes(self) -> int:
        """Approximate in-memory footprint of the full model."""
        return int(sum(csr_nbytes(w) for w in self.weights))

    # -- inference -------------------------------------------------------------------

    def forward(
        self, inputs: sparse.spmatrix, return_all_layers: bool = False
    ) -> sparse.csr_matrix | List[sparse.csr_matrix]:
        """Single-process forward pass (the correctness ground truth).

        ``inputs`` has shape ``(N, B)``: neurons in rows, samples in columns.
        """
        activations = as_csr(inputs).astype(np.float64)
        if activations.shape[0] != self.num_neurons:
            raise ValueError(
                f"inputs have {activations.shape[0]} rows but the model has "
                f"{self.num_neurons} neurons"
            )
        per_layer = []
        for weight, bias in zip(self.weights, self.biases):
            pre = spmm(weight, activations)
            pre = add_bias_to_nonzero_structure(pre, bias)
            activations = relu_threshold(pre, self.activation_cap)
            if return_all_layers:
                per_layer.append(activations)
        return per_layer if return_all_layers else activations

    def predict_categories(self, inputs: sparse.spmatrix) -> np.ndarray:
        """Graph Challenge style 'category' output: argmax over neurons per sample."""
        final = self.forward(inputs)
        dense = np.asarray(final.todense())
        return dense.argmax(axis=0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SparseDNN(name={self.name!r}, neurons={self.num_neurons}, "
            f"layers={self.num_layers}, nnz={self.total_nnz})"
        )

"""Simulated server instances (AWS EC2 analogue).

The paper compares FSD-Inference against two server-based provisioning
patterns (Section VI-B):

* **Server-Always-On** -- large instances left running between queries and
  billed around the clock; queries dispatch immediately but the model may
  have to be loaded from block storage ("hot") or object storage ("cold").
* **Server-Job-Scoped** -- an appropriately sized instance is booted for each
  request and shut down afterwards; billing covers only the job duration but
  every query pays the instance start-up delay (minutes).

The VM abstraction models instance specs (vCPU / memory), start-up latency,
compute throughput and hourly billing; the baseline logic that uses it lives
in ``repro.baselines.server``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .billing import SERVICE_VM, BillingLedger
from .errors import InvalidRequestError, ResourceNotFoundError
from .pricing import EC2_INSTANCE_SPECS, PriceBook
from .timing import LatencyModel, VirtualClock

__all__ = ["InstanceSpec", "VirtualMachine", "VMService"]


@dataclass(frozen=True)
class InstanceSpec:
    """Hardware shape of a server instance type."""

    instance_type: str
    vcpus: int
    memory_gib: float

    @classmethod
    def for_type(cls, instance_type: str) -> "InstanceSpec":
        try:
            spec = EC2_INSTANCE_SPECS[instance_type]
        except KeyError:
            raise InvalidRequestError(f"unknown instance type '{instance_type}'") from None
        return cls(
            instance_type=instance_type,
            vcpus=int(spec["vcpus"]),
            memory_gib=float(spec["memory_gib"]),
        )

    @property
    def memory_bytes(self) -> float:
        return self.memory_gib * 1024 ** 3


class VirtualMachine:
    """A single server instance with its own virtual clock."""

    def __init__(
        self,
        name: str,
        spec: InstanceSpec,
        ledger: BillingLedger,
        latency: LatencyModel,
        prices: PriceBook,
        always_on: bool,
    ):
        self.name = name
        self.spec = spec
        self._ledger = ledger
        self._latency = latency
        self._prices = prices
        self.always_on = always_on
        self.clock = VirtualClock()
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None

    # -- lifecycle ----------------------------------------------------------------

    def start(self, at_time: float = 0.0) -> float:
        """Boot the instance; returns the time at which it is ready for work.

        Always-on instances are assumed to already be running, so only a
        dispatch delay applies; job-scoped instances pay the full provisioning
        and boot delay.
        """
        self.clock = VirtualClock(at_time)
        if self.always_on:
            self.clock.advance(self._latency.vm_always_on_dispatch_seconds)
        else:
            self.clock.advance(self._latency.vm_job_scoped_startup_seconds)
        self.started_at = at_time
        self.stopped_at = None
        return self.clock.now

    def stop(self) -> float:
        """Shut the instance down and bill the elapsed duration."""
        if self.started_at is None:
            raise InvalidRequestError(f"instance '{self.name}' was never started")
        self.stopped_at = self.clock.now
        duration = self.stopped_at - self.started_at
        self._bill_duration(duration, self.stopped_at)
        return duration

    def bill_always_on_period(self, hours: float, timestamp: float = 0.0) -> float:
        """Bill a standing always-on period (e.g. 24 hours) regardless of usage."""
        if hours < 0:
            raise InvalidRequestError("cannot bill a negative number of hours")
        cost = hours * self._prices.vm_hourly_price(self.spec.instance_type)
        self._ledger.record(
            service=SERVICE_VM,
            operation="instance_hours",
            resource=f"{self.name}:{self.spec.instance_type}",
            quantity=hours,
            cost=cost,
            timestamp=timestamp,
        )
        return cost

    def _bill_duration(self, seconds: float, timestamp: float) -> float:
        hours = seconds / 3600.0
        return self.bill_always_on_period(hours, timestamp)

    # -- work ------------------------------------------------------------------------

    def run_compute(self, flops: float, vcpus: Optional[int] = None) -> float:
        """Advance the clock by the time to execute ``flops`` on this instance."""
        used = vcpus if vcpus is not None else self.spec.vcpus
        used = min(used, self.spec.vcpus)
        duration = self._latency.vm_compute(flops, used)
        self.clock.advance(duration)
        return duration

    def load_from_block(self, size_bytes: int) -> float:
        """Advance the clock by the time to read ``size_bytes`` from block storage."""
        duration = self._latency.block_read(size_bytes)
        self.clock.advance(duration)
        return duration

    def load_from_object_storage(self, size_bytes: int) -> float:
        """Advance the clock by the time to fetch ``size_bytes`` from object storage."""
        duration = self._latency.object_get(size_bytes) + size_bytes / self._latency.faas_storage_bandwidth_bps
        self.clock.advance(duration)
        return duration

    def hourly_price(self) -> float:
        return self._prices.vm_hourly_price(self.spec.instance_type)

    def fits_in_memory(self, required_bytes: float) -> bool:
        return required_bytes <= self.spec.memory_bytes


class VMService:
    """Account-level instance registry (the EC2 control plane)."""

    def __init__(self, ledger: BillingLedger, latency: LatencyModel, prices: PriceBook):
        self._ledger = ledger
        self._latency = latency
        self._prices = prices
        self._instances: Dict[str, VirtualMachine] = {}
        self._next_id = 0

    def launch(self, instance_type: str, always_on: bool = False, name: Optional[str] = None) -> VirtualMachine:
        spec = InstanceSpec.for_type(instance_type)
        if name is None:
            name = f"i-{self._next_id:06d}"
            self._next_id += 1
        vm = VirtualMachine(name, spec, self._ledger, self._latency, self._prices, always_on)
        self._instances[name] = vm
        return vm

    def get(self, name: str) -> VirtualMachine:
        try:
            return self._instances[name]
        except KeyError:
            raise ResourceNotFoundError(f"instance '{name}' does not exist") from None

    def list_instances(self) -> List[str]:
        return sorted(self._instances)

    def __contains__(self, name: str) -> bool:
        return name in self._instances

"""Simulated Function-as-a-Service platform (AWS Lambda analogue).

The FaaS platform provides the compute substrate for every FSD-Inference
variant.  The simulation reproduces the Lambda characteristics that shape the
paper's design and cost model:

* configurable memory between 128 MB and 10 240 MB, with vCPU share
  proportional to memory (1 vCPU per 1 769 MB, ~5.8 vCPUs at the maximum);
* a hard maximum runtime (15 minutes) after which the invocation fails;
* cold starts on the first use of an execution environment, warm starts when
  an environment is reused;
* per-invocation and per-GB-second billing;
* no direct instance-to-instance communication -- workers must use the
  pub/sub, queue or object-storage services for IPC.

Execution environments are tracked per function as a pool of *freed-at*
timestamps.  By default (``warm_keepalive_seconds=None``) any previously
finished environment can be reused regardless of timing -- the historical
single-query behaviour where every run restarts its private timeline at
``t=0``.  When a keepalive is configured (as the serving layer does), the
cold/warm decision becomes causal on the shared timeline: an environment is
reusable only if it was freed *before* the new request arrives and the idle
gap does not exceed the keepalive, which is what makes warm-start behaviour
under sporadic daily workloads meaningful.

Invocations are represented by :class:`FunctionInvocation` objects that own a
virtual clock and expose accounting helpers (``charge_compute``,
``account_memory``).  Handlers that fit a simple call/return pattern (the
coordinator, the serial variant, the managed-endpoint baseline) can be run
directly through :meth:`FaaSPlatform.invoke`; the distributed engine instead
drives worker invocations phase by phase so that cross-worker message
causality is preserved (see ``repro.core.worker``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .billing import SERVICE_FAAS, BillingLedger
from .errors import (
    ConcurrencyLimitError,
    FunctionPreemptedError,
    FunctionTimeoutError,
    InvalidRequestError,
    OutOfMemoryError,
    ResourceAlreadyExistsError,
    ResourceNotFoundError,
)
from .contention import ContentionDomain
from .faults import FaultDomain
from .pricing import PriceBook
from .telemetry import TelemetryDomain
from .timing import LatencyModel, VirtualClock

__all__ = [
    "FunctionConfig",
    "FunctionInvocation",
    "FaaSPlatform",
    "claim_from_pool",
    "MIN_MEMORY_MB",
    "MAX_MEMORY_MB",
    "MAX_TIMEOUT_SECONDS",
    "MEMORY_MB_PER_VCPU",
]

#: Smallest configurable Lambda memory size.
MIN_MEMORY_MB = 128
#: Largest configurable Lambda memory size.
MAX_MEMORY_MB = 10240
#: Maximum configurable function timeout (15 minutes).
MAX_TIMEOUT_SECONDS = 15 * 60
#: Lambda allocates one vCPU per this much memory.
MEMORY_MB_PER_VCPU = 1769.0


@dataclass(frozen=True)
class FunctionConfig:
    """Deployment-time configuration of a FaaS function."""

    name: str
    memory_mb: int = 1024
    timeout_seconds: float = MAX_TIMEOUT_SECONDS
    #: size of the deployment package / model artefacts loaded at cold start,
    #: used only to make cold starts of heavier functions slightly slower.
    package_mb: float = 50.0

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidRequestError("function name cannot be empty")
        if not MIN_MEMORY_MB <= self.memory_mb <= MAX_MEMORY_MB:
            raise InvalidRequestError(
                f"memory_mb must be between {MIN_MEMORY_MB} and {MAX_MEMORY_MB}, "
                f"got {self.memory_mb}"
            )
        if not 1 <= self.timeout_seconds <= MAX_TIMEOUT_SECONDS:
            raise InvalidRequestError(
                f"timeout_seconds must be between 1 and {MAX_TIMEOUT_SECONDS}, "
                f"got {self.timeout_seconds}"
            )

    @property
    def vcpus(self) -> float:
        """Fractional vCPU share allocated to each invocation."""
        return self.memory_mb / MEMORY_MB_PER_VCPU


class FunctionInvocation:
    """One running execution of a FaaS function.

    The invocation owns a :class:`VirtualClock` started at the moment user
    code begins executing (i.e. after invoke latency and cold/warm start).
    The engine advances this clock through the accounting helpers; calling
    :meth:`finish` closes the invocation, enforces the runtime limit and
    records the compute charges.
    """

    def __init__(
        self,
        config: FunctionConfig,
        platform: "FaaSPlatform",
        started_at: float,
        cold: bool,
        invocation_id: int,
    ):
        self.config = config
        self._platform = platform
        self.started_at = started_at
        self.cold = cold
        self.invocation_id = invocation_id
        self.clock = VirtualClock(started_at)
        self.peak_memory_mb = 0.0
        self.finished = False
        self.failed_reason: Optional[str] = None
        self._finish_time: Optional[float] = None

    # -- identity ------------------------------------------------------------

    @property
    def function_name(self) -> str:
        return self.config.name

    @property
    def vcpus(self) -> float:
        return self.config.vcpus

    # -- accounting helpers ------------------------------------------------------

    def charge_compute(self, flops: float) -> float:
        """Advance the clock by the time to execute ``flops`` on this function."""
        duration = self._platform.latency.faas_compute(flops, self.vcpus)
        self.clock.advance(duration)
        return duration

    def charge_duration(self, seconds: float) -> float:
        """Advance the clock by an explicit duration (serialisation, local I/O)."""
        self.clock.advance(seconds)
        return seconds

    def account_memory(self, bytes_resident: float) -> None:
        """Track peak memory and fail the invocation if it exceeds the limit."""
        mb = bytes_resident / (1024.0 * 1024.0)
        self.peak_memory_mb = max(self.peak_memory_mb, mb)
        if self.peak_memory_mb > self.config.memory_mb:
            self.failed_reason = "out_of_memory"
            raise OutOfMemoryError(self.config.name, self.peak_memory_mb, self.config.memory_mb)

    @property
    def runtime_seconds(self) -> float:
        """Elapsed runtime so far (or total runtime once finished)."""
        end = self._finish_time if self._finish_time is not None else self.clock.now
        return end - self.started_at

    def check_timeout(self) -> None:
        """Fail the invocation if it has already exceeded its runtime limit."""
        if self.runtime_seconds > self.config.timeout_seconds:
            self.failed_reason = "timeout"
            raise FunctionTimeoutError(
                self.config.name, self.runtime_seconds, self.config.timeout_seconds
            )

    def finish(self, enforce_timeout: bool = True) -> float:
        """Close the invocation, bill it, and return its total runtime."""
        if self.finished:
            return self.runtime_seconds
        injector = self._platform.faults.injector
        if injector is not None and enforce_timeout and self.failed_reason is None:
            kill_time = injector.preemption_kill_time(
                self.function_name, self.started_at, self.clock.now
            )
            if kill_time is not None:
                # The environment was reclaimed mid-run: bill only up to the
                # kill time and never return it to the warm pool.
                self.failed_reason = "preempted"
                self.finished = True
                self._finish_time = kill_time
                self._platform._record_invocation(self)
                raise FunctionPreemptedError(self.function_name, kill_time)
        self.finished = True
        self._finish_time = self.clock.now
        self._platform._record_invocation(self)
        if enforce_timeout and self.runtime_seconds > self.config.timeout_seconds:
            self.failed_reason = "timeout"
            raise FunctionTimeoutError(
                self.config.name, self.runtime_seconds, self.config.timeout_seconds
            )
        return self.runtime_seconds


def claim_from_pool(
    pool: List[float], request_time: float, keepalive: Optional[float]
) -> bool:
    """Take one idle execution environment from ``pool``, if the timeline allows.

    The platform's warm-claim rule, factored out so the serving layer's
    replay cache can re-run recorded claim patterns against pool *copies*:
    with no keepalive any previously freed environment is reusable (legacy
    private-timeline rule); with a keepalive, expired entries are evicted in
    place and the most recently freed qualifying environment is claimed
    (LIFO, as real FaaS platforms reuse).
    """
    if not pool:
        return False
    if keepalive is None:
        pool.pop()
        return True
    pool[:] = [freed_at for freed_at in pool if request_time - freed_at <= keepalive]
    best = -1
    for index, freed_at in enumerate(pool):
        if freed_at <= request_time and (best < 0 or freed_at > pool[best]):
            best = index
    if best < 0:
        return False
    pool.pop(best)
    return True


@dataclass
class InvocationRecord:
    """Summary of a completed invocation, kept for reporting and tests."""

    function_name: str
    invocation_id: int
    started_at: float
    finished_at: float
    runtime_seconds: float
    memory_mb: int
    cold: bool
    gb_seconds: float
    cost: float
    failed_reason: Optional[str] = None


class FaaSPlatform:
    """The account-level FaaS control plane."""

    def __init__(
        self,
        ledger: BillingLedger,
        latency: LatencyModel,
        prices: PriceBook,
        concurrency_limit: int = 1000,
        warm_keepalive_seconds: Optional[float] = None,
        faults: Optional[FaultDomain] = None,
        telemetry: Optional[TelemetryDomain] = None,
        contention: Optional[ContentionDomain] = None,
    ):
        self.ledger = ledger
        self.latency = latency
        self.prices = prices
        self.faults = faults or FaultDomain()
        self.telemetry = telemetry or TelemetryDomain()
        self.contention = contention or ContentionDomain()
        self.concurrency_limit = concurrency_limit
        #: None keeps the legacy timeless reuse rule; a number makes warm
        #: reuse depend on the idle gap between invocations (shared timeline).
        self.warm_keepalive_seconds = warm_keepalive_seconds
        self._functions: Dict[str, FunctionConfig] = {}
        self._handlers: Dict[str, Callable[..., Any]] = {}
        #: per function: freed-at timestamps of idle execution environments.
        self._warm_environments: Dict[str, List[float]] = {}
        self._active_invocations = 0
        self._next_invocation_id = 0
        self.invocation_records: List[InvocationRecord] = []
        #: when set (by the serving replay cache), every warm-pool claim and
        #: free is appended as an event tuple so outcomes can be replayed.
        self.replay_log: Optional[List[tuple]] = None

    # -- control plane ---------------------------------------------------------

    def create_function(
        self,
        config: FunctionConfig,
        handler: Optional[Callable[..., Any]] = None,
    ) -> FunctionConfig:
        if config.name in self._functions:
            raise ResourceAlreadyExistsError(f"function '{config.name}' already exists")
        self._functions[config.name] = config
        if handler is not None:
            self._handlers[config.name] = handler
        self._warm_environments[config.name] = []
        return config

    def get_function(self, name: str) -> FunctionConfig:
        try:
            return self._functions[name]
        except KeyError:
            raise ResourceNotFoundError(f"function '{name}' does not exist") from None

    def delete_function(self, name: str) -> None:
        if name not in self._functions:
            raise ResourceNotFoundError(f"function '{name}' does not exist")
        del self._functions[name]
        self._handlers.pop(name, None)
        self._warm_environments.pop(name, None)

    def list_functions(self) -> List[str]:
        return sorted(self._functions)

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    # -- data plane -----------------------------------------------------------------

    def start_invocation(
        self,
        name: str,
        invoker_clock: Optional[VirtualClock] = None,
        at_time: Optional[float] = None,
        force_cold: Optional[bool] = None,
    ) -> FunctionInvocation:
        """Begin an asynchronous invocation of function ``name``.

        ``invoker_clock`` (when given) is advanced by the invoke API latency,
        matching a parent worker or coordinator that spends time issuing the
        request.  The new invocation starts after the invoke latency plus a
        cold or warm start.
        """
        config = self.get_function(name)
        if self._active_invocations >= self.concurrency_limit:
            raise ConcurrencyLimitError(
                f"account concurrency limit of {self.concurrency_limit} reached"
            )

        if invoker_clock is not None:
            invoker_clock.advance(self.latency.faas_invoke())
            request_time = invoker_clock.now
        elif at_time is not None:
            request_time = at_time
        else:
            request_time = 0.0

        injector = self.faults.injector
        if injector is not None:
            # May flush warm pools (deploy storms) or raise a retryable
            # preemption/transient error before any environment is claimed.
            injector.on_faas_request(self, name, request_time)

        tracer = self.telemetry.tracer
        if tracer is not None:
            tracer.channel_op("faas", "invoke", name, request_time)
            # Pre-claim occupancy: what a request arriving now could reuse.
            tracer.gauge_sample(
                f"faas.warm_pool.{name}",
                self.warm_environment_count(name, request_time),
                request_time,
            )

        if force_cold is None:
            cold = not self._claim_warm_environment(name, request_time)
        else:
            cold = force_cold
            if not cold:
                self._claim_warm_environment(name, request_time)
        if self.replay_log is not None:
            self.replay_log.append(("claim", name, request_time, cold))

        startup = self.latency.faas_startup(cold, config.memory_mb + config.package_mb)
        invocation = FunctionInvocation(
            config=config,
            platform=self,
            started_at=request_time + startup,
            cold=cold,
            invocation_id=self._next_invocation_id,
        )
        self._next_invocation_id += 1
        self._active_invocations += 1
        return invocation

    def invoke(
        self,
        name: str,
        payload: Any = None,
        invoker_clock: Optional[VirtualClock] = None,
        at_time: Optional[float] = None,
    ) -> Any:
        """Synchronously run the registered handler of function ``name``.

        The handler receives ``(invocation, payload)`` and its return value is
        passed through.  This is the simple request/response path used by the
        coordinator, the serial variant and the managed-endpoint baseline.
        """
        if name not in self._handlers:
            raise ResourceNotFoundError(f"function '{name}' has no registered handler")
        invocation = self.start_invocation(name, invoker_clock=invoker_clock, at_time=at_time)
        try:
            result = self._handlers[name](invocation, payload)
        except Exception:
            if not invocation.finished:
                invocation.finish(enforce_timeout=False)
            raise
        invocation.finish()
        return result

    def _claim_warm_environment(self, name: str, request_time: float) -> bool:
        """Take one idle execution environment, if the timeline allows it.

        With no keepalive configured, any previously finished environment is
        reusable (the legacy private-timeline rule).  With a keepalive, an
        environment qualifies only when it was freed at or before
        ``request_time`` and has idled no longer than the keepalive; expired
        entries are evicted and the most recently freed qualifying
        environment is claimed (LIFO, as real FaaS platforms reuse).
        """
        pool = self._warm_environments.get(name)
        if pool is None:
            return False
        return claim_from_pool(pool, request_time, self.warm_keepalive_seconds)

    # -- bookkeeping ------------------------------------------------------------------

    def _record_invocation(self, invocation: FunctionInvocation) -> None:
        # A preempted invocation ends at its kill time (earlier than the
        # clock) and its reclaimed environment never rejoins the warm pool.
        ended_at = (
            invocation._finish_time
            if invocation._finish_time is not None
            else invocation.clock.now
        )
        tracer = self.telemetry.tracer
        if tracer is not None:
            tracer.record_span(
                "invocation",
                track=f"faas:{invocation.function_name}",
                start=invocation.started_at,
                end=ended_at,
                invocation_id=invocation.invocation_id,
                cold=invocation.cold,
                failed_reason=invocation.failed_reason,
            )
            tracer.counter_add(
                "faas.cold_starts" if invocation.cold else "faas.warm_starts",
                1.0,
                ended_at,
            )
        arbiter = self.contention.arbiter
        if arbiter is not None:
            arbiter.invocation(invocation.function_name, invocation.started_at, ended_at)
        self._active_invocations = max(0, self._active_invocations - 1)
        if invocation.failed_reason != "preempted":
            self._warm_environments.setdefault(invocation.function_name, []).append(
                ended_at
            )
            if self.replay_log is not None:
                self.replay_log.append(("free", invocation.function_name, ended_at))
        gb_seconds = (invocation.config.memory_mb / 1024.0) * invocation.runtime_seconds
        cost = (
            self.prices.faas_price_per_invocation
            + gb_seconds * self.prices.faas_price_per_gb_second
        )
        self.ledger.record(
            service=SERVICE_FAAS,
            operation="invocation",
            resource=invocation.function_name,
            quantity=1,
            cost=self.prices.faas_price_per_invocation,
            timestamp=ended_at,
        )
        self.ledger.record(
            service=SERVICE_FAAS,
            operation="gb_seconds",
            resource=invocation.function_name,
            quantity=gb_seconds,
            cost=gb_seconds * self.prices.faas_price_per_gb_second,
            timestamp=ended_at,
        )
        self.invocation_records.append(
            InvocationRecord(
                function_name=invocation.function_name,
                invocation_id=invocation.invocation_id,
                started_at=invocation.started_at,
                finished_at=ended_at,
                runtime_seconds=invocation.runtime_seconds,
                memory_mb=invocation.config.memory_mb,
                cold=invocation.cold,
                gb_seconds=gb_seconds,
                cost=cost,
                failed_reason=invocation.failed_reason,
            )
        )

    @property
    def active_invocations(self) -> int:
        return self._active_invocations

    def flush_warm_pools(self) -> None:
        """Discard every idle execution environment (a simulated deploy).

        The next invocation of every function pays a cold start -- the
        cold-start storm that follows a rolling redeploy of the fleet.
        """
        for pool in self._warm_environments.values():
            pool.clear()

    def abandon_active_invocations(self, active_before: int) -> None:
        """Forget invocations started after an ``active_invocations`` snapshot.

        Recovery hook for the serving layer: when a dispatch dies mid-flight
        (e.g. a worker invocation is preempted before the engine could finish
        its siblings), the invocations it started would otherwise hold
        concurrency slots forever.  Clamping back to the pre-dispatch count
        releases them without touching anything billed so far.
        """
        self._active_invocations = min(self._active_invocations, max(0, active_before))

    def warm_environment_count(self, name: str, at_time: Optional[float] = None) -> int:
        """Idle environments of ``name``; with ``at_time``, only those a
        request arriving then could actually reuse under the keepalive rule."""
        pool = self._warm_environments.get(name, [])
        if at_time is None or self.warm_keepalive_seconds is None:
            return len(pool)
        keepalive = self.warm_keepalive_seconds
        return sum(1 for freed_at in pool if freed_at <= at_time and at_time - freed_at <= keepalive)

"""Simulated publish/subscribe service (AWS SNS analogue).

FSD-Inf-Queue publishes intermediate-result messages to a small pool of
topics; each topic fans the messages out to per-worker queues according to
*filter policies* on message attributes, so the resource-constrained FaaS
workers never see messages that are not addressed to them (Section III-A).

The simulation reproduces the SNS behaviours the algorithm and cost model
depend on:

* a publish batch carries at most :data:`MAX_PUBLISH_BATCH` messages and at
  most :data:`MAX_PUBLISH_BYTES` of payload in total;
* publishes are billed in 64 KB increments (a full 256 KB batch costs four
  billed requests);
* bytes delivered from the topic to queues are billed per byte;
* delivery is asynchronous: delivered messages become visible in the target
  queue only after the fan-out delivery latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from .billing import SERVICE_PUBSUB, BillingLedger
from .errors import (
    BatchTooLargeError,
    InvalidRequestError,
    PayloadTooLargeError,
    ResourceAlreadyExistsError,
    ResourceNotFoundError,
)
from .contention import ContentionDomain
from .faults import FaultDomain
from .pricing import PriceBook
from .queues import AttributeValue, Queue, QueueMessage
from .telemetry import TelemetryDomain
from .timing import LatencyModel, VirtualClock

__all__ = [
    "FilterPolicy",
    "Subscription",
    "Topic",
    "PubSubService",
    "MAX_PUBLISH_BATCH",
    "MAX_PUBLISH_BYTES",
]

#: SNS PublishBatch accepts at most 10 messages per call.
MAX_PUBLISH_BATCH = 10
#: Total payload limit of one publish batch (256 KB).
MAX_PUBLISH_BYTES = 256 * 1024


@dataclass(frozen=True)
class FilterPolicy:
    """An attribute-equality filter policy.

    A message matches when, for every key in ``conditions``, the message has
    that attribute and its value is one of the allowed values.  This captures
    the subset of SNS filter-policy semantics FSD-Inference needs (exact
    matching on the target-worker attribute).
    """

    conditions: Mapping[str, Sequence[AttributeValue]]

    def matches(self, attributes: Mapping[str, AttributeValue]) -> bool:
        for key, allowed in self.conditions.items():
            if key not in attributes:
                return False
            if attributes[key] not in allowed:
                return False
        return True


@dataclass
class Subscription:
    """A queue subscribed to a topic, optionally guarded by a filter policy."""

    queue: Queue
    filter_policy: Optional[FilterPolicy] = None

    def accepts(self, attributes: Mapping[str, AttributeValue]) -> bool:
        if self.filter_policy is None:
            return True
        return self.filter_policy.matches(attributes)


class Topic:
    """A pub/sub topic with filtered fan-out to subscribed queues."""

    def __init__(
        self,
        name: str,
        ledger: BillingLedger,
        latency: LatencyModel,
        prices: PriceBook,
        faults: Optional[FaultDomain] = None,
        telemetry: Optional[TelemetryDomain] = None,
        contention: Optional[ContentionDomain] = None,
    ):
        self.name = name
        self._ledger = ledger
        self._latency = latency
        self._prices = prices
        self._faults = faults or FaultDomain()
        self._telemetry = telemetry or TelemetryDomain()
        self._contention = contention or ContentionDomain()
        self._subscriptions: List[Subscription] = []
        self.total_publish_calls = 0
        self.total_messages_published = 0
        self.total_bytes_delivered = 0

    # -- subscription management -------------------------------------------------

    def subscribe(self, queue: Queue, filter_policy: Optional[FilterPolicy] = None) -> Subscription:
        subscription = Subscription(queue=queue, filter_policy=filter_policy)
        self._subscriptions.append(subscription)
        return subscription

    @property
    def subscriptions(self) -> List[Subscription]:
        return list(self._subscriptions)

    # -- publishing ----------------------------------------------------------------

    def publish_batch(self, messages: Sequence[QueueMessage], clock: VirtualClock) -> int:
        """Publish up to 10 messages in one API call.

        Advances the caller's clock by the publish latency, bills the publish
        (in 64 KB increments) and the delivered bytes, and delivers matching
        messages to subscribed queues with the fan-out delivery latency.

        Returns the number of queue deliveries performed.
        """
        if not messages:
            raise InvalidRequestError("publish batch cannot be empty")
        if len(messages) > MAX_PUBLISH_BATCH:
            raise BatchTooLargeError(len(messages), MAX_PUBLISH_BATCH, "pubsub")
        payload_bytes = sum(m.size_bytes for m in messages)
        if payload_bytes > MAX_PUBLISH_BYTES:
            raise PayloadTooLargeError(payload_bytes, MAX_PUBLISH_BYTES, "pubsub")

        duration = self._latency.pubsub_publish(payload_bytes)
        clock.advance(duration)
        injector = self._faults.injector
        if injector is not None:
            injector.check("pubsub", "publish", self.name, clock.now)
        tracer = self._telemetry.tracer
        if tracer is not None:
            tracer.channel_op(
                "pubsub", "publish", self.name, clock.now,
                messages=len(messages), bytes=payload_bytes,
            )
        arbiter = self._contention.arbiter
        if arbiter is not None:
            arbiter.channel_op("pubsub", "publish", self.name, clock.now, duration)
        self.total_publish_calls += 1
        self.total_messages_published += len(messages)

        billed_requests = self._prices.pubsub_billed_requests(payload_bytes)
        self._ledger.record(
            service=SERVICE_PUBSUB,
            operation="publish",
            resource=self.name,
            quantity=billed_requests,
            cost=billed_requests * self._prices.pubsub_price_per_publish,
            timestamp=clock.now,
        )

        deliveries = 0
        delivered_bytes = 0
        delivery_time = clock.now + self._latency.pubsub_delivery()
        for message in messages:
            for subscription in self._subscriptions:
                if not subscription.accepts(message.attributes):
                    continue
                delivered = QueueMessage(
                    body=message.body,
                    attributes=dict(message.attributes),
                    available_at=delivery_time,
                )
                subscription.queue.deliver(delivered)
                deliveries += 1
                delivered_bytes += message.size_bytes

        if delivered_bytes:
            self.total_bytes_delivered += delivered_bytes
            self._ledger.record(
                service=SERVICE_PUBSUB,
                operation="delivery_bytes",
                resource=self.name,
                quantity=delivered_bytes,
                cost=delivered_bytes * self._prices.pubsub_price_per_byte_delivered,
                timestamp=delivery_time,
            )
        return deliveries

    def publish(self, message: QueueMessage, clock: VirtualClock) -> int:
        """Publish a single message (convenience wrapper over publish_batch)."""
        return self.publish_batch([message], clock)


class PubSubService:
    """Account-level topic registry (the SNS control plane)."""

    def __init__(
        self,
        ledger: BillingLedger,
        latency: LatencyModel,
        prices: PriceBook,
        faults: Optional[FaultDomain] = None,
        telemetry: Optional[TelemetryDomain] = None,
        contention: Optional[ContentionDomain] = None,
    ):
        self._ledger = ledger
        self._latency = latency
        self._prices = prices
        self._faults = faults or FaultDomain()
        self._telemetry = telemetry or TelemetryDomain()
        self._contention = contention or ContentionDomain()
        self._topics: Dict[str, Topic] = {}

    def create_topic(self, name: str) -> Topic:
        if name in self._topics:
            raise ResourceAlreadyExistsError(f"topic '{name}' already exists")
        topic = Topic(
            name,
            self._ledger,
            self._latency,
            self._prices,
            faults=self._faults,
            telemetry=self._telemetry,
            contention=self._contention,
        )
        self._topics[name] = topic
        return topic

    def get_topic(self, name: str) -> Topic:
        try:
            return self._topics[name]
        except KeyError:
            raise ResourceNotFoundError(f"topic '{name}' does not exist") from None

    def get_or_create_topic(self, name: str) -> Topic:
        if name in self._topics:
            return self._topics[name]
        return self.create_topic(name)

    def delete_topic(self, name: str) -> None:
        if name not in self._topics:
            raise ResourceNotFoundError(f"topic '{name}' does not exist")
        del self._topics[name]

    def list_topics(self) -> List[str]:
        return sorted(self._topics)

    def __contains__(self, name: str) -> bool:
        return name in self._topics

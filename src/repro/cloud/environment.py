"""The :class:`CloudEnvironment` -- one object bundling every simulated service.

A ``CloudEnvironment`` is the reproduction's stand-in for "an AWS account in
one region".  It owns a single billing ledger, a latency model and a price
book, and exposes the individual services (FaaS, pub/sub, queues, object
storage, block storage, VMs) wired to them.  Everything in the library --
the FSD-Inference engine, the baselines, the cost-model validator -- receives
a ``CloudEnvironment`` rather than constructing services itself, which keeps
experiments hermetic and lets tests assert on exactly the usage one run
generated.
"""

from __future__ import annotations

from typing import Optional

from .billing import BillingLedger, CostReport
from .blockstore import BlockStorageService
from .contention import ContentionDomain
from .faas import FaaSPlatform
from .faults import FaultDomain
from .objectstore import ObjectStorageService
from .pricing import PriceBook
from .pubsub import PubSubService
from .queues import QueueService
from .telemetry import TelemetryDomain
from .timing import LatencyModel
from .vm import VMService

__all__ = ["CloudEnvironment"]


class CloudEnvironment:
    """A self-contained simulated cloud region.

    Args:
        latency: latency/throughput model shared by every service.  Defaults
            to :class:`LatencyModel` with AWS-like constants.
        prices: price book shared by every service.  Defaults to AWS-like
            prices (us-east-1, late 2023).
        faas_concurrency_limit: account-wide concurrent FaaS execution limit.
        faas_warm_keepalive_seconds: how long an idle FaaS execution
            environment stays reusable on a shared timeline.  ``None`` keeps
            the legacy timeless reuse rule (single-query experiments); the
            serving layer sets a finite keepalive so cold/warm starts depend
            on the wall-clock gaps between invocations.
    """

    def __init__(
        self,
        latency: Optional[LatencyModel] = None,
        prices: Optional[PriceBook] = None,
        faas_concurrency_limit: int = 1000,
        faas_warm_keepalive_seconds: Optional[float] = None,
    ):
        self.latency = latency or LatencyModel()
        self.prices = prices or PriceBook()
        #: one telemetry domain shared by every service: installing a tracer
        #: here arms all instrumentation points of this environment.
        self.telemetry = TelemetryDomain()
        self.ledger = BillingLedger(self.prices, telemetry=self.telemetry)
        #: one fault domain shared by every service: installing a chaos
        #: injector here arms all interception points of this environment.
        self.faults = FaultDomain()
        #: one contention domain shared by the four channel services:
        #: installing the concurrency engine's op collector here arms all
        #: contention instrumentation points of this environment.
        self.contention = ContentionDomain()
        self.faas = FaaSPlatform(
            self.ledger,
            self.latency,
            self.prices,
            concurrency_limit=faas_concurrency_limit,
            warm_keepalive_seconds=faas_warm_keepalive_seconds,
            faults=self.faults,
            telemetry=self.telemetry,
            contention=self.contention,
        )
        self.pubsub = PubSubService(
            self.ledger,
            self.latency,
            self.prices,
            faults=self.faults,
            telemetry=self.telemetry,
            contention=self.contention,
        )
        self.queues = QueueService(
            self.ledger,
            self.latency,
            self.prices,
            faults=self.faults,
            telemetry=self.telemetry,
            contention=self.contention,
        )
        self.object_storage = ObjectStorageService(
            self.ledger,
            self.latency,
            self.prices,
            faults=self.faults,
            telemetry=self.telemetry,
            contention=self.contention,
        )
        self.block_storage = BlockStorageService(
            self.ledger, self.latency, self.prices, faults=self.faults, telemetry=self.telemetry
        )
        self.vms = VMService(self.ledger, self.latency, self.prices)

    # -- chaos ---------------------------------------------------------------------

    def install_chaos(self, injector, channel_retry=None) -> None:
        """Arm every fault-injection interception point of this environment."""
        self.faults.install(injector, channel_retry)

    def clear_chaos(self) -> None:
        """Disarm fault injection (back to the fault-free substrate)."""
        self.faults.clear()

    # -- telemetry -----------------------------------------------------------------

    def install_telemetry(self, tracer) -> None:
        """Arm every telemetry instrumentation point of this environment."""
        self.telemetry.install(tracer)

    def clear_telemetry(self) -> None:
        """Disarm telemetry (back to the untraced substrate)."""
        self.telemetry.clear()

    # -- contention ----------------------------------------------------------------

    def install_contention(self, arbiter) -> None:
        """Arm every contention instrumentation point of this environment."""
        self.contention.install(arbiter)

    def clear_contention(self) -> None:
        """Disarm contention collection (back to the uncollected substrate)."""
        self.contention.clear()

    # -- convenience ---------------------------------------------------------------

    def cost_report(self) -> CostReport:
        """Aggregate cost report over everything billed in this environment."""
        return self.ledger.report()

    def reset_billing(self) -> None:
        """Clear the ledger (between benchmark repetitions)."""
        self.ledger.reset()

    def billing_checkpoint(self) -> int:
        """Marker usable with :meth:`report_since` to scope one experiment's cost."""
        return self.ledger.checkpoint()

    def report_since(self, checkpoint: int) -> CostReport:
        return self.ledger.report_since(checkpoint)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CloudEnvironment(functions={len(self.faas.list_functions())}, "
            f"topics={len(self.pubsub.list_topics())}, "
            f"queues={len(self.queues.list_queues())}, "
            f"buckets={len(self.object_storage.list_buckets())}, "
            f"billed_records={len(self.ledger)})"
        )

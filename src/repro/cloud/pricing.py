"""Price book for the simulated cloud services.

The defaults mirror publicly documented AWS prices (us-east-1, late 2023),
which is what the paper's cost model (Section IV) is parameterised with:

* Lambda:   $0.20 per million requests, $0.0000166667 per GB-second.
* SNS:      $0.50 per million publish requests (billed in 64 KB increments),
            $0.09 per GB transferred from SNS to SQS.
* SQS:      $0.40 per million API requests (send / receive / delete).
* S3:       $0.005 per 1000 PUT/LIST requests, $0.0004 per 1000 GET requests.
* EC2:      on-demand hourly prices for the c5 instances used as baselines.
* EBS gp3:  $0.08 per GB-month.
* SageMaker Serverless Inference: $0.000020 per GB-second plus a per-request
  charge comparable to Lambda's.

All prices are exposed as plain fields so what-if analyses (e.g. "what if GET
requests were 10x cheaper?") only need a modified :class:`PriceBook`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = ["PriceBook", "EC2_HOURLY_PRICES"]


#: On-demand hourly price (USD) of the EC2 instance types used by the paper's
#: server-based baselines.
EC2_HOURLY_PRICES: Dict[str, float] = {
    "c5.large": 0.085,
    "c5.xlarge": 0.17,
    "c5.2xlarge": 0.34,
    "c5.4xlarge": 0.68,
    "c5.9xlarge": 1.53,
    "c5.12xlarge": 2.04,
    "c5.18xlarge": 3.06,
    "c5.24xlarge": 4.08,
}

#: vCPU and memory (GiB) of the same instance types.
EC2_INSTANCE_SPECS: Dict[str, Dict[str, float]] = {
    "c5.large": {"vcpus": 2, "memory_gib": 4},
    "c5.xlarge": {"vcpus": 4, "memory_gib": 8},
    "c5.2xlarge": {"vcpus": 8, "memory_gib": 16},
    "c5.4xlarge": {"vcpus": 16, "memory_gib": 32},
    "c5.9xlarge": {"vcpus": 36, "memory_gib": 72},
    "c5.12xlarge": {"vcpus": 48, "memory_gib": 96},
    "c5.18xlarge": {"vcpus": 72, "memory_gib": 144},
    "c5.24xlarge": {"vcpus": 96, "memory_gib": 192},
}


@dataclass(frozen=True)
class PriceBook:
    """Unit prices used by the billing ledger and by the analytical cost model."""

    # --- FaaS (Lambda) ----------------------------------------------------
    faas_price_per_invocation: float = 0.20 / 1e6
    faas_price_per_gb_second: float = 0.0000166667

    # --- Pub/sub (SNS) ------------------------------------------------------
    pubsub_price_per_publish: float = 0.50 / 1e6
    #: publishes are billed in chunks of this many bytes (64 KB).
    pubsub_billing_increment_bytes: int = 64 * 1024
    pubsub_price_per_byte_delivered: float = 0.09 / (1024 ** 3)

    # --- Queues (SQS) --------------------------------------------------------
    queue_price_per_request: float = 0.40 / 1e6
    #: SQS requests are also billed in 64 KB chunks.
    queue_billing_increment_bytes: int = 64 * 1024

    # --- Object storage (S3) -------------------------------------------------
    object_price_per_put: float = 0.005 / 1000
    object_price_per_get: float = 0.0004 / 1000
    object_price_per_list: float = 0.005 / 1000
    object_price_per_gb_month: float = 0.023

    # --- Block storage (EBS gp3) ----------------------------------------------
    block_price_per_gb_month: float = 0.08

    # --- Server VMs (EC2) -------------------------------------------------------
    vm_hourly_prices: Dict[str, float] = field(default_factory=lambda: dict(EC2_HOURLY_PRICES))

    # --- Managed serverless endpoint (SageMaker Serverless) ---------------------
    endpoint_price_per_gb_second: float = 0.000020
    endpoint_price_per_invocation: float = 0.20 / 1e6

    def vm_hourly_price(self, instance_type: str) -> float:
        """Hourly on-demand price for ``instance_type``.

        Raises ``KeyError`` for unknown instance types, which is deliberate:
        silently pricing an unknown machine at $0 would corrupt every
        cost-comparison experiment downstream.
        """
        return self.vm_hourly_prices[instance_type]

    def pubsub_billed_requests(self, payload_bytes: int) -> int:
        """Number of billed publish requests for one publish of ``payload_bytes``.

        SNS bills each 64 KB chunk of a publish as a separate request, so a
        single 256 KB publish-batch counts as four billed requests (Section
        IV-A1 of the paper).
        """
        if payload_bytes <= 0:
            return 1
        increment = self.pubsub_billing_increment_bytes
        return max(1, -(-payload_bytes // increment))

    def queue_billed_requests(self, payload_bytes: int) -> int:
        """Number of billed queue requests for a payload of ``payload_bytes``."""
        if payload_bytes <= 0:
            return 1
        increment = self.queue_billing_increment_bytes
        return max(1, -(-payload_bytes // increment))

    def with_overrides(self, **overrides: float) -> "PriceBook":
        """Return a copy of the price book with selected fields replaced."""
        return replace(self, **overrides)

"""Per-environment mount point for the telemetry layer's tracer.

The exact analogue of :class:`repro.cloud.faults.FaultDomain`: the cloud
services know nothing about how traces are recorded or exported -- that
lives in :mod:`repro.telemetry`.  What they share is one
:class:`TelemetryDomain` per :class:`~repro.cloud.CloudEnvironment`: a
tiny mutable holder every service (and every queue/topic/bucket/volume it
creates) keeps a reference to.  Installing a tracer on the domain arms
every instrumentation point of that environment at once; clearing it
disarms them.

With nothing installed (the default) every hook is a single attribute
check that takes the no-op branch, so a telemetry-off run executes the
exact same service code -- and produces the exact same clocks, bills and
fingerprints -- as before the telemetry layer existed.  detlint's DET008
enforces the gate shape (``if tracer is not None`` before any state
mutation) the same way DET005 does for the chaos injector.

The tracer itself is duck-typed (any object with ``channel_op``,
``counter_add`` and ``gauge_sample``); the canonical implementation is
:class:`repro.telemetry.Tracer`.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["TelemetryDomain"]


class TelemetryDomain:
    """Mutable tracer mount point shared by every service of one environment."""

    __slots__ = ("tracer",)

    def __init__(self) -> None:
        self.tracer: Optional[Any] = None

    def install(self, tracer: Any) -> None:
        """Arm every instrumentation point of this environment."""
        self.tracer = tracer

    def clear(self) -> None:
        """Disarm all instrumentation points (back to untraced behaviour)."""
        self.tracer = None

    @property
    def armed(self) -> bool:
        return self.tracer is not None

"""Simulated message queue service (AWS SQS analogue).

FSD-Inf-Queue gives every FaaS worker a dedicated queue which it polls for
intermediate results (Algorithm 1 in the paper).  The simulation reproduces
the SQS behaviours the algorithm and cost model rely on:

* at most :data:`MAX_RECEIVE_BATCH` messages are returned per receive call;
* the maximum message payload is :data:`MAX_MESSAGE_BYTES` (256 KB);
* *short polling* (wait time 0) returns immediately, and may legitimately
  return nothing even when a message is in flight;
* *long polling* waits up to ``wait_seconds`` for a message to become
  available before returning empty-handed;
* every API call (send, receive, delete) is billed per request.

Messages become visible to consumers only after their ``available_at``
timestamp, which is how delivery latency from the pub/sub fan-out is
propagated into the receiver's virtual clock.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Union

from .billing import SERVICE_QUEUE, BillingLedger
from .errors import (
    BatchTooLargeError,
    InvalidRequestError,
    PayloadTooLargeError,
    ResourceAlreadyExistsError,
    ResourceNotFoundError,
)
from .contention import ContentionDomain
from .faults import FaultDomain
from .pricing import PriceBook
from .telemetry import TelemetryDomain
from .timing import LatencyModel, VirtualClock

__all__ = ["QueueMessage", "Queue", "QueueService", "MAX_RECEIVE_BATCH", "MAX_MESSAGE_BYTES"]

#: SQS returns at most 10 messages per ReceiveMessage call.
MAX_RECEIVE_BATCH = 10
#: Maximum SQS message payload (256 KB).
MAX_MESSAGE_BYTES = 256 * 1024
#: Maximum long-poll wait time supported by SQS.
MAX_WAIT_SECONDS = 20.0

_message_ids = itertools.count()

AttributeValue = Union[str, int, float]


@dataclass
class QueueMessage:
    """A message stored in a queue.

    ``available_at`` is the virtual time at which the message becomes visible
    to consumers; ``attributes`` carries the metadata FSD-Inference uses for
    routing and reassembly (source worker, layer index, chunk counts).
    """

    body: bytes
    attributes: Dict[str, AttributeValue] = field(default_factory=dict)
    available_at: float = 0.0
    message_id: str = field(default_factory=lambda: f"msg-{next(_message_ids)}")

    @property
    def size_bytes(self) -> int:
        return len(self.body)


class Queue:
    """A single FIFO-ish queue with visibility timestamps."""

    def __init__(
        self,
        name: str,
        ledger: BillingLedger,
        latency: LatencyModel,
        prices: PriceBook,
        faults: Optional[FaultDomain] = None,
        telemetry: Optional[TelemetryDomain] = None,
        contention: Optional[ContentionDomain] = None,
    ):
        self.name = name
        self._ledger = ledger
        self._latency = latency
        self._prices = prices
        self._faults = faults or FaultDomain()
        self._telemetry = telemetry or TelemetryDomain()
        self._contention = contention or ContentionDomain()
        self._messages: List[QueueMessage] = []
        self.total_messages_received = 0
        self.total_api_calls = 0

    # -- internals -------------------------------------------------------------

    def _bill(self, operation: str, payload_bytes: int, timestamp: float) -> None:
        requests = self._prices.queue_billed_requests(payload_bytes)
        cost = requests * self._prices.queue_price_per_request
        self.total_api_calls += requests
        self._ledger.record(
            service=SERVICE_QUEUE,
            operation=operation,
            resource=self.name,
            quantity=requests,
            cost=cost,
            timestamp=timestamp,
        )

    def _validate_message(self, message: QueueMessage) -> None:
        if message.size_bytes > MAX_MESSAGE_BYTES:
            raise PayloadTooLargeError(message.size_bytes, MAX_MESSAGE_BYTES, "queue")

    # -- producer API ------------------------------------------------------------

    def send(self, message: QueueMessage, clock: VirtualClock) -> None:
        """Send one message directly to the queue (bypassing any pub/sub topic)."""
        self._validate_message(message)
        duration = self._latency.queue_send(message.size_bytes)
        clock.advance(duration)
        injector = self._faults.injector
        if injector is not None:
            injector.check("queue", "send", self.name, clock.now)
        tracer = self._telemetry.tracer
        if tracer is not None:
            tracer.channel_op("queue", "send", self.name, clock.now, bytes=message.size_bytes)
            # +1: the message is appended just below, on the same timestamp.
            tracer.gauge_sample(f"queue.depth.{self.name}", len(self._messages) + 1, clock.now)
        arbiter = self._contention.arbiter
        if arbiter is not None:
            arbiter.channel_op("queue", "send", self.name, clock.now, duration)
        message.available_at = max(message.available_at, clock.now)
        self._messages.append(message)
        self._bill("send", message.size_bytes, clock.now)

    def deliver(self, message: QueueMessage) -> None:
        """Deliver a message on behalf of the pub/sub service (no queue billing).

        The caller (the topic) is responsible for setting ``available_at`` and
        for recording its own delivery charges; SQS does not bill the
        SNS-to-SQS hop.
        """
        self._validate_message(message)
        self._messages.append(message)

    # -- consumer API ------------------------------------------------------------

    def receive(
        self,
        clock: VirtualClock,
        max_messages: int = MAX_RECEIVE_BATCH,
        wait_seconds: float = 0.0,
    ) -> List[QueueMessage]:
        """Poll the queue, advancing the caller's clock.

        ``wait_seconds == 0`` is *short polling*: the call returns after the
        receive round trip regardless of whether messages were visible.
        ``wait_seconds > 0`` is *long polling*: if nothing is visible, the
        clock advances until either a message becomes visible or the wait
        expires.
        """
        if not 1 <= max_messages <= MAX_RECEIVE_BATCH:
            raise InvalidRequestError(
                f"max_messages must be between 1 and {MAX_RECEIVE_BATCH}, got {max_messages}"
            )
        if wait_seconds < 0 or wait_seconds > MAX_WAIT_SECONDS:
            raise InvalidRequestError(
                f"wait_seconds must be between 0 and {MAX_WAIT_SECONDS}, got {wait_seconds}"
            )

        duration = self._latency.queue_receive()
        clock.advance(duration)
        injector = self._faults.injector
        if injector is not None:
            injector.check("queue", "receive", self.name, clock.now)
        tracer = self._telemetry.tracer
        if tracer is not None:
            tracer.channel_op("queue", "receive", self.name, clock.now)
        arbiter = self._contention.arbiter
        if arbiter is not None:
            arbiter.channel_op("queue", "receive", self.name, clock.now, duration)
        visible = self._visible_messages(clock.now)

        if not visible and wait_seconds > 0:
            next_available = self._next_available_time()
            if next_available is not None and next_available <= clock.now + wait_seconds:
                clock.advance_to(next_available)
                visible = self._visible_messages(clock.now)
            else:
                clock.advance(wait_seconds)
                visible = self._visible_messages(clock.now)

        batch = visible[:max_messages]
        payload_bytes = sum(m.size_bytes for m in batch)
        self._bill("receive", payload_bytes, clock.now)
        self.total_messages_received += len(batch)
        for message in batch:
            self._messages.remove(message)
        if tracer is not None:
            tracer.gauge_sample(f"queue.depth.{self.name}", len(self._messages), clock.now)
        return batch

    def delete_batch(self, messages: Iterable[QueueMessage], clock: VirtualClock) -> None:
        """Acknowledge a batch of received messages (one billed API call)."""
        messages = list(messages)
        if not messages:
            return
        if len(messages) > MAX_RECEIVE_BATCH:
            raise BatchTooLargeError(len(messages), MAX_RECEIVE_BATCH, "queue")
        clock.advance(self._latency.queue_delete())
        tracer = self._telemetry.tracer
        if tracer is not None:
            tracer.channel_op("queue", "delete", self.name, clock.now, count=len(messages))
        self._bill("delete", 0, clock.now)

    # -- inspection ---------------------------------------------------------------

    def _visible_messages(self, now: float) -> List[QueueMessage]:
        return sorted(
            (m for m in self._messages if m.available_at <= now),
            key=lambda m: (m.available_at, m.message_id),
        )

    def _next_available_time(self) -> Optional[float]:
        if not self._messages:
            return None
        return min(m.available_at for m in self._messages)

    @property
    def depth(self) -> int:
        """Number of messages currently stored (visible or in flight)."""
        return len(self._messages)

    def purge(self) -> None:
        self._messages.clear()


class QueueService:
    """Account-level queue registry (the SQS control plane)."""

    def __init__(
        self,
        ledger: BillingLedger,
        latency: LatencyModel,
        prices: PriceBook,
        faults: Optional[FaultDomain] = None,
        telemetry: Optional[TelemetryDomain] = None,
        contention: Optional[ContentionDomain] = None,
    ):
        self._ledger = ledger
        self._latency = latency
        self._prices = prices
        self._faults = faults or FaultDomain()
        self._telemetry = telemetry or TelemetryDomain()
        self._contention = contention or ContentionDomain()
        self._queues: Dict[str, Queue] = {}

    def create_queue(self, name: str) -> Queue:
        if name in self._queues:
            raise ResourceAlreadyExistsError(f"queue '{name}' already exists")
        queue = Queue(
            name,
            self._ledger,
            self._latency,
            self._prices,
            faults=self._faults,
            telemetry=self._telemetry,
            contention=self._contention,
        )
        self._queues[name] = queue
        return queue

    def get_queue(self, name: str) -> Queue:
        try:
            return self._queues[name]
        except KeyError:
            raise ResourceNotFoundError(f"queue '{name}' does not exist") from None

    def get_or_create_queue(self, name: str) -> Queue:
        if name in self._queues:
            return self._queues[name]
        return self.create_queue(name)

    def delete_queue(self, name: str) -> None:
        if name not in self._queues:
            raise ResourceNotFoundError(f"queue '{name}' does not exist")
        del self._queues[name]

    def list_queues(self) -> List[str]:
        return sorted(self._queues)

    def __contains__(self, name: str) -> bool:
        return name in self._queues

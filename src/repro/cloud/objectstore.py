"""Simulated object storage service (AWS S3 analogue).

FSD-Inf-Object uses object storage as its inter-worker communication channel
(Algorithm 2): a sender PUTs one ``.dat`` (or empty ``.nul``) object per
target per layer, and receivers repeatedly LIST their own prefix and GET the
objects addressed to them.  Object storage is also where model partitions and
inference inputs live, for every variant.

The simulation reproduces the behaviours the algorithm and the cost model
rely on:

* PUT, GET and LIST requests are billed per request, independent of object
  size (Section IV-A2 of the paper);
* data transfer between object storage and FaaS functions is free;
* objects become visible to LIST/GET only after the writer's PUT completed
  (plus its transfer time), which is how the receiver's polling loop observes
  sender progress;
* per-bucket and per-prefix organisation, so the engine's multi-bucket layout
  (``bucket-{n % B}``) can spread API load exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .billing import SERVICE_OBJECT, BillingLedger
from .errors import (
    InvalidRequestError,
    ResourceAlreadyExistsError,
    ResourceNotFoundError,
)
from .contention import ContentionDomain
from .faults import FaultDomain
from .pricing import PriceBook
from .telemetry import TelemetryDomain
from .timing import LatencyModel, VirtualClock

__all__ = ["StoredObject", "ObjectHandle", "Bucket", "ObjectStorageService"]


@dataclass
class StoredObject:
    """An immutable object plus the virtual time from which it is visible."""

    key: str
    data: bytes
    visible_at: float

    @property
    def size_bytes(self) -> int:
        return len(self.data)


@dataclass(frozen=True)
class ObjectHandle:
    """A lightweight listing entry (what a LIST call returns)."""

    bucket: str
    key: str
    size_bytes: int


class Bucket:
    """A single object storage bucket."""

    def __init__(
        self,
        name: str,
        ledger: BillingLedger,
        latency: LatencyModel,
        prices: PriceBook,
        faults: Optional[FaultDomain] = None,
        telemetry: Optional[TelemetryDomain] = None,
        contention: Optional[ContentionDomain] = None,
    ):
        self.name = name
        self._ledger = ledger
        self._latency = latency
        self._prices = prices
        self._faults = faults or FaultDomain()
        self._telemetry = telemetry or TelemetryDomain()
        self._contention = contention or ContentionDomain()
        self._objects: Dict[str, StoredObject] = {}
        self.total_put_requests = 0
        self.total_get_requests = 0
        self.total_list_requests = 0
        self.total_bytes_written = 0
        self.total_bytes_read = 0

    # -- billing helpers -----------------------------------------------------

    def _bill(self, operation: str, cost: float, timestamp: float, quantity: float = 1.0) -> None:
        self._ledger.record(
            service=SERVICE_OBJECT,
            operation=operation,
            resource=self.name,
            quantity=quantity,
            cost=cost,
            timestamp=timestamp,
        )

    # -- data plane --------------------------------------------------------------

    def put_object(self, key: str, data: bytes, clock: VirtualClock) -> ObjectHandle:
        """Write (or overwrite) an object; bills one PUT request."""
        if not key:
            raise InvalidRequestError("object key cannot be empty")
        duration = self._latency.object_put(len(data))
        clock.advance(duration)
        injector = self._faults.injector
        if injector is not None:
            injector.check("object", "put", self.name, clock.now)
        tracer = self._telemetry.tracer
        if tracer is not None:
            tracer.channel_op("object", "put", self.name, clock.now, bytes=len(data))
        arbiter = self._contention.arbiter
        if arbiter is not None:
            arbiter.channel_op("object", "put", self.name, clock.now, duration)
        self._objects[key] = StoredObject(key=key, data=bytes(data), visible_at=clock.now)
        self.total_put_requests += 1
        self.total_bytes_written += len(data)
        self._bill("put", self._prices.object_price_per_put, clock.now)
        return ObjectHandle(bucket=self.name, key=key, size_bytes=len(data))

    def preload_object(self, key: str, data: bytes) -> ObjectHandle:
        """Stage an object that existed *before* the simulated run started.

        Used for offline artefacts (trained models, pre-computed partitions,
        buffered inference inputs): the object is immediately visible at
        virtual time zero and its upload is neither timed nor billed, exactly
        like data that was placed in object storage ahead of the experiment.
        Reads of the object are still timed and billed normally.
        """
        if not key:
            raise InvalidRequestError("object key cannot be empty")
        self._objects[key] = StoredObject(key=key, data=bytes(data), visible_at=0.0)
        return ObjectHandle(bucket=self.name, key=key, size_bytes=len(data))

    def get_object(self, key: str, clock: VirtualClock) -> bytes:
        """Read an object; bills one GET request.

        Raises :class:`ResourceNotFoundError` when the key does not exist or
        is not yet visible at the caller's current virtual time.
        """
        # The tracer gate sits before the injector block: the fault branches
        # below mutate request counters, and the DET008 contract requires
        # every instance mutation to happen after the telemetry decision.
        # The op is stamped at request-issue time (pre-advance) accordingly.
        tracer = self._telemetry.tracer
        if tracer is not None:
            tracer.channel_op("object", "get", self.name, clock.now)
        # Same DET009 discipline: the arbiter gate precedes the mutating
        # branches below, so the transfer span is computed from a pure probe
        # of the store (visibility uses the same pre-advance clock as the
        # 404 check).  Chaos and concurrency are mutually exclusive, so the
        # injector's fault path never runs while the arbiter is armed.
        arbiter = self._contention.arbiter
        if arbiter is not None:
            probe = self._objects.get(key)
            visible = probe is not None and probe.visible_at <= clock.now
            duration = self._latency.object_get(probe.size_bytes if visible else 0)
            arbiter.channel_op("object", "get", self.name, clock.now + duration, duration)
        injector = self._faults.injector
        if injector is not None:
            try:
                injector.check("object", "get", self.name, clock.now)
            except Exception:
                # Like a 404, a transiently failed GET still takes the round
                # trip and is billed as one request.
                clock.advance(self._latency.object_get(0))
                self.total_get_requests += 1
                self._bill("get", self._prices.object_price_per_get, clock.now)
                raise
        obj = self._objects.get(key)
        if obj is None or obj.visible_at > clock.now:
            # The failed request still costs a GET, exactly as S3 bills 404s.
            clock.advance(self._latency.object_get(0))
            self.total_get_requests += 1
            self._bill("get", self._prices.object_price_per_get, clock.now)
            raise ResourceNotFoundError(f"object '{key}' not found in bucket '{self.name}'")
        clock.advance(self._latency.object_get(obj.size_bytes))
        self.total_get_requests += 1
        self.total_bytes_read += obj.size_bytes
        self._bill("get", self._prices.object_price_per_get, clock.now)
        return obj.data

    def list_objects(self, prefix: str, clock: VirtualClock) -> List[ObjectHandle]:
        """List visible objects under ``prefix``; bills one LIST request."""
        duration = self._latency.object_list()
        clock.advance(duration)
        tracer = self._telemetry.tracer
        if tracer is not None:
            tracer.channel_op("object", "list", self.name, clock.now)
        arbiter = self._contention.arbiter
        if arbiter is not None:
            arbiter.channel_op("object", "list", self.name, clock.now, duration)
        self.total_list_requests += 1
        self._bill("list", self._prices.object_price_per_list, clock.now)
        handles = [
            ObjectHandle(bucket=self.name, key=obj.key, size_bytes=obj.size_bytes)
            for obj in self._objects.values()
            if obj.key.startswith(prefix) and obj.visible_at <= clock.now
        ]
        return sorted(handles, key=lambda h: h.key)

    def delete_object(self, key: str, clock: VirtualClock) -> None:
        """Delete an object (DELETE requests are free on S3, so no billing)."""
        if key in self._objects:
            del self._objects[key]

    def delete_prefix(self, prefix: str) -> int:
        """Administratively remove every object under ``prefix`` (cleanup helper)."""
        doomed = [key for key in self._objects if key.startswith(prefix)]
        for key in doomed:
            del self._objects[key]
        return len(doomed)

    # -- inspection ----------------------------------------------------------------

    def object_exists(self, key: str) -> bool:
        return key in self._objects

    def object_size(self, key: str) -> int:
        obj = self._objects.get(key)
        if obj is None:
            raise ResourceNotFoundError(f"object '{key}' not found in bucket '{self.name}'")
        return obj.size_bytes

    @property
    def object_count(self) -> int:
        return len(self._objects)

    @property
    def total_stored_bytes(self) -> int:
        return sum(obj.size_bytes for obj in self._objects.values())


class ObjectStorageService:
    """Account-level bucket registry (the S3 control plane)."""

    def __init__(
        self,
        ledger: BillingLedger,
        latency: LatencyModel,
        prices: PriceBook,
        faults: Optional[FaultDomain] = None,
        telemetry: Optional[TelemetryDomain] = None,
        contention: Optional[ContentionDomain] = None,
    ):
        self._ledger = ledger
        self._latency = latency
        self._prices = prices
        self._faults = faults or FaultDomain()
        self._telemetry = telemetry or TelemetryDomain()
        self._contention = contention or ContentionDomain()
        self._buckets: Dict[str, Bucket] = {}

    def create_bucket(self, name: str) -> Bucket:
        if name in self._buckets:
            raise ResourceAlreadyExistsError(f"bucket '{name}' already exists")
        bucket = Bucket(
            name,
            self._ledger,
            self._latency,
            self._prices,
            faults=self._faults,
            telemetry=self._telemetry,
            contention=self._contention,
        )
        self._buckets[name] = bucket
        return bucket

    def get_bucket(self, name: str) -> Bucket:
        try:
            return self._buckets[name]
        except KeyError:
            raise ResourceNotFoundError(f"bucket '{name}' does not exist") from None

    def get_or_create_bucket(self, name: str) -> Bucket:
        if name in self._buckets:
            return self._buckets[name]
        return self.create_bucket(name)

    def delete_bucket(self, name: str) -> None:
        if name not in self._buckets:
            raise ResourceNotFoundError(f"bucket '{name}' does not exist")
        del self._buckets[name]

    def list_buckets(self) -> List[str]:
        return sorted(self._buckets)

    def __contains__(self, name: str) -> bool:
        return name in self._buckets

"""Per-environment mount point for the chaos layer's fault injector.

The cloud services know nothing about how faults are planned or generated --
that lives in :mod:`repro.chaos`.  What they share is one
:class:`FaultDomain` per :class:`~repro.cloud.CloudEnvironment`: a tiny
mutable holder every service (and every queue/topic/bucket/volume it
creates) keeps a reference to.  Installing an injector on the domain arms
every interception point of that environment at once; clearing it disarms
them.

With nothing installed (the default) every hook is a single attribute check
that takes the no-op branch, so a chaos-off run executes the exact same
service code -- and produces the exact same clocks, bills and fingerprints
-- as before the chaos layer existed.

The injector itself is duck-typed (any object with ``check``,
``on_faas_request`` and ``preemption_kill_time``); the canonical
implementation is :class:`repro.chaos.FaultInjector`.  ``channel_retry``
carries the communication layer's transient-retry policy (see
:class:`repro.chaos.RetryPolicy`) to the channels, which look it up through
their cloud's domain.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["FaultDomain"]


class FaultDomain:
    """Mutable chaos mount point shared by every service of one environment."""

    __slots__ = ("injector", "channel_retry")

    def __init__(self) -> None:
        self.injector: Optional[Any] = None
        self.channel_retry: Optional[Any] = None

    def install(self, injector: Any, channel_retry: Optional[Any] = None) -> None:
        """Arm every interception point of this environment."""
        self.injector = injector
        self.channel_retry = channel_retry

    def clear(self) -> None:
        """Disarm all interception points (back to fault-free behaviour)."""
        self.injector = None
        self.channel_retry = None

    @property
    def armed(self) -> bool:
        return self.injector is not None

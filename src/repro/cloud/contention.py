"""Per-environment mount point for the concurrency engine's op collector.

The exact analogue of :class:`~repro.cloud.telemetry.TelemetryDomain` and
:class:`~repro.cloud.faults.FaultDomain`: the cloud services know nothing
about interleaving or fair sharing -- that lives in
:mod:`repro.concurrency`.  What they share is one :class:`ContentionDomain`
per :class:`~repro.cloud.CloudEnvironment`: a tiny mutable holder every
service (and every queue/topic/bucket it creates) keeps a reference to.
The interleaved serve loop installs an op collector around each unit's
solo execution; every channel op and FaaS invocation then reports its
``(resource, start, end)`` span so the fair-share arbiter can stretch
overlapping timelines afterwards.

With nothing installed (the default -- and always, for the serialized
loop) every hook is a single attribute check that takes the no-op branch,
so a contention-off run executes the exact same service code -- and
produces the exact same clocks, bills and fingerprints -- as before the
concurrency engine existed.  detlint's DET009 enforces the gate shape
(``if arbiter is not None`` before any state mutation) the same way
DET005 does for the chaos injector and DET008 for the tracer.

The collector is duck-typed (any object with ``channel_op`` and
``invocation``); the canonical implementation lives in
:mod:`repro.concurrency.interleave`.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["ContentionDomain"]


class ContentionDomain:
    """Mutable op-collector mount shared by every service of one environment."""

    __slots__ = ("arbiter",)

    def __init__(self) -> None:
        self.arbiter: Optional[Any] = None

    def install(self, arbiter: Any) -> None:
        """Arm every contention instrumentation point of this environment."""
        self.arbiter = arbiter

    def clear(self) -> None:
        """Disarm all contention points (back to uncollected behaviour)."""
        self.arbiter = None

    @property
    def armed(self) -> bool:
        return self.arbiter is not None

"""Simulated block storage service (AWS EBS analogue).

Only the server-based baselines use block storage: the Server-Always-On
"hot"/"cold" model-residency experiment (Section VI-C2) assumes that
recently used models are staged on a block volume attached to the instance,
while colder models must be fetched from object storage.  The block volume
therefore only needs to model sequential read bandwidth and a monthly
capacity charge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .billing import SERVICE_BLOCK, BillingLedger
from .errors import InvalidRequestError, ResourceAlreadyExistsError, ResourceNotFoundError
from .faults import FaultDomain
from .pricing import PriceBook
from .telemetry import TelemetryDomain
from .timing import LatencyModel, VirtualClock

__all__ = ["BlockVolume", "BlockStorageService"]

_SECONDS_PER_MONTH = 30 * 24 * 3600.0


class BlockVolume:
    """A provisioned block volume with a fixed capacity."""

    def __init__(
        self,
        name: str,
        size_gb: float,
        ledger: BillingLedger,
        latency: LatencyModel,
        prices: PriceBook,
        faults: Optional[FaultDomain] = None,
        telemetry: Optional[TelemetryDomain] = None,
    ):
        if size_gb <= 0:
            raise InvalidRequestError("volume size must be positive")
        self.name = name
        self.size_gb = float(size_gb)
        self._ledger = ledger
        self._latency = latency
        self._prices = prices
        self._faults = faults or FaultDomain()
        self._telemetry = telemetry or TelemetryDomain()
        self.total_bytes_read = 0

    def read(self, size_bytes: int, clock: VirtualClock) -> float:
        """Advance the caller's clock by the time to read ``size_bytes``."""
        if size_bytes < 0:
            raise InvalidRequestError("cannot read a negative number of bytes")
        duration = self._latency.block_read(size_bytes)
        clock.advance(duration)
        injector = self._faults.injector
        if injector is not None:
            injector.check("block", "read", self.name, clock.now)
        tracer = self._telemetry.tracer
        if tracer is not None:
            tracer.channel_op("block", "read", self.name, clock.now, bytes=size_bytes)
        self.total_bytes_read += size_bytes
        return duration

    def monthly_cost(self) -> float:
        """Monthly capacity charge for this volume."""
        return self.size_gb * self._prices.block_price_per_gb_month

    def charge_for_duration(self, seconds: float, timestamp: float) -> float:
        """Record the prorated capacity charge for keeping the volume for ``seconds``."""
        if seconds < 0:
            raise InvalidRequestError("cannot charge for a negative duration")
        cost = self.monthly_cost() * (seconds / _SECONDS_PER_MONTH)
        self._ledger.record(
            service=SERVICE_BLOCK,
            operation="gb_month",
            resource=self.name,
            quantity=self.size_gb * (seconds / _SECONDS_PER_MONTH),
            cost=cost,
            timestamp=timestamp,
        )
        return cost


class BlockStorageService:
    """Account-level volume registry."""

    def __init__(
        self,
        ledger: BillingLedger,
        latency: LatencyModel,
        prices: PriceBook,
        faults: Optional[FaultDomain] = None,
        telemetry: Optional[TelemetryDomain] = None,
    ):
        self._ledger = ledger
        self._latency = latency
        self._prices = prices
        self._faults = faults or FaultDomain()
        self._telemetry = telemetry or TelemetryDomain()
        self._volumes: Dict[str, BlockVolume] = {}

    def create_volume(self, name: str, size_gb: float) -> BlockVolume:
        if name in self._volumes:
            raise ResourceAlreadyExistsError(f"volume '{name}' already exists")
        volume = BlockVolume(
            name,
            size_gb,
            self._ledger,
            self._latency,
            self._prices,
            faults=self._faults,
            telemetry=self._telemetry,
        )
        self._volumes[name] = volume
        return volume

    def get_volume(self, name: str) -> BlockVolume:
        try:
            return self._volumes[name]
        except KeyError:
            raise ResourceNotFoundError(f"volume '{name}' does not exist") from None

    def list_volumes(self) -> List[str]:
        return sorted(self._volumes)

    def __contains__(self, name: str) -> bool:
        return name in self._volumes

"""Simulated serverless cloud substrate for the FSD-Inference reproduction.

The package provides in-process, virtually-timed equivalents of the AWS
services the paper builds on: Lambda (``faas``), SNS (``pubsub``), SQS
(``queues``), S3 (``objectstore``), EBS (``blockstore``), EC2 (``vm``), and a
metering ledger playing the role of the Cost & Usage report (``billing``).

Use :class:`repro.cloud.CloudEnvironment` as the single entry point.
"""

from .billing import (
    BillingLedger,
    CostReport,
    UsageRecord,
    SERVICE_BLOCK,
    SERVICE_ENDPOINT,
    SERVICE_FAAS,
    SERVICE_OBJECT,
    SERVICE_PUBSUB,
    SERVICE_QUEUE,
    SERVICE_VM,
)
from .blockstore import BlockStorageService, BlockVolume
from .environment import CloudEnvironment
from .errors import (
    AccessDeniedError,
    BatchTooLargeError,
    CloudError,
    ConcurrencyLimitError,
    FunctionPreemptedError,
    FunctionTimeoutError,
    InvalidRequestError,
    OutOfMemoryError,
    PayloadTooLargeError,
    ResourceAlreadyExistsError,
    ResourceNotFoundError,
    ServiceQuotaExceededError,
    ThrottlingError,
    TransientServiceError,
)
from .faults import FaultDomain
from .faas import (
    FaaSPlatform,
    FunctionConfig,
    FunctionInvocation,
    MAX_MEMORY_MB,
    MAX_TIMEOUT_SECONDS,
    MEMORY_MB_PER_VCPU,
    MIN_MEMORY_MB,
)
from .objectstore import Bucket, ObjectHandle, ObjectStorageService, StoredObject
from .pricing import EC2_HOURLY_PRICES, EC2_INSTANCE_SPECS, PriceBook
from .pubsub import (
    FilterPolicy,
    MAX_PUBLISH_BATCH,
    MAX_PUBLISH_BYTES,
    PubSubService,
    Subscription,
    Topic,
)
from .queues import (
    MAX_MESSAGE_BYTES,
    MAX_RECEIVE_BATCH,
    Queue,
    QueueMessage,
    QueueService,
)
from .telemetry import TelemetryDomain
from .timing import JitterModel, LatencyModel, VirtualClock, merge_latency_overrides
from .vm import InstanceSpec, VirtualMachine, VMService

__all__ = [
    "CloudEnvironment",
    "BillingLedger",
    "CostReport",
    "UsageRecord",
    "SERVICE_FAAS",
    "SERVICE_PUBSUB",
    "SERVICE_QUEUE",
    "SERVICE_OBJECT",
    "SERVICE_VM",
    "SERVICE_BLOCK",
    "SERVICE_ENDPOINT",
    "BlockStorageService",
    "BlockVolume",
    "CloudError",
    "AccessDeniedError",
    "BatchTooLargeError",
    "ConcurrencyLimitError",
    "FaultDomain",
    "TelemetryDomain",
    "FunctionPreemptedError",
    "FunctionTimeoutError",
    "InvalidRequestError",
    "OutOfMemoryError",
    "PayloadTooLargeError",
    "ResourceAlreadyExistsError",
    "ResourceNotFoundError",
    "ServiceQuotaExceededError",
    "ThrottlingError",
    "TransientServiceError",
    "FaaSPlatform",
    "FunctionConfig",
    "FunctionInvocation",
    "MIN_MEMORY_MB",
    "MAX_MEMORY_MB",
    "MAX_TIMEOUT_SECONDS",
    "MEMORY_MB_PER_VCPU",
    "Bucket",
    "ObjectHandle",
    "ObjectStorageService",
    "StoredObject",
    "PriceBook",
    "EC2_HOURLY_PRICES",
    "EC2_INSTANCE_SPECS",
    "FilterPolicy",
    "PubSubService",
    "Subscription",
    "Topic",
    "MAX_PUBLISH_BATCH",
    "MAX_PUBLISH_BYTES",
    "Queue",
    "QueueMessage",
    "QueueService",
    "MAX_MESSAGE_BYTES",
    "MAX_RECEIVE_BATCH",
    "JitterModel",
    "LatencyModel",
    "VirtualClock",
    "merge_latency_overrides",
    "InstanceSpec",
    "VirtualMachine",
    "VMService",
]

"""Virtual time primitives for the simulated cloud.

The reproduction does not run on real AWS infrastructure, so wall-clock time
would reflect Python interpreter overheads rather than cloud service
behaviour.  Instead, every simulated actor (a FaaS worker, a server VM, an
HPC rank) owns a :class:`VirtualClock`.  Service calls advance the caller's
clock by latencies drawn from a :class:`LatencyModel`, and messages flowing
between actors carry availability timestamps, so causality (a receiver cannot
observe a message before the sender finished publishing it plus the delivery
latency) is preserved without any real sleeping.

The latency model is deterministic by default; optional jitter uses a seeded
``numpy`` generator so that repeated runs produce identical timelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

__all__ = ["VirtualClock", "LatencyModel", "JitterModel"]


class VirtualClock:
    """A monotonically advancing per-actor clock measured in seconds.

    The clock starts at ``start`` (default 0.0).  ``advance`` moves it forward
    by a duration, ``advance_to`` moves it forward to an absolute point (and is
    a no-op when the clock is already past that point), which is exactly the
    semantics of "wait until the message is available".
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError("clock cannot start before time zero")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance a clock by a negative duration ({seconds})")
        self._now += float(seconds)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to ``timestamp`` if it is in the future."""
        if timestamp > self._now:
            self._now = float(timestamp)
        return self._now

    def copy(self) -> "VirtualClock":
        return VirtualClock(self._now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.6f})"


@dataclass
class JitterModel:
    """Optional multiplicative jitter applied to modelled latencies.

    ``spread`` of 0.1 means each latency is multiplied by a factor drawn
    uniformly from [0.9, 1.1].  A spread of 0 disables jitter entirely and is
    the default, keeping timelines bit-for-bit reproducible.
    """

    spread: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.spread < 1.0:
            raise ValueError("jitter spread must be in [0, 1)")
        self._rng = np.random.default_rng(self.seed)

    def apply(self, latency: float) -> float:
        if self.spread == 0.0 or latency == 0.0:
            return latency
        factor = 1.0 + self._rng.uniform(-self.spread, self.spread)
        return latency * factor


@dataclass
class LatencyModel:
    """Latency and throughput constants for every simulated cloud service.

    Values approximate publicly observable behaviour of the corresponding AWS
    services in a single region (us-east-1).  They are deliberately exposed as
    plain dataclass fields so experiments can perform sensitivity sweeps.

    All latencies are in seconds; all bandwidths are in bytes per second.
    """

    # --- FaaS (AWS Lambda analogue) -------------------------------------
    faas_cold_start_seconds: float = 0.35
    faas_warm_start_seconds: float = 0.015
    faas_invoke_api_seconds: float = 0.045
    faas_runtime_init_per_mb_seconds: float = 1.5e-5
    #: effective floating-point throughput of one Lambda vCPU running
    #: numpy/scipy sparse kernels (far below peak hardware FLOPS).
    faas_flops_per_vcpu: float = 6.0e8
    #: download bandwidth from object storage into a function instance.
    faas_storage_bandwidth_bps: float = 180e6

    # --- Pub/sub (SNS analogue) -----------------------------------------
    pubsub_publish_latency_seconds: float = 0.030
    pubsub_publish_per_kb_seconds: float = 2.0e-6
    pubsub_fanout_delivery_seconds: float = 0.055

    # --- Queues (SQS analogue) -------------------------------------------
    queue_receive_rtt_seconds: float = 0.020
    queue_send_rtt_seconds: float = 0.015
    queue_delete_rtt_seconds: float = 0.010
    queue_empty_poll_backoff_seconds: float = 0.050

    # --- Object storage (S3 analogue) ------------------------------------
    object_put_latency_seconds: float = 0.035
    object_get_latency_seconds: float = 0.022
    object_list_latency_seconds: float = 0.030
    object_bandwidth_bps: float = 120e6

    # --- Block storage (EBS analogue) ------------------------------------
    block_read_bandwidth_bps: float = 260e6
    block_read_latency_seconds: float = 0.002

    # --- Server VMs (EC2 analogue) ----------------------------------------
    vm_job_scoped_startup_seconds: float = 150.0
    vm_always_on_dispatch_seconds: float = 0.050
    #: effective per-vCPU throughput for the same sparse kernels on a
    #: compute-optimised server (slightly better than Lambda due to
    #: sustained clocks and absent FaaS virtualisation overheads).
    vm_flops_per_vcpu: float = 7.5e8
    vm_parallel_efficiency: float = 0.72

    # --- HPC baseline (on-premise cluster with MPI) -----------------------
    hpc_flops_per_core: float = 9.0e8
    hpc_cores_per_node: int = 24
    hpc_nodes: int = 4
    hpc_interconnect_bandwidth_bps: float = 10e9
    hpc_interconnect_latency_seconds: float = 5e-6
    hpc_parallel_efficiency: float = 0.85

    # --- Managed serverless endpoint (SageMaker Serverless analogue) ------
    endpoint_overhead_seconds: float = 0.120
    endpoint_flops_per_vcpu: float = 5.5e8

    jitter: JitterModel = field(default_factory=JitterModel)

    def with_jitter(self, spread: float, seed: int = 0) -> "LatencyModel":
        """Return a copy of this model with multiplicative jitter enabled."""
        return replace(self, jitter=JitterModel(spread=spread, seed=seed))

    # -- helpers ------------------------------------------------------------

    def _j(self, latency: float) -> float:
        return self.jitter.apply(latency)

    def faas_startup(self, cold: bool, memory_mb: float) -> float:
        """Time to bring a function instance to the point where user code runs."""
        base = self.faas_cold_start_seconds if cold else self.faas_warm_start_seconds
        init = self.faas_runtime_init_per_mb_seconds * memory_mb if cold else 0.0
        return self._j(base + init)

    def faas_invoke(self) -> float:
        """Time spent by the caller issuing an asynchronous invoke API request."""
        return self._j(self.faas_invoke_api_seconds)

    def faas_compute(self, flops: float, vcpus: float) -> float:
        """Time to execute ``flops`` floating point operations on a function."""
        if flops <= 0:
            return 0.0
        vcpus = max(vcpus, 1e-6)
        return flops / (self.faas_flops_per_vcpu * vcpus)

    def faas_storage_read(self, size_bytes: int) -> float:
        """Time to stream ``size_bytes`` from object storage into a function."""
        return self._j(self.object_get_latency_seconds + size_bytes / self.faas_storage_bandwidth_bps)

    def pubsub_publish(self, payload_bytes: int) -> float:
        """Caller-side latency of one publish(-batch) API call."""
        return self._j(
            self.pubsub_publish_latency_seconds
            + self.pubsub_publish_per_kb_seconds * (payload_bytes / 1024.0)
        )

    def pubsub_delivery(self) -> float:
        """Service-side delay before a published message lands in a queue."""
        return self._j(self.pubsub_fanout_delivery_seconds)

    def queue_receive(self) -> float:
        return self._j(self.queue_receive_rtt_seconds)

    def queue_send(self, payload_bytes: int) -> float:
        return self._j(
            self.queue_send_rtt_seconds + self.pubsub_publish_per_kb_seconds * (payload_bytes / 1024.0)
        )

    def queue_delete(self) -> float:
        return self._j(self.queue_delete_rtt_seconds)

    def object_put(self, size_bytes: int) -> float:
        return self._j(self.object_put_latency_seconds + size_bytes / self.object_bandwidth_bps)

    def object_get(self, size_bytes: int) -> float:
        return self._j(self.object_get_latency_seconds + size_bytes / self.object_bandwidth_bps)

    def object_list(self) -> float:
        return self._j(self.object_list_latency_seconds)

    def block_read(self, size_bytes: int) -> float:
        return self._j(self.block_read_latency_seconds + size_bytes / self.block_read_bandwidth_bps)

    def vm_compute(self, flops: float, vcpus: int) -> float:
        """Time to execute ``flops`` on a server VM using ``vcpus`` cores."""
        if flops <= 0:
            return 0.0
        effective = self.vm_flops_per_vcpu * max(vcpus, 1) * self.vm_parallel_efficiency
        return flops / effective

    def hpc_compute(self, flops: float, ranks: int) -> float:
        if flops <= 0:
            return 0.0
        total_cores = min(ranks, self.hpc_cores_per_node * self.hpc_nodes)
        effective = self.hpc_flops_per_core * max(total_cores, 1) * self.hpc_parallel_efficiency
        return flops / effective

    def hpc_transfer(self, size_bytes: int) -> float:
        return self.hpc_interconnect_latency_seconds + size_bytes / self.hpc_interconnect_bandwidth_bps

    def endpoint_compute(self, flops: float, vcpus: float) -> float:
        if flops <= 0:
            return 0.0
        return flops / (self.endpoint_flops_per_vcpu * max(vcpus, 1e-6))


def merge_latency_overrides(base: Optional[LatencyModel] = None, **overrides: float) -> LatencyModel:
    """Build a :class:`LatencyModel` from ``base`` with selected fields replaced.

    Convenience for experiments that sweep a single latency constant, e.g.
    ``merge_latency_overrides(object_put_latency_seconds=0.1)``.
    """
    base = base or LatencyModel()
    return replace(base, **overrides)

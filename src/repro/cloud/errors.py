"""Exception hierarchy for the simulated cloud substrate.

Every simulated service raises exceptions from this module so that callers
(the FSD-Inference engine, the baselines and the tests) can handle cloud
failures uniformly, mirroring how ``botocore`` exposes a common
``ClientError`` root for AWS SDK errors.
"""

from __future__ import annotations


class CloudError(Exception):
    """Base class for every error raised by the simulated cloud services."""


class ServiceQuotaExceededError(CloudError):
    """A provider-imposed quota (payload size, batch size, rate) was exceeded."""


class ResourceNotFoundError(CloudError):
    """The referenced resource (queue, topic, bucket, function) does not exist."""


class ResourceAlreadyExistsError(CloudError):
    """Attempted to create a resource whose name is already taken."""


class InvalidRequestError(CloudError):
    """The request is malformed (bad parameters, empty batch, etc.)."""


class AccessDeniedError(CloudError):
    """The caller is not permitted to perform the requested operation."""


class FunctionTimeoutError(CloudError):
    """A FaaS invocation exceeded its configured maximum runtime."""

    def __init__(self, function_name: str, runtime_seconds: float, limit_seconds: float):
        self.function_name = function_name
        self.runtime_seconds = runtime_seconds
        self.limit_seconds = limit_seconds
        super().__init__(
            f"function '{function_name}' ran for {runtime_seconds:.1f}s, "
            f"exceeding its {limit_seconds:.1f}s limit"
        )


class OutOfMemoryError(CloudError):
    """A FaaS invocation or endpoint exceeded its configured memory."""

    def __init__(self, function_name: str, required_mb: float, limit_mb: float):
        self.function_name = function_name
        self.required_mb = required_mb
        self.limit_mb = limit_mb
        super().__init__(
            f"function '{function_name}' needs {required_mb:.0f}MB "
            f"but is limited to {limit_mb:.0f}MB"
        )


class PayloadTooLargeError(ServiceQuotaExceededError):
    """A message or request payload exceeded the service's size limit."""

    def __init__(self, size_bytes: int, limit_bytes: int, service: str):
        self.size_bytes = size_bytes
        self.limit_bytes = limit_bytes
        self.service = service
        super().__init__(
            f"{service} payload of {size_bytes} bytes exceeds the "
            f"{limit_bytes} byte limit"
        )


class BatchTooLargeError(ServiceQuotaExceededError):
    """A batch request contained more entries than the service permits."""

    def __init__(self, count: int, limit: int, service: str):
        self.count = count
        self.limit = limit
        self.service = service
        super().__init__(
            f"{service} batch of {count} entries exceeds the {limit} entry limit"
        )


class ThrottlingError(CloudError):
    """The request rate exceeded the provisioned or burst capacity."""


class ConcurrencyLimitError(CloudError):
    """The account-wide FaaS concurrency limit would be exceeded."""

"""Exception hierarchy for the simulated cloud substrate.

Every simulated service raises exceptions from this module so that callers
(the FSD-Inference engine, the baselines and the tests) can handle cloud
failures uniformly, mirroring how ``botocore`` exposes a common
``ClientError`` root for AWS SDK errors.

Every :class:`CloudError` carries three structured fields so that retry
classification never has to string-match on messages:

* ``resource`` -- the queue/topic/bucket/function the failed call addressed
  (``None`` when the failure is not tied to one resource);
* ``operation`` -- the API operation that failed (``"send"``, ``"publish"``,
  ``"invoke"``, ...);
* ``retryable`` -- whether an identical request may succeed if re-issued.
  Transient faults, throttling, preemptions and concurrency rejections are
  retryable; validation errors, quota overruns, timeouts and out-of-memory
  failures are deterministic and are not.  Subclasses set a class-level
  default; individual raises may override it per instance.
"""

from __future__ import annotations

from typing import Optional


class CloudError(Exception):
    """Base class for every error raised by the simulated cloud services."""

    #: class-level default; instances may override via the constructor.
    retryable: bool = False

    def __init__(
        self,
        message: str = "",
        *,
        resource: Optional[str] = None,
        operation: Optional[str] = None,
        retryable: Optional[bool] = None,
    ):
        super().__init__(message)
        self.resource = resource
        self.operation = operation
        if retryable is not None:
            self.retryable = retryable


class ServiceQuotaExceededError(CloudError):
    """A provider-imposed quota (payload size, batch size, rate) was exceeded."""


class ResourceNotFoundError(CloudError):
    """The referenced resource (queue, topic, bucket, function) does not exist."""


class ResourceAlreadyExistsError(CloudError):
    """Attempted to create a resource whose name is already taken."""


class InvalidRequestError(CloudError):
    """The request is malformed (bad parameters, empty batch, etc.)."""


class AccessDeniedError(CloudError):
    """The caller is not permitted to perform the requested operation."""


class FunctionTimeoutError(CloudError):
    """A FaaS invocation exceeded its configured maximum runtime.

    Not retryable: the runtime is a deterministic function of the workload in
    this simulation, so an identical retry would time out identically.
    """

    def __init__(self, function_name: str, runtime_seconds: float, limit_seconds: float):
        self.function_name = function_name
        self.runtime_seconds = runtime_seconds
        self.limit_seconds = limit_seconds
        super().__init__(
            f"function '{function_name}' ran for {runtime_seconds:.1f}s, "
            f"exceeding its {limit_seconds:.1f}s limit",
            resource=function_name,
            operation="invoke",
        )


class OutOfMemoryError(CloudError):
    """A FaaS invocation or endpoint exceeded its configured memory."""

    def __init__(self, function_name: str, required_mb: float, limit_mb: float):
        self.function_name = function_name
        self.required_mb = required_mb
        self.limit_mb = limit_mb
        super().__init__(
            f"function '{function_name}' needs {required_mb:.0f}MB "
            f"but is limited to {limit_mb:.0f}MB",
            resource=function_name,
            operation="invoke",
        )


class PayloadTooLargeError(ServiceQuotaExceededError):
    """A message or request payload exceeded the service's size limit."""

    def __init__(self, size_bytes: int, limit_bytes: int, service: str):
        self.size_bytes = size_bytes
        self.limit_bytes = limit_bytes
        self.service = service
        super().__init__(
            f"{service} payload of {size_bytes} bytes exceeds the "
            f"{limit_bytes} byte limit"
        )


class BatchTooLargeError(ServiceQuotaExceededError):
    """A batch request contained more entries than the service permits."""

    def __init__(self, count: int, limit: int, service: str):
        self.count = count
        self.limit = limit
        self.service = service
        super().__init__(
            f"{service} batch of {count} entries exceeds the {limit} entry limit"
        )


class ThrottlingError(CloudError):
    """The request rate exceeded the provisioned or burst capacity."""

    retryable = True


class ConcurrencyLimitError(CloudError):
    """The account-wide FaaS concurrency limit would be exceeded.

    Retryable: concurrency is freed as running invocations complete, so a
    delayed re-issue of the same request may be admitted.
    """

    retryable = True


class TransientServiceError(CloudError):
    """An injected transient service failure (the chaos layer's 5xx analogue).

    Raised by a service when a :class:`~repro.chaos.FaultInjector` has a
    fault event due for it.  Always retryable: the fault is consumed when it
    fires, so re-issuing the request models the real-cloud behaviour where
    transient errors clear on retry.
    """

    retryable = True

    def __init__(
        self,
        service: str,
        operation: Optional[str] = None,
        resource: Optional[str] = None,
    ):
        self.service = service
        where = f" on '{resource}'" if resource else ""
        super().__init__(
            f"transient {service} error during {operation or 'request'}{where}",
            resource=resource,
            operation=operation,
        )


class FunctionPreemptedError(CloudError):
    """A FaaS execution environment was reclaimed by the platform.

    Models spot-style capacity loss: during a scheduled preemption window new
    invocations are rejected and running ones are killed (and billed only up
    to the kill time).  Retryable: capacity returns when the window closes.
    """

    retryable = True

    def __init__(self, function_name: str, at_time: float):
        self.function_name = function_name
        self.at_time = at_time
        super().__init__(
            f"function '{function_name}' preempted at t={at_time:.3f}s",
            resource=function_name,
            operation="invoke",
        )

"""Metering and billing for the simulated cloud.

Every simulated service records its billable activity in a
:class:`BillingLedger`.  The ledger plays the role of the AWS *Cost and Usage
report* that the paper uses to validate its analytical cost model
(Section VI-F): the cost model predicts charges from workload parameters,
and the ledger reports what was "actually" charged by the simulated services.

Records are intentionally fine grained (one per API call family per resource)
so reports can be filtered by service, by resource, or by time window.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from .pricing import PriceBook

__all__ = [
    "UsageRecord",
    "CostReport",
    "BillingLedger",
    "SERVICE_FAAS",
    "SERVICE_PUBSUB",
    "SERVICE_QUEUE",
    "SERVICE_OBJECT",
    "SERVICE_VM",
    "SERVICE_BLOCK",
    "SERVICE_ENDPOINT",
]

SERVICE_FAAS = "faas"
SERVICE_PUBSUB = "pubsub"
SERVICE_QUEUE = "queue"
SERVICE_OBJECT = "object_storage"
SERVICE_VM = "vm"
SERVICE_BLOCK = "block_storage"
SERVICE_ENDPOINT = "endpoint"


@dataclass(frozen=True)
class UsageRecord:
    """One line item of billable usage.

    Attributes:
        service:   one of the ``SERVICE_*`` constants.
        operation: API operation family, e.g. ``"publish"``, ``"get"``,
                   ``"gb_seconds"``.
        resource:  the resource the charge is attached to (queue name, bucket
                   name, function name, instance id).
        quantity:  billed units (requests, GB-seconds, bytes, instance-hours).
        cost:      charge in USD.
        timestamp: virtual time at which the usage occurred.
    """

    service: str
    operation: str
    resource: str
    quantity: float
    cost: float
    timestamp: float


@dataclass
class CostReport:
    """Aggregated view over a set of usage records."""

    total: float = 0.0
    by_service: Dict[str, float] = field(default_factory=dict)
    by_operation: Dict[str, float] = field(default_factory=dict)
    record_count: int = 0

    @property
    def compute_cost(self) -> float:
        """Cost of compute services (FaaS, VMs, managed endpoints)."""
        return sum(
            self.by_service.get(svc, 0.0)
            for svc in (SERVICE_FAAS, SERVICE_VM, SERVICE_ENDPOINT)
        )

    @property
    def communication_cost(self) -> float:
        """Cost of communication/storage services used as IPC channels."""
        return sum(
            self.by_service.get(svc, 0.0)
            for svc in (SERVICE_PUBSUB, SERVICE_QUEUE, SERVICE_OBJECT)
        )

    def service_total(self, service: str) -> float:
        return self.by_service.get(service, 0.0)


class BillingLedger:
    """Accumulates :class:`UsageRecord` entries and produces cost reports."""

    def __init__(self, price_book: Optional[PriceBook] = None, telemetry=None):
        self.price_book = price_book or PriceBook()
        self._records: List[UsageRecord] = []
        #: shared TelemetryDomain (see cloud.telemetry); None on bare ledgers.
        self._telemetry = telemetry

    # -- recording -----------------------------------------------------------

    def record(
        self,
        service: str,
        operation: str,
        resource: str,
        quantity: float,
        cost: float,
        timestamp: float,
    ) -> UsageRecord:
        """Append one usage record and return it."""
        if quantity < 0:
            raise ValueError("billable quantity cannot be negative")
        if cost < 0:
            raise ValueError("billable cost cannot be negative")
        record = UsageRecord(
            service=service,
            operation=operation,
            resource=resource,
            quantity=quantity,
            cost=cost,
            timestamp=timestamp,
        )
        tracer = None if self._telemetry is None else self._telemetry.tracer
        if tracer is not None:
            tracer.counter_add("cloud.cost_usd", cost, timestamp)
        self._records.append(record)
        return record

    # -- querying -----------------------------------------------------------

    @property
    def records(self) -> List[UsageRecord]:
        """All records, in insertion order (a copy; the ledger stays immutable)."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def filter(
        self,
        service: Optional[str] = None,
        operation: Optional[str] = None,
        resource_prefix: Optional[str] = None,
        start_time: Optional[float] = None,
        end_time: Optional[float] = None,
        predicate: Optional[Callable[[UsageRecord], bool]] = None,
    ) -> List[UsageRecord]:
        """Select records matching every provided criterion."""
        selected = []
        for record in self._records:
            if service is not None and record.service != service:
                continue
            if operation is not None and record.operation != operation:
                continue
            if resource_prefix is not None and not record.resource.startswith(resource_prefix):
                continue
            if start_time is not None and record.timestamp < start_time:
                continue
            if end_time is not None and record.timestamp > end_time:
                continue
            if predicate is not None and not predicate(record):
                continue
            selected.append(record)
        return selected

    def report(self, records: Optional[Iterable[UsageRecord]] = None) -> CostReport:
        """Aggregate ``records`` (default: every record) into a cost report."""
        if records is None:
            records = self._records
        by_service: Dict[str, float] = defaultdict(float)
        by_operation: Dict[str, float] = defaultdict(float)
        total = 0.0
        count = 0
        for record in records:
            by_service[record.service] += record.cost
            by_operation[f"{record.service}:{record.operation}"] += record.cost
            total += record.cost
            count += 1
        return CostReport(
            total=total,
            by_service=dict(by_service),
            by_operation=dict(by_operation),
            record_count=count,
        )

    def total_cost(self, service: Optional[str] = None) -> float:
        """Total cost, optionally restricted to one service."""
        return sum(r.cost for r in self._records if service is None or r.service == service)

    def total_quantity(self, service: str, operation: str) -> float:
        """Total billed quantity for one (service, operation) pair."""
        return sum(
            r.quantity
            for r in self._records
            if r.service == service and r.operation == operation
        )

    def reset(self) -> None:
        """Discard all recorded usage (used between benchmark repetitions)."""
        self._records.clear()

    def checkpoint(self) -> int:
        """Return a marker identifying the current end of the ledger."""
        return len(self._records)

    def records_since(self, checkpoint: int) -> List[UsageRecord]:
        """Records appended after ``checkpoint`` (from :meth:`checkpoint`)."""
        if checkpoint < 0:
            raise ValueError("checkpoint cannot be negative")
        return list(self._records[checkpoint:])

    def report_since(self, checkpoint: int) -> CostReport:
        """Aggregate only the records appended after ``checkpoint``."""
        return self.report(self.records_since(checkpoint))

"""FSD-Inf-Object: the object-storage communication channel.

Implements the communication scheme of Figure 3 / Algorithm 2:

* a pool of buckets; the object for a transfer to worker ``n`` lives in
  ``bucket-{n % B}``, which multiplies the per-prefix API request ceiling and
  lets every worker read from exactly one bucket/prefix;
* worker ``m`` sending rows to worker ``n`` in layer ``k`` writes a single
  object ``{k}/{n}/{m}_{n}.dat``; when it has nothing to send it writes a
  zero-byte ``{k}/{n}/{m}_{n}.nul`` marker instead, which receivers never GET;
* receivers repeatedly LIST their own prefix, GET only the ``.dat`` objects
  from sources they are still waiting for (redundant reads are skipped), and
  decode/decompress the payloads;
* writes and reads go through the worker's thread pool so that object I/O
  overlaps, as the paper does with ``ThreadPoolExecutor``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

import numpy as np
from scipy import sparse

from ..cloud import CloudEnvironment, ResourceNotFoundError, VirtualClock
from ..sparse import as_csr
from .base import (
    ChannelCapabilities,
    CommChannel,
    PollResult,
    ReceivedBlock,
    SendResult,
    ThreadPool,
)
from .payload import decode_row_payload, encode_row_payload

__all__ = ["ObjectChannelConfig", "ObjectChannel"]


@dataclass(frozen=True)
class ObjectChannelConfig:
    """Tunables of the object-storage channel."""

    num_buckets: int = 10
    compress: bool = True
    scan_backoff_seconds: float = 0.02
    resource_prefix: str = "fsd"

    def __post_init__(self) -> None:
        if self.num_buckets < 1:
            raise ValueError("at least one bucket is required")
        if self.scan_backoff_seconds < 0:
            raise ValueError("scan_backoff_seconds cannot be negative")


class ObjectChannel(CommChannel):
    """Object-storage based point-to-point channel (FSD-Inf-Object)."""

    capabilities = ChannelCapabilities(
        name="object-storage",
        serverless=True,
        low_latency_high_throughput=True,
        cost_effective=False,
        flexible_payloads=True,
        many_producers_consumers=True,
        service_side_filtering=False,
        direct_consumer_access=True,
    )

    def __init__(self, cloud: CloudEnvironment, config: Optional[ObjectChannelConfig] = None):
        super().__init__()
        self.cloud = cloud
        self.config = config or ObjectChannelConfig()
        self._buckets = []
        self._num_workers = 0

    # -- lifecycle ---------------------------------------------------------------------

    def prepare(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be positive")
        self._num_workers = num_workers
        prefix = self.config.resource_prefix
        self._buckets = [
            self.cloud.object_storage.get_or_create_bucket(f"{prefix}-bucket-{b}")
            for b in range(self.config.num_buckets)
        ]

    # -- key layout ----------------------------------------------------------------------

    def _bucket_for(self, target: int):
        return self._buckets[target % len(self._buckets)]

    @staticmethod
    def _prefix(layer: int, target: int) -> str:
        return f"{layer}/{target}/"

    @staticmethod
    def _key(layer: int, source: int, target: int, empty: bool) -> str:
        suffix = "nul" if empty else "dat"
        return f"{layer}/{target}/{source}_{target}.{suffix}"

    @staticmethod
    def _parse_source(key: str) -> int:
        filename = key.rsplit("/", 1)[-1]
        return int(filename.split("_", 1)[0])

    # -- data plane ---------------------------------------------------------------------------

    def send(
        self,
        layer: int,
        source: int,
        target: int,
        global_rows: Sequence[int],
        rows: sparse.spmatrix,
        pool: ThreadPool,
    ) -> SendResult:
        rows = as_csr(rows)
        bucket = self._bucket_for(target)
        has_data = len(global_rows) > 0 and rows.nnz > 0

        retry = self.cloud.faults.channel_retry

        if not has_data:
            key = self._key(layer, source, target, empty=True)
            pool.run(
                lambda clock: self._with_transient_retry(
                    retry, clock, lambda: bucket.put_object(key, b"", clock)
                )
            )
            self.stats.put_calls += 1
            return SendResult(bytes_sent=0, chunks=0, api_calls=1)

        payload = encode_row_payload(global_rows, rows, compress=self.config.compress)
        key = self._key(layer, source, target, empty=False)
        pool.run(
            lambda clock: self._with_transient_retry(
                retry, clock, lambda: bucket.put_object(key, payload, clock)
            )
        )
        self.stats.put_calls += 1
        self.stats.bytes_sent += len(payload)
        self.stats.messages_sent += 1
        self.stats.payload_nnz_sent += int(rows.nnz)
        return SendResult(bytes_sent=len(payload), chunks=1, api_calls=1)

    def poll(
        self,
        layer: int,
        worker: int,
        pending_sources: Set[int],
        clock: VirtualClock,
        pool: Optional[ThreadPool] = None,
    ) -> PollResult:
        bucket = self._bucket_for(worker)
        prefix = self._prefix(layer, worker)
        retry = self.cloud.faults.channel_retry
        handles = self._with_transient_retry(
            retry, clock, lambda: bucket.list_objects(prefix, clock)
        )
        self.stats.list_calls += 1

        result = PollResult()
        to_fetch = []
        for handle in handles:
            source = self._parse_source(handle.key)
            if source not in pending_sources or source in result.completed_sources:
                continue
            if handle.key.endswith(".nul"):
                # Nothing to receive from this source for this layer.
                result.completed_sources.add(source)
                continue
            if handle.key.endswith(".dat"):
                to_fetch.append((source, handle.key))

        if not to_fetch:
            if not result.completed_sources:
                self.stats.empty_polls += 1
                clock.advance(self.config.scan_backoff_seconds)
            return result

        fetch_pool = pool or ThreadPool(clock, 1)
        fetched = []
        for source, key in to_fetch:
            payload = fetch_pool.run(
                lambda c, _key=key: self._with_transient_retry(
                    retry, c, lambda: bucket.get_object(_key, c)
                )
            )
            fetched.append((source, payload))
            self.stats.get_calls += 1
        if pool is None:
            fetch_pool.join()

        for source, payload in fetched:
            global_rows, rows = decode_row_payload(payload)
            self.stats.bytes_received += len(payload)
            result.blocks.append(
                ReceivedBlock(
                    source=source,
                    global_rows=global_rows,
                    rows=rows,
                    bytes_received=len(payload),
                )
            )
            result.completed_sources.add(source)
        return result

"""Fully serverless inter-worker communication channels and collectives."""

from .base import (
    ChannelCapabilities,
    ChannelStats,
    CommChannel,
    PollResult,
    ReceivedBlock,
    SendResult,
    ThreadPool,
)
from .collectives import all_gather_rows, barrier, broadcast_rows, reduce_to_root
from .object_channel import ObjectChannel, ObjectChannelConfig
from .payload import (
    EncodedChunk,
    chunk_rows,
    decode_row_payload,
    encode_row_payload,
    estimate_payload_bytes,
)
from .queue_channel import QueueChannel, QueueChannelConfig

__all__ = [
    "ChannelCapabilities",
    "ChannelStats",
    "CommChannel",
    "PollResult",
    "ReceivedBlock",
    "SendResult",
    "ThreadPool",
    "all_gather_rows",
    "barrier",
    "broadcast_rows",
    "reduce_to_root",
    "ObjectChannel",
    "ObjectChannelConfig",
    "EncodedChunk",
    "chunk_rows",
    "decode_row_payload",
    "encode_row_payload",
    "estimate_payload_bytes",
    "QueueChannel",
    "QueueChannelConfig",
]

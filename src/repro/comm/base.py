"""Communication channel interface shared by FSD-Inf-Queue and FSD-Inf-Object.

A channel knows how to move activation rows between FaaS workers using one
family of fully serverless cloud services, how to account for the caller's
virtual time while doing so (including the multi-threaded overlap the paper
uses inside each worker), and how to report its own traffic statistics.

The interface is deliberately small -- ``prepare``, ``send``, ``poll``,
``send_final`` / ``poll_final`` (for the end-of-inference reduction) -- so the
worker code in :mod:`repro.core.worker` reads like Algorithms 1 and 2 of the
paper, and so alternative channels (e.g. a hypothetical NoSQL-based one) can
be added without touching the engine.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np
from scipy import sparse

from ..cloud import VirtualClock

__all__ = [
    "ChannelCapabilities",
    "ChannelStats",
    "ReceivedBlock",
    "PollResult",
    "SendResult",
    "CommChannel",
    "ThreadPool",
]


@dataclass(frozen=True)
class ChannelCapabilities:
    """Qualitative feature profile of a communication channel (paper Table I)."""

    name: str
    serverless: bool
    low_latency_high_throughput: bool
    cost_effective: bool
    flexible_payloads: bool
    many_producers_consumers: bool
    service_side_filtering: bool
    direct_consumer_access: bool


@dataclass
class ChannelStats:
    """Traffic counters accumulated by a channel across one inference run."""

    bytes_sent: int = 0
    bytes_received: int = 0
    payload_nnz_sent: int = 0
    messages_sent: int = 0
    publish_calls: int = 0
    poll_calls: int = 0
    empty_polls: int = 0
    put_calls: int = 0
    get_calls: int = 0
    list_calls: int = 0
    delete_calls: int = 0
    #: transient service errors absorbed by the channel's retry policy.
    retries: int = 0

    def merge(self, other: "ChannelStats") -> "ChannelStats":
        return self.snapshot().accumulate(other)

    def accumulate(self, other: "ChannelStats") -> "ChannelStats":
        """Add ``other``'s counters into this instance (no allocation); returns self.

        Equivalent to ``self = self.merge(other)`` for hot accumulation loops
        (e.g. folding per-query stats over a day-long serving replay).
        """
        for name in vars(self):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def snapshot(self) -> "ChannelStats":
        """An immutable-by-convention copy of the counters at this instant."""
        copied = ChannelStats()
        for name in vars(copied):
            setattr(copied, name, getattr(self, name))
        return copied

    def delta(self, since: "ChannelStats") -> "ChannelStats":
        """Counter increments accumulated after the ``since`` snapshot."""
        diff = ChannelStats()
        for name in vars(diff):
            setattr(diff, name, getattr(self, name) - getattr(since, name))
        return diff


@dataclass(frozen=True)
class ReceivedBlock:
    """Activation rows received from one source worker."""

    source: int
    global_rows: np.ndarray
    rows: sparse.csr_matrix
    bytes_received: int


@dataclass
class PollResult:
    """Outcome of one receive/poll/scan iteration."""

    blocks: List[ReceivedBlock] = field(default_factory=list)
    completed_sources: Set[int] = field(default_factory=set)


@dataclass(frozen=True)
class SendResult:
    """Accounting of one logical send (source -> target, one layer)."""

    bytes_sent: int
    chunks: int
    api_calls: int


class ThreadPool:
    """Virtual-time model of a worker's I/O thread pool.

    The paper parallelises message publication and object reads with
    ``concurrent.futures.ThreadPoolExecutor`` inside each worker.  In virtual
    time this is modelled exactly like a scheduler would: each of the
    ``threads`` lanes has its own finish time, work items are dispatched to
    the earliest-available lane, and when the pool is joined the owner clock
    advances to the latest lane finish time.
    """

    def __init__(self, owner_clock: VirtualClock, threads: int):
        if threads < 1:
            raise ValueError("a thread pool needs at least one thread")
        self._owner = owner_clock
        self._lanes = [owner_clock.now] * threads

    def run(self, work) -> object:
        """Run ``work(clock)`` on the earliest-available lane.

        ``work`` receives a :class:`VirtualClock` positioned at the lane's
        current finish time and must perform its service calls against it.
        Returns whatever ``work`` returns.
        """
        lane = min(range(len(self._lanes)), key=lambda i: self._lanes[i])
        clock = VirtualClock(max(self._lanes[lane], self._owner.now))
        result = work(clock)
        self._lanes[lane] = clock.now
        return result

    def join(self) -> float:
        """Advance the owner clock to the completion of every lane."""
        finish = max(self._lanes) if self._lanes else self._owner.now
        self._owner.advance_to(finish)
        return self._owner.now


class CommChannel(ABC):
    """Abstract fully-serverless point-to-point communication channel."""

    #: filled in by concrete channels.
    capabilities: ChannelCapabilities

    def __init__(self) -> None:
        self.stats = ChannelStats()

    # -- lifecycle ------------------------------------------------------------------

    @abstractmethod
    def prepare(self, num_workers: int) -> None:
        """Create (or look up) the cloud resources the channel needs.

        The paper pre-creates communication resources offline at no ongoing
        cost, so this step performs no billing.
        """

    # -- data plane --------------------------------------------------------------------

    @abstractmethod
    def send(
        self,
        layer: int,
        source: int,
        target: int,
        global_rows: Sequence[int],
        rows: sparse.spmatrix,
        pool: ThreadPool,
    ) -> SendResult:
        """Ship activation rows from ``source`` to ``target`` for ``layer``."""

    @abstractmethod
    def poll(
        self,
        layer: int,
        worker: int,
        pending_sources: Set[int],
        clock: VirtualClock,
        pool: Optional[ThreadPool] = None,
    ) -> PollResult:
        """Attempt to receive inbound rows for ``worker`` in ``layer``.

        ``pending_sources`` is the set of sources the worker is still waiting
        for; the channel may use it to skip already-received data (the
        paper's redundant-read avoidance).
        """

    # -- convenience used by the collectives ---------------------------------------------

    def reduction_layer(self, num_layers: int) -> int:
        """Virtual layer index used for the final Reduce to worker 0."""
        return num_layers

    def reset_stats(self) -> None:
        self.stats = ChannelStats()

    # -- resilience -----------------------------------------------------------------

    def _with_transient_retry(self, retry, clock: VirtualClock, call):
        """Run ``call()``, retrying retryable cloud errors under ``retry``.

        ``call`` must issue its service requests against ``clock`` so the
        backoff the channel spends between attempts lands on the same
        timeline as the failed requests.  With ``retry is None`` (chaos off)
        this is a plain passthrough.
        """
        if retry is None:
            return call()
        attempt = 1
        while True:
            try:
                return call()
            except Exception as error:
                if not retry.should_retry(error, attempt):
                    raise
                clock.advance(retry.backoff_seconds(attempt, token=self.stats.retries))
                self.stats.retries += 1
                attempt += 1

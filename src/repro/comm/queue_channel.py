"""FSD-Inf-Queue: the publish-subscribe + queueing communication channel.

Implements the communication scheme of Figure 2 / Algorithm 1:

* a small pool of pub/sub topics shared by all workers (worker ``m``
  publishes to ``topic-{m % T}``), which spreads publish traffic and raises
  the aggregate API ceiling;
* one dedicated queue per worker; every queue is subscribed to every topic
  with a filter policy on the ``target`` message attribute, so the pub/sub
  service -- not the resource-constrained worker -- performs message routing
  and filtering;
* activation rows are chunked to the 256 KB message limit using the NNZ
  heuristic, grouped into publish batches of up to 10 messages to minimise
  billed publish requests, and published from a worker-side thread pool;
* receivers long-poll their queue, reassemble multi-chunk transfers using the
  ``chunk_count`` message attribute, and delete consumed messages in batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np
from scipy import sparse

from ..cloud import (
    CloudEnvironment,
    FilterPolicy,
    MAX_PUBLISH_BATCH,
    MAX_PUBLISH_BYTES,
    MAX_MESSAGE_BYTES,
    QueueMessage,
    VirtualClock,
)
from .base import (
    ChannelCapabilities,
    CommChannel,
    PollResult,
    ReceivedBlock,
    SendResult,
    ThreadPool,
)
from .payload import chunk_rows, decode_row_payload

__all__ = ["QueueChannelConfig", "QueueChannel"]

#: Safety margin below the 256 KB limit for attribute/framing overhead.
_MESSAGE_MARGIN_BYTES = 2048


@dataclass(frozen=True)
class QueueChannelConfig:
    """Tunables of the pub-sub/queueing channel."""

    num_topics: int = 10
    long_poll_wait_seconds: float = 5.0
    use_long_polling: bool = True
    compress: bool = True
    max_message_bytes: int = MAX_MESSAGE_BYTES
    resource_prefix: str = "fsd"

    def __post_init__(self) -> None:
        if self.num_topics < 1:
            raise ValueError("at least one topic is required")
        if self.long_poll_wait_seconds < 0:
            raise ValueError("long_poll_wait_seconds cannot be negative")
        if self.max_message_bytes <= _MESSAGE_MARGIN_BYTES:
            raise ValueError("max_message_bytes is too small for the framing margin")


class QueueChannel(CommChannel):
    """Pub-sub + queue based point-to-point channel (FSD-Inf-Queue)."""

    capabilities = ChannelCapabilities(
        name="pubsub+queues",
        serverless=True,
        low_latency_high_throughput=True,
        cost_effective=True,
        flexible_payloads=False,
        many_producers_consumers=True,
        service_side_filtering=True,
        direct_consumer_access=True,
    )

    def __init__(self, cloud: CloudEnvironment, config: Optional[QueueChannelConfig] = None):
        super().__init__()
        self.cloud = cloud
        self.config = config or QueueChannelConfig()
        self._topics = []
        self._queues = []
        self._num_workers = 0
        # Reassembly buffers: (worker, layer, source) -> list of decoded chunks.
        self._partial: Dict[Tuple[int, int, int], List[Tuple[np.ndarray, sparse.csr_matrix]]] = {}
        self._expected_chunks: Dict[Tuple[int, int, int], int] = {}

    # -- lifecycle --------------------------------------------------------------------

    def prepare(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be positive")
        self._num_workers = num_workers
        prefix = self.config.resource_prefix
        self._topics = [
            self.cloud.pubsub.get_or_create_topic(f"{prefix}-topic-{t}")
            for t in range(self.config.num_topics)
        ]
        self._queues = []
        for worker in range(num_workers):
            queue = self.cloud.queues.get_or_create_queue(f"{prefix}-queue-{worker}")
            self._queues.append(queue)
        # Subscribe every queue to every topic, filtered on the target attribute,
        # so routing happens inside the pub/sub service (fan-out design).
        for topic in self._topics:
            already = {id(sub.queue) for sub in topic.subscriptions}
            for worker, queue in enumerate(self._queues):
                if id(queue) in already:
                    continue
                topic.subscribe(queue, FilterPolicy(conditions={"target": [worker]}))

    # -- helpers ------------------------------------------------------------------------

    def _topic_for(self, source: int):
        return self._topics[source % len(self._topics)]

    def _queue_for(self, worker: int):
        return self._queues[worker]

    # -- data plane -----------------------------------------------------------------------

    def send(
        self,
        layer: int,
        source: int,
        target: int,
        global_rows: Sequence[int],
        rows: sparse.spmatrix,
        pool: ThreadPool,
    ) -> SendResult:
        effective_limit = self.config.max_message_bytes - _MESSAGE_MARGIN_BYTES
        chunks = chunk_rows(global_rows, rows, effective_limit, compress=self.config.compress)
        chunk_count = len(chunks)
        messages = [
            QueueMessage(
                body=chunk.payload,
                attributes={
                    "source": source,
                    "target": target,
                    "layer": layer,
                    "chunk_index": index,
                    "chunk_count": chunk_count,
                },
            )
            for index, chunk in enumerate(chunks)
        ]

        topic = self._topic_for(source)
        bytes_sent = 0
        api_calls = 0
        batch: List[QueueMessage] = []
        batch_bytes = 0

        retry = self.cloud.faults.channel_retry

        def flush(batch_to_send: List[QueueMessage]) -> None:
            nonlocal api_calls
            if not batch_to_send:
                return
            pool.run(
                lambda clock: self._with_transient_retry(
                    retry, clock, lambda: topic.publish_batch(batch_to_send, clock)
                )
            )
            api_calls += 1

        for message in messages:
            exceeds_count = len(batch) >= MAX_PUBLISH_BATCH
            exceeds_bytes = batch_bytes + message.size_bytes > MAX_PUBLISH_BYTES
            if batch and (exceeds_count or exceeds_bytes):
                flush(batch)
                batch = []
                batch_bytes = 0
            batch.append(message)
            batch_bytes += message.size_bytes
            bytes_sent += message.size_bytes
        flush(batch)

        self.stats.bytes_sent += bytes_sent
        self.stats.messages_sent += len(messages)
        self.stats.publish_calls += api_calls
        self.stats.payload_nnz_sent += int(sum(chunk.nnz for chunk in chunks))
        return SendResult(bytes_sent=bytes_sent, chunks=chunk_count, api_calls=api_calls)

    def poll(
        self,
        layer: int,
        worker: int,
        pending_sources: Set[int],
        clock: VirtualClock,
        pool: Optional[ThreadPool] = None,
    ) -> PollResult:
        queue = self._queue_for(worker)
        wait = self.config.long_poll_wait_seconds if self.config.use_long_polling else 0.0
        messages = self._with_transient_retry(
            self.cloud.faults.channel_retry,
            clock,
            lambda: queue.receive(clock, max_messages=10, wait_seconds=wait),
        )
        self.stats.poll_calls += 1
        if not messages:
            self.stats.empty_polls += 1
            return PollResult()

        result = PollResult()
        for message in messages:
            attributes = message.attributes
            source = int(attributes["source"])
            message_layer = int(attributes["layer"])
            key = (worker, message_layer, source)
            rows_ids, rows_matrix = decode_row_payload(message.body)
            self.stats.bytes_received += message.size_bytes
            self._partial.setdefault(key, []).append((rows_ids, rows_matrix))
            self._expected_chunks[key] = int(attributes["chunk_count"])

            received = len(self._partial[key])
            if received == self._expected_chunks[key] and message_layer == layer:
                parts = self._partial.pop(key)
                self._expected_chunks.pop(key, None)
                all_rows = np.concatenate([ids for ids, _ in parts]) if parts else np.empty(0, dtype=np.int64)
                matrices = [m for _, m in parts if m.shape[0] > 0]
                if len(matrices) == 1:
                    stacked = matrices[0]  # single-chunk transfer (common case)
                elif matrices:
                    stacked = sparse.vstack(matrices, format="csr")
                else:
                    stacked = sparse.csr_matrix((0, rows_matrix.shape[1]), dtype=np.float64)
                result.blocks.append(
                    ReceivedBlock(
                        source=source,
                        global_rows=all_rows,
                        rows=stacked,
                        bytes_received=sum(p[1].nnz for p in parts),
                    )
                )
                result.completed_sources.add(source)

        queue.delete_batch(messages, clock)
        self.stats.delete_calls += 1
        return result

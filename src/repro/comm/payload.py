"""Payload encoding for inter-worker activation transfers.

Workers exchange *rows of the activation matrix* (``x^{k-1}`` in the paper).
A payload is a set of global row indices plus the corresponding sparse rows,
serialised compactly and ZLIB-compressed (Section IV-B notes that both
channels compress with ZLIB to reduce communication volume).

For the pub-sub/queueing channel the payload must additionally be chunked to
respect the provider's 256 KB message limit.  The chunking follows the
paper's heuristic: the number of nonzeros per row estimates how many rows fit
into one message, rows are grouped greedily to maximise utilisation of the
allowed message size, and each group is compressed exactly once.
"""

from __future__ import annotations

import hashlib
import io
import struct
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np
from scipy import sparse

from ..sparse import as_csr

__all__ = [
    "encode_row_payload",
    "decode_row_payload",
    "chunk_rows",
    "estimate_payload_bytes",
    "EncodedChunk",
]

_MAGIC = b"FSDP"
_HEADER = struct.Struct("<4sIIQ")  # magic, n_rows, n_cols, nnz
#: Bytes of value+index storage per stored nonzero (float32 + int32).
_BYTES_PER_NNZ = 8
#: Fixed per-row overhead (row id + indptr entry).
_BYTES_PER_ROW = 16
#: Conservative compression ratio assumed by the chunking heuristic.
_ASSUMED_COMPRESSION = 0.6


class _ZlibMemo:
    """Bounded content-addressed cache of deterministic zlib transforms.

    ``zlib.compress(raw, 6)`` is a pure function of its input, and the
    simulator deflates identical content over and over: model partitions are
    re-staged on every engine run, repeated queries re-ship the same
    activation rows, and the chunking heuristic re-encodes a group when it
    has to split it.  Caching by content digest turns those repeats into a
    hash instead of a deflate while returning *byte-identical* payloads, so
    every simulated byte count, virtual-time latency and cost stays exactly
    the same.  Entries are evicted LRU once the cached payload bytes exceed
    the budget.
    """

    def __init__(self, max_bytes: int = 128 * 1024 * 1024):
        self._max_bytes = max_bytes
        self._bytes = 0
        self._store: "OrderedDict[bytes, bytes]" = OrderedDict()

    @staticmethod
    def digest(payload: bytes) -> bytes:
        return hashlib.blake2b(payload, digest_size=16).digest()

    def get(self, key: bytes) -> bytes | None:
        value = self._store.get(key)
        if value is not None:
            self._store.move_to_end(key)
        return value

    def put(self, key: bytes, value: bytes) -> None:
        if key in self._store:
            self._store.move_to_end(key)
            return
        self._store[key] = value
        self._bytes += len(value)
        while self._bytes > self._max_bytes and self._store:
            _, evicted = self._store.popitem(last=False)
            self._bytes -= len(evicted)


_COMPRESS_MEMO = _ZlibMemo()
_DECOMPRESS_MEMO = _ZlibMemo()


def _compress(raw: bytes) -> bytes:
    key = _ZlibMemo.digest(raw)
    compressed = _COMPRESS_MEMO.get(key)
    if compressed is None:
        compressed = zlib.compress(raw, level=6)
        _COMPRESS_MEMO.put(key, compressed)
        # Prime the inverse transform: the receiver will inflate this exact
        # payload right back.
        _DECOMPRESS_MEMO.put(_ZlibMemo.digest(compressed), raw)
    return compressed


def _decompress(payload: bytes) -> bytes:
    key = _ZlibMemo.digest(payload)
    raw = _DECOMPRESS_MEMO.get(key)
    if raw is None:
        raw = zlib.decompress(payload)
        _DECOMPRESS_MEMO.put(key, raw)
    return raw


@dataclass(frozen=True)
class EncodedChunk:
    """One encoded (and possibly compressed) group of activation rows."""

    payload: bytes
    row_count: int
    nnz: int

    @property
    def size_bytes(self) -> int:
        return len(self.payload)


def _as_bytes(array: np.ndarray, dtype: type) -> bytes:
    """``array.astype(dtype).tobytes()`` without the copy when dtypes match."""
    if array.dtype == dtype:
        return array.tobytes()
    return array.astype(dtype).tobytes()


def encode_row_payload(
    global_rows: Sequence[int],
    rows: sparse.spmatrix,
    compress: bool = True,
) -> bytes:
    """Serialise ``rows`` (CSR, one row per entry of ``global_rows``)."""
    rows = as_csr(rows)
    global_rows = np.asarray(global_rows, dtype=np.int64)
    if rows.shape[0] != len(global_rows):
        raise ValueError(
            f"payload has {rows.shape[0]} matrix rows but {len(global_rows)} row indices"
        )
    buffer = io.BytesIO()
    buffer.write(_HEADER.pack(_MAGIC, rows.shape[0], rows.shape[1], rows.nnz))
    buffer.write(global_rows.tobytes())
    buffer.write(_as_bytes(rows.indptr, np.int64))
    buffer.write(_as_bytes(rows.indices, np.int32))
    buffer.write(_as_bytes(rows.data, np.float64))
    raw = buffer.getvalue()
    if compress:
        return b"Z" + _compress(raw)
    return b"R" + raw


def decode_row_payload(payload: bytes) -> Tuple[np.ndarray, sparse.csr_matrix]:
    """Inverse of :func:`encode_row_payload`."""
    if not payload:
        raise ValueError("cannot decode an empty payload")
    marker, body = payload[:1], payload[1:]
    if marker == b"Z":
        raw = _decompress(body)
    elif marker == b"R":
        raw = body
    else:
        raise ValueError(f"unknown payload marker {marker!r}")
    magic, n_rows, n_cols, nnz = _HEADER.unpack_from(raw, 0)
    if magic != _MAGIC:
        raise ValueError("payload is not an encoded row block")
    offset = _HEADER.size
    global_rows = np.frombuffer(raw, dtype=np.int64, count=n_rows, offset=offset).copy()
    offset += global_rows.nbytes
    indptr = np.frombuffer(raw, dtype=np.int64, count=n_rows + 1, offset=offset)
    offset += indptr.nbytes
    indices = np.frombuffer(raw, dtype=np.int32, count=nnz, offset=offset)
    offset += indices.nbytes
    data = np.frombuffer(raw, dtype=np.float64, count=nnz, offset=offset)
    matrix = sparse.csr_matrix((data, indices, indptr), shape=(n_rows, n_cols))
    return global_rows, matrix


def estimate_payload_bytes(row_nnz: np.ndarray, num_rows: int) -> float:
    """Heuristic encoded size of a group of rows with the given nonzero counts."""
    raw = _HEADER.size + num_rows * _BYTES_PER_ROW + float(row_nnz.sum()) * _BYTES_PER_NNZ
    return raw * _ASSUMED_COMPRESSION


def chunk_rows(
    global_rows: Sequence[int],
    rows: sparse.spmatrix,
    max_chunk_bytes: int,
    compress: bool = True,
) -> List[EncodedChunk]:
    """Split a row block into encoded chunks no larger than ``max_chunk_bytes``.

    Rows are grouped greedily using the NNZ-based size heuristic (grouping and
    compressing each group exactly once, as in Section III-C1); if a compressed
    group still exceeds the limit it is split recursively.  Always returns at
    least one chunk, even for an empty row set, so receivers can account for
    senders that had nothing to transmit.
    """
    rows = as_csr(rows)
    global_rows = np.asarray(global_rows, dtype=np.int64)
    if max_chunk_bytes <= _HEADER.size + _BYTES_PER_ROW:
        raise ValueError(f"max_chunk_bytes of {max_chunk_bytes} is too small to hold any row")

    if len(global_rows) == 0:
        empty = sparse.csr_matrix((0, rows.shape[1]), dtype=np.float64)
        payload = encode_row_payload(global_rows, empty, compress)
        return [EncodedChunk(payload=payload, row_count=0, nnz=0)]

    row_nnz = np.diff(rows.indptr)
    chunks: List[EncodedChunk] = []

    def encode_group(start: int, stop: int) -> None:
        """Encode rows [start, stop); split recursively if too large."""
        group_rows = global_rows[start:stop]
        if start == 0 and stop == rows.shape[0]:
            group_matrix = rows  # whole block (the common case): skip the slice
        else:
            group_matrix = rows[start:stop, :]
        payload = encode_row_payload(group_rows, group_matrix, compress)
        if len(payload) > max_chunk_bytes and stop - start > 1:
            middle = (start + stop) // 2
            encode_group(start, middle)
            encode_group(middle, stop)
            return
        chunks.append(
            EncodedChunk(
                payload=payload,
                row_count=stop - start,
                nnz=int(row_nnz[start:stop].sum()),
            )
        )

    # The greedy per-row loop this replaces admitted rows one at a time until
    # the NNZ-based size estimate overflowed the limit.  The same split points
    # fall out of a cumulative-sum formulation: with
    # ``g[e] = BYTES_PER_ROW * e + BYTES_PER_NNZ * cum_nnz[e]`` (strictly
    # increasing), a group [s, e) fits exactly when the estimate
    # ``(HEADER + g[e] - g[s]) * compression`` stays within the limit, i.e.
    # when ``g[e] - g[s] <= budget`` for the largest integer ``budget`` whose
    # estimate still fits.  Every group is therefore a searchsorted call
    # instead of a per-row Python iteration, and the boundaries (including
    # the at-least-one-row rule for oversized rows) are bit-identical.
    count = len(global_rows)
    cum_nnz = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(row_nnz, out=cum_nnz[1:])
    g = _BYTES_PER_ROW * np.arange(count + 1, dtype=np.int64) + _BYTES_PER_NNZ * cum_nnz

    def fits(extra_bytes: int) -> bool:
        return (_HEADER.size + float(extra_bytes)) * _ASSUMED_COMPRESSION <= max_chunk_bytes

    budget = int(max_chunk_bytes / _ASSUMED_COMPRESSION) - _HEADER.size
    while budget >= 0 and not fits(budget):
        budget -= 1
    while fits(budget + 1):
        budget += 1

    start = 0
    while start < count:
        stop = int(np.searchsorted(g, g[start] + budget, side="right")) - 1
        stop = min(max(stop, start + 1), count)
        encode_group(start, stop)
        start = stop
    return chunks

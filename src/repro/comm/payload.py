"""Payload encoding for inter-worker activation transfers.

Workers exchange *rows of the activation matrix* (``x^{k-1}`` in the paper).
A payload is a set of global row indices plus the corresponding sparse rows,
serialised compactly and ZLIB-compressed (Section IV-B notes that both
channels compress with ZLIB to reduce communication volume).

For the pub-sub/queueing channel the payload must additionally be chunked to
respect the provider's 256 KB message limit.  The chunking follows the
paper's heuristic: the number of nonzeros per row estimates how many rows fit
into one message, rows are grouped greedily to maximise utilisation of the
allowed message size, and each group is compressed exactly once.
"""

from __future__ import annotations

import io
import struct
import zlib
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np
from scipy import sparse

from ..sparse import as_csr

__all__ = [
    "encode_row_payload",
    "decode_row_payload",
    "chunk_rows",
    "estimate_payload_bytes",
    "EncodedChunk",
]

_MAGIC = b"FSDP"
_HEADER = struct.Struct("<4sIIQ")  # magic, n_rows, n_cols, nnz
#: Bytes of value+index storage per stored nonzero (float32 + int32).
_BYTES_PER_NNZ = 8
#: Fixed per-row overhead (row id + indptr entry).
_BYTES_PER_ROW = 16
#: Conservative compression ratio assumed by the chunking heuristic.
_ASSUMED_COMPRESSION = 0.6


@dataclass(frozen=True)
class EncodedChunk:
    """One encoded (and possibly compressed) group of activation rows."""

    payload: bytes
    row_count: int
    nnz: int

    @property
    def size_bytes(self) -> int:
        return len(self.payload)


def encode_row_payload(
    global_rows: Sequence[int],
    rows: sparse.spmatrix,
    compress: bool = True,
) -> bytes:
    """Serialise ``rows`` (CSR, one row per entry of ``global_rows``)."""
    rows = as_csr(rows).astype(np.float64)
    global_rows = np.asarray(global_rows, dtype=np.int64)
    if rows.shape[0] != len(global_rows):
        raise ValueError(
            f"payload has {rows.shape[0]} matrix rows but {len(global_rows)} row indices"
        )
    buffer = io.BytesIO()
    buffer.write(_HEADER.pack(_MAGIC, rows.shape[0], rows.shape[1], rows.nnz))
    buffer.write(global_rows.tobytes())
    buffer.write(rows.indptr.astype(np.int64).tobytes())
    buffer.write(rows.indices.astype(np.int32).tobytes())
    buffer.write(rows.data.astype(np.float64).tobytes())
    raw = buffer.getvalue()
    if compress:
        return b"Z" + zlib.compress(raw, level=6)
    return b"R" + raw


def decode_row_payload(payload: bytes) -> Tuple[np.ndarray, sparse.csr_matrix]:
    """Inverse of :func:`encode_row_payload`."""
    if not payload:
        raise ValueError("cannot decode an empty payload")
    marker, body = payload[:1], payload[1:]
    if marker == b"Z":
        raw = zlib.decompress(body)
    elif marker == b"R":
        raw = body
    else:
        raise ValueError(f"unknown payload marker {marker!r}")
    magic, n_rows, n_cols, nnz = _HEADER.unpack_from(raw, 0)
    if magic != _MAGIC:
        raise ValueError("payload is not an encoded row block")
    offset = _HEADER.size
    global_rows = np.frombuffer(raw, dtype=np.int64, count=n_rows, offset=offset).copy()
    offset += global_rows.nbytes
    indptr = np.frombuffer(raw, dtype=np.int64, count=n_rows + 1, offset=offset)
    offset += indptr.nbytes
    indices = np.frombuffer(raw, dtype=np.int32, count=nnz, offset=offset)
    offset += indices.nbytes
    data = np.frombuffer(raw, dtype=np.float64, count=nnz, offset=offset)
    matrix = sparse.csr_matrix((data, indices, indptr), shape=(n_rows, n_cols))
    return global_rows, matrix


def estimate_payload_bytes(row_nnz: np.ndarray, num_rows: int) -> float:
    """Heuristic encoded size of a group of rows with the given nonzero counts."""
    raw = _HEADER.size + num_rows * _BYTES_PER_ROW + float(row_nnz.sum()) * _BYTES_PER_NNZ
    return raw * _ASSUMED_COMPRESSION


def chunk_rows(
    global_rows: Sequence[int],
    rows: sparse.spmatrix,
    max_chunk_bytes: int,
    compress: bool = True,
) -> List[EncodedChunk]:
    """Split a row block into encoded chunks no larger than ``max_chunk_bytes``.

    Rows are grouped greedily using the NNZ-based size heuristic (grouping and
    compressing each group exactly once, as in Section III-C1); if a compressed
    group still exceeds the limit it is split recursively.  Always returns at
    least one chunk, even for an empty row set, so receivers can account for
    senders that had nothing to transmit.
    """
    rows = as_csr(rows)
    global_rows = np.asarray(global_rows, dtype=np.int64)
    if max_chunk_bytes <= _HEADER.size + _BYTES_PER_ROW:
        raise ValueError(f"max_chunk_bytes of {max_chunk_bytes} is too small to hold any row")

    if len(global_rows) == 0:
        empty = sparse.csr_matrix((0, rows.shape[1]), dtype=np.float64)
        payload = encode_row_payload(global_rows, empty, compress)
        return [EncodedChunk(payload=payload, row_count=0, nnz=0)]

    row_nnz = np.diff(rows.indptr)
    chunks: List[EncodedChunk] = []

    def encode_group(start: int, stop: int) -> None:
        """Encode rows [start, stop); split recursively if too large."""
        group_rows = global_rows[start:stop]
        group_matrix = rows[start:stop, :]
        payload = encode_row_payload(group_rows, group_matrix, compress)
        if len(payload) > max_chunk_bytes and stop - start > 1:
            middle = (start + stop) // 2
            encode_group(start, middle)
            encode_group(middle, stop)
            return
        chunks.append(
            EncodedChunk(
                payload=payload,
                row_count=stop - start,
                nnz=int(row_nnz[start:stop].sum()),
            )
        )

    start = 0
    current_rows = 0
    current_nnz = 0.0
    for index in range(len(global_rows)):
        candidate_nnz = current_nnz + row_nnz[index]
        candidate_rows = current_rows + 1
        estimated = estimate_payload_bytes(
            np.array([candidate_nnz]), candidate_rows
        )
        if estimated > max_chunk_bytes and current_rows > 0:
            encode_group(start, index)
            start = index
            current_rows = 1
            current_nnz = float(row_nnz[index])
        else:
            current_rows = candidate_rows
            current_nnz = candidate_nnz
    encode_group(start, len(global_rows))
    return chunks

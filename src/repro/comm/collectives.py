"""MPI-style collective operations over the serverless channels.

The paper's execution finishes each batch with a Barrier followed by a Reduce
of every worker's final-layer activations to worker 0 (Algorithms 1 and 2,
lines 19-20 / 25-26), and lists Broadcast/Reduce among the MPI primitives the
system provides.  These collectives are built purely on the point-to-point
channel primitives, so they remain fully serverless.

In the virtual-time model a barrier is simply "every participant advances to
the latest participant's clock"; the data movement of Reduce/Broadcast still
travels through the channel (and is therefore billed and timed like any other
transfer).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy import sparse

from ..cloud import VirtualClock
from ..sparse import expand_rows
from .base import CommChannel, PollResult, ThreadPool

__all__ = ["barrier", "reduce_to_root", "broadcast_rows", "all_gather_rows"]


def barrier(clocks: Sequence[VirtualClock], overhead_seconds: float = 0.0) -> float:
    """Synchronise every clock to the latest participant (plus optional overhead).

    Returns the synchronised time.
    """
    if not clocks:
        raise ValueError("a barrier needs at least one participant")
    latest = max(clock.now for clock in clocks) + overhead_seconds
    for clock in clocks:
        clock.advance_to(latest)
    return latest


def reduce_to_root(
    channel: CommChannel,
    layer: int,
    root: int,
    contributions: Dict[int, tuple],
    clocks: Dict[int, VirtualClock],
    io_threads: int = 1,
    num_columns: Optional[int] = None,
) -> sparse.csr_matrix:
    """Gather every worker's rows at ``root`` and assemble the full matrix.

    ``contributions[m]`` is ``(global_rows, csr_rows)`` for worker ``m``.
    Non-root workers send through the channel; the root polls until it has
    heard from every other worker, then stitches the rows into a single
    matrix ordered by global row index.
    """
    if root not in contributions:
        raise ValueError(f"root worker {root} has no contribution")

    workers = sorted(contributions)
    for worker in workers:
        if worker == root:
            continue
        rows_ids, rows_matrix = contributions[worker]
        pool = ThreadPool(clocks[worker], io_threads)
        channel.send(layer, worker, root, rows_ids, rows_matrix, pool)
        pool.join()

    pending = {worker for worker in workers if worker != root}
    received: Dict[int, tuple] = {root: contributions[root]}
    root_clock = clocks[root]
    # The root cannot observe data sent "in its future"; polling naturally
    # advances its clock until everything has arrived.
    while pending:
        result: PollResult = channel.poll(layer, root, pending, root_clock)
        for block in result.blocks:
            received[block.source] = (block.global_rows, block.rows)
        pending -= result.completed_sources

    all_rows = []
    all_matrices = []
    for worker in sorted(received):
        rows_ids, rows_matrix = received[worker]
        if len(rows_ids) == 0:
            continue
        all_rows.append(np.asarray(rows_ids, dtype=np.int64))
        all_matrices.append(rows_matrix)

    if not all_matrices:
        columns = num_columns if num_columns is not None else 0
        return sparse.csr_matrix((0, columns), dtype=np.float64)

    stacked_rows = np.concatenate(all_rows)
    stacked = sparse.vstack(all_matrices, format="csr")
    total_rows = int(stacked_rows.max()) + 1
    columns = num_columns if num_columns is not None else stacked.shape[1]
    if stacked.shape[1] == columns and len(np.unique(stacked_rows)) == len(stacked_rows):
        # Disjoint contributions of the expected width (the normal case: row
        # ownership is a partition): scatter the stacked rows straight into
        # place with the vectorized expand, instead of per-row LIL
        # assignment.  The LIL round-trip canonicalised the result (sorted
        # column indices, no explicit zeros), so apply the same
        # canonicalisation here -- worker activations arrive with the
        # unsorted index order of scipy's SpMM.
        assembled = expand_rows(stacked_rows, stacked, total_rows)
        assembled.sort_indices()
        assembled.eliminate_zeros()
        return assembled
    # Overlapping row ids or a width mismatch (not produced by the engine,
    # but expressible through this generic collective): keep the LIL
    # semantics, including its last-writer-wins and shape error behavior.
    order = np.argsort(stacked_rows, kind="stable")
    assembled = sparse.lil_matrix((total_rows, columns), dtype=np.float64)
    reordered = stacked[order, :]
    sorted_rows = stacked_rows[order]
    assembled[sorted_rows, :] = reordered
    return assembled.tocsr()


def broadcast_rows(
    channel: CommChannel,
    layer: int,
    root: int,
    global_rows: np.ndarray,
    rows: sparse.spmatrix,
    clocks: Dict[int, VirtualClock],
    io_threads: int = 1,
) -> Dict[int, tuple]:
    """Send the same rows from ``root`` to every other worker.

    Returns, per receiving worker, the ``(global_rows, rows)`` it observed.
    """
    workers = sorted(clocks)
    pool = ThreadPool(clocks[root], io_threads)
    for worker in workers:
        if worker == root:
            continue
        channel.send(layer, root, worker, global_rows, rows, pool)
    pool.join()

    results: Dict[int, tuple] = {root: (np.asarray(global_rows), rows)}
    for worker in workers:
        if worker == root:
            continue
        pending = {root}
        clock = clocks[worker]
        while pending:
            outcome = channel.poll(layer, worker, pending, clock)
            for block in outcome.blocks:
                results[worker] = (block.global_rows, block.rows)
            pending -= outcome.completed_sources
    return results


def all_gather_rows(
    channel: CommChannel,
    layer: int,
    contributions: Dict[int, tuple],
    clocks: Dict[int, VirtualClock],
    io_threads: int = 1,
) -> Dict[int, Dict[int, tuple]]:
    """Every worker receives every other worker's contribution.

    Implemented as P independent sends per worker followed by polling, which
    is how an AllGather decomposes over point-to-point serverless channels.
    Returns ``{receiver: {source: (global_rows, rows)}}``.
    """
    workers = sorted(contributions)
    for source in workers:
        rows_ids, rows_matrix = contributions[source]
        pool = ThreadPool(clocks[source], io_threads)
        for target in workers:
            if target == source:
                continue
            channel.send(layer, source, target, rows_ids, rows_matrix, pool)
        pool.join()

    gathered: Dict[int, Dict[int, tuple]] = {}
    for receiver in workers:
        gathered[receiver] = {receiver: contributions[receiver]}
        pending = {w for w in workers if w != receiver}
        clock = clocks[receiver]
        while pending:
            outcome = channel.poll(layer, receiver, pending, clock)
            for block in outcome.blocks:
                gathered[receiver][block.source] = (block.global_rows, block.rows)
            pending -= outcome.completed_sources
    return gathered

"""Scenario library: diverse seeded arrival processes for the serving layer.

Every generator emits a standard :class:`~repro.workloads.SporadicWorkload`,
so the serving layer (:class:`~repro.serving.InferenceServer`, all backends
and policies) replays any scenario unchanged.  The campaign runner in
:mod:`repro.experiments` sweeps grids of these scenarios against backend and
policy choices.
"""

from .processes import (
    ArrivalProcess,
    BurstyProcess,
    DiurnalProcess,
    FlashCrowdProcess,
    PoissonProcess,
    TraceProcess,
)
from .scenario import (
    ChaosScenario,
    MixtureScenario,
    Scenario,
    build_scenario_workload,
)

__all__ = [
    "ArrivalProcess",
    "BurstyProcess",
    "ChaosScenario",
    "DiurnalProcess",
    "FlashCrowdProcess",
    "PoissonProcess",
    "TraceProcess",
    "MixtureScenario",
    "Scenario",
    "build_scenario_workload",
]

"""Seeded arrival-process generators behind one ``ArrivalProcess`` protocol.

The paper's whole sporadic-workload argument (Section VI-C, Figure 4) hinges
on *when* queries arrive: warm-pool hits, coalescing windows and autoscaler
behaviour all depend on the gaps between requests.  A single homogeneous
Poisson trace exercises exactly one arrival shape, so every process here
generates a different one:

* :class:`PoissonProcess` -- the classic homogeneous baseline (uniform order
  statistics over the horizon);
* :class:`DiurnalProcess` -- an inhomogeneous Poisson process, sampled by
  thinning candidate arrivals against a day/night intensity curve;
* :class:`BurstyProcess` -- a two-state Markov-modulated Poisson process
  (MMPP): quiet and burst regimes with exponential dwell times, arrivals
  drawn from the realised piecewise-constant intensity path;
* :class:`FlashCrowdProcess` -- baseline Poisson plus a spike window at
  ``spike_factor`` times the baseline rate;
* :class:`TraceProcess` -- replay of recorded arrival timestamps from a JSON
  or CSV file.

Every process is *count-conditioned*: given a query count, a horizon and a
seeded :class:`numpy.random.Generator` it returns exactly that many sorted
arrival timestamps inside ``[0, horizon]``.  Conditioning on the count keeps
the scenario layer's sample accounting exact (a scenario always serves its
configured daily volume -- only the *shape* of the arrivals changes) and is
statistically faithful: a (possibly inhomogeneous) Poisson process
conditioned on its arrival count draws arrivals i.i.d. from the normalised
intensity.

Everything is deterministic under a fixed seed: identical inputs produce
identical timestamp arrays, which is what makes campaign fingerprints
reproducible.
"""

from __future__ import annotations

import csv
import json
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "ArrivalProcess",
    "PoissonProcess",
    "DiurnalProcess",
    "BurstyProcess",
    "FlashCrowdProcess",
    "TraceProcess",
]


def _validate_request(count: int, horizon_seconds: float) -> None:
    if count < 0:
        raise ValueError(f"arrival count cannot be negative, got {count}")
    if horizon_seconds <= 0:
        raise ValueError(f"horizon_seconds must be positive, got {horizon_seconds}")


class ArrivalProcess(ABC):
    """Protocol every arrival-process generator implements.

    Implementations must be pure in ``rng``: all randomness flows through the
    generator argument, so a given seed reproduces the trace bit-for-bit.
    """

    name: str = "process"

    @abstractmethod
    def arrival_times(
        self, count: int, horizon_seconds: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Exactly ``count`` sorted arrival timestamps in ``[0, horizon]``."""

    def split_counts(
        self, counts: Sequence[int], horizon_seconds: float, rng: np.random.Generator
    ) -> List[np.ndarray]:
        """Arrival arrays for several query populations (one per model size).

        The default draws each population independently, consuming ``rng`` in
        population order -- exactly the draw pattern of the classic
        ``generate_sporadic_workload`` generator, which keeps the Poisson
        scenario byte-identical to it.  :class:`TraceProcess` overrides this
        to deal its recorded timestamps across the populations instead.
        """
        return [self.arrival_times(count, horizon_seconds, rng) for count in counts]

    def describe(self) -> Dict[str, object]:
        """JSON-friendly identity for campaign fingerprints."""
        return {"name": self.name}


class PoissonProcess(ArrivalProcess):
    """Homogeneous Poisson arrivals (uniform order statistics).

    Conditioned on the count, a homogeneous Poisson process over a horizon is
    exactly ``count`` i.i.d. uniform draws, sorted -- the same draw the
    classic sporadic generator has always made, so this process reproduces it
    bit-for-bit under the same seed.
    """

    name = "poisson"

    def arrival_times(
        self, count: int, horizon_seconds: float, rng: np.random.Generator
    ) -> np.ndarray:
        _validate_request(count, horizon_seconds)
        return np.sort(rng.uniform(0.0, horizon_seconds, size=count))


class DiurnalProcess(ArrivalProcess):
    """Inhomogeneous Poisson arrivals thinned against a day/night curve.

    The relative intensity is a raised cosine peaking at
    ``peak_time_fraction`` of the period and bottoming out at
    ``night_level`` (relative to the peak).  Candidates are drawn uniformly
    over the horizon and accepted with probability ``intensity / peak``
    (thinning); accepted arrivals therefore follow the inhomogeneous process
    conditioned on the requested count.

    ``period_seconds`` defaults to the horizon, so a one-day horizon gets one
    day/night cycle; a multi-day horizon can fix ``period_seconds=86400`` to
    repeat the daily curve.
    """

    name = "diurnal"

    def __init__(
        self,
        peak_time_fraction: float = 0.6,
        night_level: float = 0.1,
        period_seconds: Optional[float] = None,
    ):
        if not 0.0 <= peak_time_fraction <= 1.0:
            raise ValueError("peak_time_fraction must lie in [0, 1]")
        if not 0.0 < night_level <= 1.0:
            raise ValueError("night_level must lie in (0, 1] (zero would never thin-accept at night)")
        if period_seconds is not None and period_seconds <= 0:
            raise ValueError("period_seconds must be positive")
        self.peak_time_fraction = peak_time_fraction
        self.night_level = night_level
        self.period_seconds = period_seconds

    def intensity(self, times: np.ndarray, horizon_seconds: float) -> np.ndarray:
        """Relative intensity in ``[night_level, 1]`` at each timestamp."""
        period = self.period_seconds if self.period_seconds is not None else horizon_seconds
        phase = 2.0 * np.pi * (np.asarray(times, dtype=np.float64) / period - self.peak_time_fraction)
        return self.night_level + (1.0 - self.night_level) * 0.5 * (1.0 + np.cos(phase))

    def arrival_times(
        self, count: int, horizon_seconds: float, rng: np.random.Generator
    ) -> np.ndarray:
        _validate_request(count, horizon_seconds)
        accepted: List[np.ndarray] = []
        need = count
        while need > 0:
            draw = max(64, 2 * need)
            candidates = rng.uniform(0.0, horizon_seconds, size=draw)
            accept = rng.uniform(0.0, 1.0, size=draw) <= self.intensity(candidates, horizon_seconds)
            kept = candidates[accept]
            accepted.append(kept)
            need -= kept.size
        times = np.concatenate(accepted)[:count] if accepted else np.empty(0, dtype=np.float64)
        return np.sort(times)

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "peak_time_fraction": self.peak_time_fraction,
            "night_level": self.night_level,
            "period_seconds": self.period_seconds,
        }


def _sample_piecewise_constant(
    bounds: np.ndarray, rates: np.ndarray, count: int, rng: np.random.Generator
) -> np.ndarray:
    """``count`` sorted draws from a piecewise-constant intensity profile.

    ``bounds`` has one more entry than ``rates``; segment ``i`` spans
    ``[bounds[i], bounds[i+1])`` at relative rate ``rates[i]``.  Conditioned
    on the count, arrivals are i.i.d. with density proportional to the
    intensity, so the inverse-CDF over the cumulative mass is exact.
    """
    widths = np.diff(bounds)
    mass = widths * rates
    cumulative = np.concatenate([[0.0], np.cumsum(mass)])
    total = cumulative[-1]
    if total <= 0:
        raise ValueError("intensity profile has no mass over the horizon")
    if count == 0:
        return np.empty(0, dtype=np.float64)
    draws = rng.uniform(0.0, total, size=count)
    segment = np.clip(np.searchsorted(cumulative, draws, side="right") - 1, 0, len(rates) - 1)
    times = bounds[segment] + (draws - cumulative[segment]) / rates[segment]
    return np.sort(times)


class BurstyProcess(ArrivalProcess):
    """Two-state MMPP: quiet/burst regimes with exponential dwell times.

    The modulating chain alternates quiet and burst regimes whose dwell times
    are exponential with the configured means; while in a regime, arrivals
    follow a Poisson process at relative rate 1 (quiet) or ``burst_factor``
    (burst).  A realised regime path over the horizon gives a
    piecewise-constant intensity; conditioned on the count, arrivals are then
    drawn exactly from that path.

    The regime path consumes ``rng`` first (one exponential per dwell), so
    tests can reconstruct the segments with a same-seeded generator via
    :meth:`dwell_segments` and check that burst-interval arrivals really are
    denser than quiet-interval ones.
    """

    name = "bursty"

    def __init__(
        self,
        burst_factor: float = 10.0,
        mean_quiet_seconds: float = 3600.0,
        mean_burst_seconds: float = 600.0,
        start_in_burst: bool = False,
    ):
        if burst_factor <= 1.0:
            raise ValueError("burst_factor must exceed 1 (the quiet regime's relative rate)")
        if mean_quiet_seconds <= 0 or mean_burst_seconds <= 0:
            raise ValueError("dwell-time means must be positive")
        self.burst_factor = burst_factor
        self.mean_quiet_seconds = mean_quiet_seconds
        self.mean_burst_seconds = mean_burst_seconds
        self.start_in_burst = start_in_burst

    def dwell_segments(
        self, horizon_seconds: float, rng: np.random.Generator
    ) -> List[Tuple[float, float, bool]]:
        """Realised ``(start, end, is_burst)`` regime path over the horizon."""
        segments: List[Tuple[float, float, bool]] = []
        time = 0.0
        in_burst = self.start_in_burst
        while time < horizon_seconds:
            mean = self.mean_burst_seconds if in_burst else self.mean_quiet_seconds
            dwell = float(rng.exponential(mean))
            end = min(horizon_seconds, time + dwell)
            if end > time:
                segments.append((time, end, in_burst))
            time += dwell
            in_burst = not in_burst
        return segments

    def arrival_times(
        self, count: int, horizon_seconds: float, rng: np.random.Generator
    ) -> np.ndarray:
        _validate_request(count, horizon_seconds)
        segments = self.dwell_segments(horizon_seconds, rng)
        bounds = np.asarray([segments[0][0]] + [end for _, end, _ in segments], dtype=np.float64)
        rates = np.asarray(
            [self.burst_factor if is_burst else 1.0 for _, _, is_burst in segments],
            dtype=np.float64,
        )
        return _sample_piecewise_constant(bounds, rates, count, rng)

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "burst_factor": self.burst_factor,
            "mean_quiet_seconds": self.mean_quiet_seconds,
            "mean_burst_seconds": self.mean_burst_seconds,
            "start_in_burst": self.start_in_burst,
        }


class FlashCrowdProcess(ArrivalProcess):
    """Baseline Poisson plus one spike window at ``spike_factor`` x the rate.

    Models a flash crowd (a viral link, a market open): arrivals follow the
    baseline rate except inside
    ``[spike_start_fraction, spike_start_fraction + spike_duration_fraction]``
    of the horizon, where the rate jumps by ``spike_factor``.  Conditioned on
    the count, arrivals are drawn exactly from that three-segment profile.
    """

    name = "flash-crowd"

    def __init__(
        self,
        spike_start_fraction: float = 0.5,
        spike_duration_fraction: float = 0.02,
        spike_factor: float = 20.0,
    ):
        if not 0.0 <= spike_start_fraction < 1.0:
            raise ValueError("spike_start_fraction must lie in [0, 1)")
        if spike_duration_fraction <= 0:
            raise ValueError("spike_duration_fraction must be positive")
        if spike_start_fraction + spike_duration_fraction > 1.0:
            raise ValueError("spike window must end within the horizon")
        if spike_factor < 1.0:
            raise ValueError("spike_factor cannot be below the baseline rate of 1")
        self.spike_start_fraction = spike_start_fraction
        self.spike_duration_fraction = spike_duration_fraction
        self.spike_factor = spike_factor

    def spike_window(self, horizon_seconds: float) -> Tuple[float, float]:
        start = self.spike_start_fraction * horizon_seconds
        return start, start + self.spike_duration_fraction * horizon_seconds

    def arrival_times(
        self, count: int, horizon_seconds: float, rng: np.random.Generator
    ) -> np.ndarray:
        _validate_request(count, horizon_seconds)
        spike_start, spike_end = self.spike_window(horizon_seconds)
        bounds = np.asarray([0.0, spike_start, spike_end, horizon_seconds], dtype=np.float64)
        rates = np.asarray([1.0, self.spike_factor, 1.0], dtype=np.float64)
        return _sample_piecewise_constant(bounds, rates, count, rng)

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "spike_start_fraction": self.spike_start_fraction,
            "spike_duration_fraction": self.spike_duration_fraction,
            "spike_factor": self.spike_factor,
        }


class TraceProcess(ArrivalProcess):
    """Replay recorded arrival timestamps from memory, JSON or CSV.

    JSON traces are either a bare list of timestamps or an object with an
    ``"arrival_times"`` key.  CSV traces use the ``arrival_time`` column when
    a header names one, else the first column; a non-numeric first row is
    treated as a header.  Timestamps must be finite, non-negative and sorted
    -- a malformed trace raises immediately instead of misreplaying.

    Replay is deterministic by definition; the ``rng`` argument is ignored.
    When a scenario spreads queries over several model sizes, the recorded
    timestamps are dealt round-robin across the sizes in arrival order
    (:meth:`split_counts`), preserving the exact global arrival sequence.

    Replay is *strict by default*: a request must consume the whole trace,
    so a scenario whose daily volume yields fewer queries than the trace
    holds raises (as does one yielding more) instead of silently replaying
    only a prefix of the recorded timeline.  ``allow_partial=True`` opts
    into prefix replay for deliberately truncated (smoke-sized) runs.
    """

    name = "trace"

    def __init__(
        self,
        arrival_times: Optional[Sequence[float]] = None,
        path: Optional[Union[str, Path]] = None,
        allow_partial: bool = False,
    ):
        if (arrival_times is None) == (path is None):
            raise ValueError("provide exactly one of arrival_times or path")
        self.allow_partial = allow_partial
        if path is not None:
            arrival_times = self._load(Path(path))
        times = np.asarray(list(arrival_times), dtype=np.float64)
        if times.size == 0:
            raise ValueError("a trace needs at least one arrival timestamp")
        if not np.all(np.isfinite(times)) or np.any(times < 0.0):
            raise ValueError("trace timestamps must be finite and non-negative")
        if np.any(np.diff(times) < 0.0):
            raise ValueError("trace timestamps must be sorted in non-decreasing order")
        self._times = times

    @staticmethod
    def _load(path: Path) -> List[float]:
        if path.suffix.lower() == ".json":
            payload = json.loads(path.read_text())
            if isinstance(payload, dict):
                if "arrival_times" not in payload:
                    raise ValueError(f"JSON trace {path} has no 'arrival_times' key")
                payload = payload["arrival_times"]
            if not isinstance(payload, list):
                raise ValueError(f"JSON trace {path} must be a list of timestamps")
            return [float(value) for value in payload]
        if path.suffix.lower() == ".csv":
            with path.open(newline="") as handle:
                rows = [row for row in csv.reader(handle) if row]
            if not rows:
                raise ValueError(f"CSV trace {path} is empty")
            column = 0
            first = rows[0]
            try:
                float(first[column])
            except ValueError:
                header = [cell.strip().lower() for cell in first]
                column = header.index("arrival_time") if "arrival_time" in header else 0
                rows = rows[1:]
            return [float(row[column]) for row in rows]
        raise ValueError(f"unsupported trace format {path.suffix!r} (use .json or .csv)")

    @property
    def num_arrivals(self) -> int:
        return int(self._times.size)

    @property
    def times(self) -> np.ndarray:
        return self._times.copy()

    def _check_horizon(self, times: np.ndarray, horizon_seconds: float) -> np.ndarray:
        if times.size and times[-1] > horizon_seconds:
            raise ValueError(
                f"trace extends to {times[-1]} seconds, past the horizon of "
                f"{horizon_seconds} seconds"
            )
        return times

    def _take(self, count: int, context: str) -> np.ndarray:
        if count > self._times.size:
            raise ValueError(
                f"trace holds {self._times.size} arrivals but {count} were "
                f"requested{context}; size the scenario's daily volume to the trace"
            )
        if count < self._times.size and not self.allow_partial:
            raise ValueError(
                f"trace holds {self._times.size} arrivals but only {count} were "
                f"requested{context}: the trailing recorded arrivals would be "
                "silently dropped; size the scenario's daily volume to the trace "
                "or pass allow_partial=True for a deliberate prefix replay"
            )
        return self._times[:count].copy()

    def arrival_times(
        self, count: int, horizon_seconds: float, rng: np.random.Generator
    ) -> np.ndarray:
        _validate_request(count, horizon_seconds)
        return self._check_horizon(self._take(count, ""), horizon_seconds)

    def split_counts(
        self, counts: Sequence[int], horizon_seconds: float, rng: np.random.Generator
    ) -> List[np.ndarray]:
        total = sum(counts)
        times = self._check_horizon(
            self._take(total, f" across {len(counts)} model sizes"), horizon_seconds
        )
        # Deal timestamps round-robin over the populations in arrival order:
        # each population's share is a subsequence of the sorted trace, so it
        # stays sorted, and the global multiset of timestamps is preserved.
        assigned: List[List[float]] = [[] for _ in counts]
        remaining = list(counts)
        cursor = 0
        for value in times:
            while remaining[cursor] == 0:
                cursor = (cursor + 1) % len(counts)
            assigned[cursor].append(float(value))
            remaining[cursor] -= 1
            cursor = (cursor + 1) % len(counts)
        return [np.asarray(times_for_model, dtype=np.float64) for times_for_model in assigned]

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "num_arrivals": self.num_arrivals,
            "allow_partial": self.allow_partial,
        }

"""Scenarios: named, seeded workload recipes the campaign runner replays.

A :class:`Scenario` binds an :class:`~repro.scenarios.ArrivalProcess` to the
workload parameters the classic sporadic generator takes (daily volume,
batch size, model-size mix, seed, horizon) and builds a standard
:class:`~repro.workloads.SporadicWorkload` -- so the existing
:class:`~repro.serving.InferenceServer`, every backend and every policy run
unchanged over arbitrary arrival shapes.

A :class:`MixtureScenario` composes named sub-scenarios into one multi-tenant
workload: each tenant keeps its own arrival process, daily volume and
model-size mix, and the merged trace tags every query with its tenant so
per-tenant accounting survives the merge.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..chaos import ChaosConfig
from ..workloads.graph_challenge import PAPER_BATCH_SIZE, PAPER_NEURON_COUNTS
from ..workloads.sporadic import (
    InferenceQuery,
    SporadicWorkload,
    query_sizes,
    split_samples_evenly,
)
from .processes import ArrivalProcess

__all__ = [
    "ChaosScenario",
    "Scenario",
    "MixtureScenario",
    "build_scenario_workload",
]

_SECONDS_PER_DAY = 24 * 3600.0


def build_scenario_workload(
    process: ArrivalProcess,
    daily_samples: int,
    batch_size: int = PAPER_BATCH_SIZE,
    neuron_counts: Sequence[int] = PAPER_NEURON_COUNTS,
    seed: int = 13,
    horizon_seconds: float = _SECONDS_PER_DAY,
    tenant: Optional[str] = None,
) -> SporadicWorkload:
    """Build a sporadic workload whose arrivals follow ``process``.

    The sample accounting is exactly the classic generator's: the daily
    volume is spread evenly over the model sizes (no two sizes differ by more
    than one sample), each size's volume is chopped into ``batch_size``
    queries with the last query absorbing the sub-batch tail, and each size's
    arrival draw is one call into the process (sharing a single seeded
    generator in model-size order).  With :class:`~repro.scenarios.PoissonProcess`
    this reproduces ``generate_sporadic_workload`` bit-for-bit.
    """
    if daily_samples < 1:
        raise ValueError("daily_samples must be positive")
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    if not neuron_counts:
        raise ValueError("at least one neuron count is required")

    rng = np.random.default_rng(seed)
    samples_per_model = split_samples_evenly(daily_samples, len(neuron_counts))
    populated: List[Tuple[int, List[int]]] = []
    for neurons, samples_for_model in zip(neuron_counts, samples_per_model):
        sizes = query_sizes(samples_for_model, batch_size)
        if sizes:
            populated.append((int(neurons), sizes))

    arrival_arrays = process.split_counts(
        [len(sizes) for _, sizes in populated], horizon_seconds, rng
    )

    for (_, sizes), arrivals in zip(populated, arrival_arrays):
        if len(arrivals) != len(sizes):
            raise ValueError(
                f"process {process.name!r} returned {len(arrivals)} arrivals for a "
                f"population of {len(sizes)} queries"
            )
    if not populated:
        return SporadicWorkload.from_queries([], horizon_seconds=horizon_seconds)

    # Columnar construction: concatenate each size group's arrival draw and
    # per-query sizes, stable-sort once by arrival time (ties keep the
    # model-size construction order, exactly like the old per-object stable
    # sort over sequential ids), and build each query directly with its
    # final id -- byte-identical to the old build-sort-renumber loop.
    arrival_column = np.concatenate(arrival_arrays).astype(np.float64, copy=False)
    neuron_column = np.concatenate(
        [np.full(len(sizes), neurons, dtype=np.int64) for neurons, sizes in populated]
    )
    sample_column = np.concatenate(
        [np.asarray(sizes, dtype=np.int64) for _, sizes in populated]
    )
    order = np.argsort(arrival_column, kind="stable")
    arrivals_sorted = arrival_column[order].tolist()
    neurons_sorted = neuron_column[order].tolist()
    samples_sorted = sample_column[order].tolist()
    queries = [
        InferenceQuery(
            query_id=index,
            arrival_time=arrivals_sorted[index],
            neurons=neurons_sorted[index],
            samples=samples_sorted[index],
            tenant=tenant,
        )
        for index in range(len(arrivals_sorted))
    ]
    return SporadicWorkload.from_queries(queries, horizon_seconds=horizon_seconds)


@dataclass(frozen=True)
class Scenario:
    """A named, seeded workload recipe: one arrival process, one tenant."""

    name: str
    process: ArrivalProcess
    daily_samples: int
    batch_size: int = PAPER_BATCH_SIZE
    neuron_counts: Tuple[int, ...] = PAPER_NEURON_COUNTS
    seed: int = 13
    horizon_seconds: float = _SECONDS_PER_DAY
    #: tenant tag stamped on every query; ``None`` leaves queries untagged
    #: (mixtures default it to the scenario name).
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a non-empty name")
        object.__setattr__(self, "neuron_counts", tuple(int(n) for n in self.neuron_counts))

    @property
    def tenants(self) -> Tuple[str, ...]:
        """Tenant tags this scenario serves (empty for untagged workloads).

        Mirrors :attr:`MixtureScenario.tenants` so callers -- the deployment
        planner validating per-tenant SLO overrides -- can treat single and
        mixture scenarios uniformly.
        """
        return (self.tenant,) if self.tenant is not None else ()

    def build(self) -> SporadicWorkload:
        """Materialise the workload (deterministic under the scenario seed)."""
        return build_scenario_workload(
            self.process,
            daily_samples=self.daily_samples,
            batch_size=self.batch_size,
            neuron_counts=self.neuron_counts,
            seed=self.seed,
            horizon_seconds=self.horizon_seconds,
            tenant=self.tenant,
        )

    def describe(self) -> Dict[str, object]:
        """JSON-friendly identity for campaign fingerprints."""
        return {
            "name": self.name,
            "process": self.process.describe(),
            "daily_samples": self.daily_samples,
            "batch_size": self.batch_size,
            "neuron_counts": list(self.neuron_counts),
            "seed": self.seed,
            "horizon_seconds": self.horizon_seconds,
            "tenant": self.tenant,
        }


@dataclass(frozen=True)
class MixtureScenario:
    """Multi-tenant composition of named sub-scenarios into one workload.

    Each component keeps its own arrival process, daily volume, batch size
    and model-size mix; the merged workload interleaves every tenant's
    arrivals on one shared timeline (stable-sorted by arrival time, query ids
    reassigned globally) and stamps each query with its tenant -- the
    component's explicit ``tenant`` tag, or its scenario name.  Per-tenant
    query populations are preserved exactly: grouping the merged trace by
    tenant recovers each component's queries.
    """

    name: str
    components: Tuple[Scenario, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a mixture needs a non-empty name")
        object.__setattr__(self, "components", tuple(self.components))
        if not self.components:
            raise ValueError("a mixture needs at least one component scenario")
        tenants = [component.tenant or component.name for component in self.components]
        if len(set(tenants)) != len(tenants):
            raise ValueError(f"mixture tenants must be distinct, got {tenants}")

    @property
    def tenants(self) -> Tuple[str, ...]:
        return tuple(component.tenant or component.name for component in self.components)

    @property
    def horizon_seconds(self) -> float:
        return max(component.horizon_seconds for component in self.components)

    def build(self) -> SporadicWorkload:
        queries: List[InferenceQuery] = []
        for component, tenant in zip(self.components, self.tenants):
            workload = component.build()
            queries.extend(replace(query, tenant=tenant) for query in workload.queries)
        # Stable argsort over the arrival column replaces the per-object sort;
        # ties keep component order (components are concatenated in declaration
        # order, each already arrival-sorted), matching the old stable sort.
        arrivals = np.fromiter(
            (query.arrival_time for query in queries), np.float64, count=len(queries)
        )
        order = np.argsort(arrivals, kind="stable")
        queries = [replace(queries[j], query_id=i) for i, j in enumerate(order.tolist())]
        return SporadicWorkload.from_queries(queries, horizon_seconds=self.horizon_seconds)

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "components": [component.describe() for component in self.components],
            "tenants": list(self.tenants),
        }


@dataclass(frozen=True)
class ChaosScenario:
    """A scenario replayed under a fault plan: base workload + chaos config.

    Wraps any scenario (single or mixture) with a
    :class:`~repro.chaos.ChaosConfig`; the campaign runner picks the config
    up via the ``chaos`` attribute whenever the cell's chaos-set entry does
    not already force one.  The workload itself is untouched -- ``build()``
    delegates to the base scenario, so a chaos scenario and its base produce
    identical arrival traces and differ only in the faults injected while
    serving them.
    """

    base: object
    chaos: ChaosConfig
    #: display name; defaults to ``"{base.name}+chaos"``.
    name: str = ""

    def __post_init__(self) -> None:
        if not callable(getattr(self.base, "build", None)):
            raise TypeError(f"base scenario {self.base!r} has no build() method")
        if not isinstance(self.chaos, ChaosConfig):
            raise TypeError("chaos must be a ChaosConfig")
        if not self.name:
            base_name = getattr(self.base, "name", None)
            if not base_name:
                raise ValueError("base scenario has no name; pass an explicit name")
            object.__setattr__(self, "name", f"{base_name}+chaos")

    @property
    def tenants(self) -> Tuple[str, ...]:
        return tuple(getattr(self.base, "tenants", ()))

    @property
    def horizon_seconds(self) -> float:
        return float(getattr(self.base, "horizon_seconds", _SECONDS_PER_DAY))

    def build(self) -> SporadicWorkload:
        return self.base.build()  # type: ignore[attr-defined]

    def describe(self) -> Dict[str, object]:
        base_describe = getattr(self.base, "describe", None)
        return {
            "name": self.name,
            "base": base_describe() if callable(base_describe) else repr(self.base),
            "chaos": self.chaos.describe(),
        }

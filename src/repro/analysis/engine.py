"""detlint driver: file collection, pragmas, allowlist, rule dispatch.

The engine is deliberately free of repo-specific knowledge beyond *path
roles* (which invariant applies where).  Rules declare what they enforce via
:class:`~repro.analysis.rules.Rule`; this module owns everything around a
rule run:

* **File collection** -- directories are walked in sorted order (the linter
  obeys its own determinism contract) and ``detlint_fixtures`` corpora are
  skipped unless a fixture file is named explicitly.
* **Roles** -- a file's path decides which rules apply (``src/repro`` is a
  simulated path, ``repro/cloud`` hosts injector gates, the campaign /
  planner / replaycore / serving.server modules compute fingerprints).  A
  fixture can opt into a role with a ``# detlint: treat-as <path>``
  directive in its first lines.
* **Pragmas** -- an ``allow[DET001,DET007] reason`` comment (prefixed with
  the linter's name and a colon) on the finding's line, or the line directly
  above, suppresses those rules there.  A pragma with no reason, or naming
  an unknown rule id, is itself a finding (``DET000``): suppressions must be
  auditable.
* **Allowlist** -- the curated table in :mod:`repro.analysis.allowlist`
  retires the handful of repo-wide legitimate exceptions (with written
  rationale) without sprinkling pragmas over stable modules.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "FileRoles",
    "LintConfig",
    "LintContext",
    "LintResult",
    "collect_files",
    "lint_file",
    "lint_paths",
    "lint_source",
]

META_RULE = "DET000"

_PRAGMA_RE = re.compile(r"#\s*detlint:\s*allow\[([^\]]*)\]\s*(.*)$")
_TREAT_AS_RE = re.compile(r"#\s*detlint:\s*treat-as\s+(\S+)")
_RULE_ID_RE = re.compile(r"^DET\d{3}$")

#: directory names never descended into when walking a directory argument.
#: ``detlint_fixtures`` holds deliberately-firing corpus files for the
#: linter's own tests; they are linted only when named explicitly.
EXCLUDED_DIR_PARTS = frozenset(
    {"__pycache__", ".git", ".pytest_cache", "detlint_fixtures", ".venv"}
)

#: module suffixes that compute fingerprints (DET004's scope).  The planner
#: package is covered wholesale by :func:`FileRoles.from_path`.
FINGERPRINT_SUFFIXES = (
    "repro/experiments/campaign.py",
    "repro/serving/replaycore.py",
    "repro/serving/server.py",
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
        }


@dataclass(frozen=True)
class FileRoles:
    """Which invariant classes apply to a file (derived from its path)."""

    in_repro: bool = False
    fingerprint: bool = False
    cloud_service: bool = False

    @staticmethod
    def from_path(path: str) -> "FileRoles":
        p = path.replace(os.sep, "/")
        anchored = "/" + p
        in_repro = "/src/repro/" in anchored or p.startswith("repro/")
        fingerprint = in_repro and (
            p.endswith(FINGERPRINT_SUFFIXES) or "repro/planner/" in p
        )
        cloud = in_repro and "repro/cloud/" in p
        return FileRoles(in_repro=in_repro, fingerprint=fingerprint, cloud_service=cloud)


@dataclass(frozen=True)
class LintConfig:
    """Immutable run configuration (CLI flags map 1:1 onto fields)."""

    select: Tuple[str, ...] = ()
    ignore: Tuple[str, ...] = ()
    use_allowlist: bool = True
    use_pragmas: bool = True

    def rule_enabled(self, rule_id: str) -> bool:
        if self.select and rule_id not in self.select:
            return False
        return rule_id not in self.ignore


@dataclass
class _Pragma:
    line: int
    rules: Tuple[str, ...]
    reason: str


class _AliasMap:
    """Resolve ``Name``/``Attribute`` chains to canonical dotted paths.

    ``import numpy as np`` makes ``np.random.rand`` resolve to
    ``numpy.random.rand``; ``from time import perf_counter as pc`` makes a
    bare ``pc`` resolve to ``time.perf_counter``.  Relative imports are
    intentionally unresolved (repo-internal modules are never lint targets
    by canonical name).
    """

    def __init__(self, tree: ast.AST) -> None:
        self.names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.names[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".", 1)[0]
                        self.names[head] = head
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    self.names[bound] = f"{node.module}.{alias.name}"

    def resolve(self, expr: ast.AST) -> Optional[str]:
        parts: List[str] = []
        node = expr
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = self.names.get(node.id)
        if head is None:
            return None
        parts.append(head)
        return ".".join(reversed(parts))


@dataclass
class LintContext:
    """Everything a rule may inspect about one file."""

    path: str
    effective_path: str
    roles: FileRoles
    tree: ast.AST
    lines: Sequence[str]
    aliases: _AliasMap
    parents: Mapping[ast.AST, ast.AST]

    def resolve(self, expr: ast.AST) -> Optional[str]:
        return self.aliases.resolve(expr)

    def parent_of(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(node)


@dataclass
class LintResult:
    """Aggregated outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    allowlisted: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule] = out.get(finding.rule, 0) + 1
        return dict(sorted(out.items()))

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in self.findings],
            "counts": self.counts(),
            "suppressed_count": len(self.suppressed),
            "allowlisted_count": len(self.allowlisted),
        }


def _parse_pragmas(path: str, lines: Sequence[str]) -> Tuple[List[_Pragma], List[Finding]]:
    """Extract suppression pragmas; malformed pragmas become DET000 findings."""
    from .rules import ALL_RULE_IDS

    pragmas: List[_Pragma] = []
    meta: List[Finding] = []
    for lineno, text in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        ids = tuple(part.strip() for part in match.group(1).split(",") if part.strip())
        reason = match.group(2).strip()
        bad = [rid for rid in ids if not _RULE_ID_RE.match(rid) or rid not in ALL_RULE_IDS]
        if not ids or bad:
            meta.append(
                Finding(
                    rule=META_RULE,
                    path=path,
                    line=lineno,
                    col=match.start(),
                    message=(
                        f"pragma names unknown rule id(s) {', '.join(bad)}"
                        if bad
                        else "pragma must name at least one rule id, e.g. allow[DET001]"
                    ),
                    symbol="pragma",
                )
            )
            continue
        if not reason:
            meta.append(
                Finding(
                    rule=META_RULE,
                    path=path,
                    line=lineno,
                    col=match.start(),
                    message="suppression pragma requires a written reason after the bracket",
                    symbol="pragma",
                )
            )
            continue
        pragmas.append(_Pragma(line=lineno, rules=ids, reason=reason))
    return pragmas, meta


def _treat_as(lines: Sequence[str]) -> Optional[str]:
    for text in lines[:10]:
        match = _TREAT_AS_RE.search(text)
        if match:
            return match.group(1)
    return None


def _build_parents(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def lint_source(source: str, path: str, config: LintConfig = LintConfig()) -> LintResult:
    """Lint one in-memory source text (the API the fixture tests drive)."""
    from .allowlist import allowlisted
    from .rules import ALL_RULES

    result = LintResult(files_checked=1)
    display = path.replace(os.sep, "/")
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                rule=META_RULE,
                path=display,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"file does not parse: {exc.msg}",
                symbol="syntax",
            )
        )
        return result

    pragmas, meta_findings = _parse_pragmas(display, lines)
    if not config.use_pragmas:
        pragmas = []
    effective = _treat_as(lines) or display
    ctx = LintContext(
        path=display,
        effective_path=effective,
        roles=FileRoles.from_path(effective),
        tree=tree,
        lines=lines,
        aliases=_AliasMap(tree),
        parents=_build_parents(tree),
    )

    raw: List[Finding] = list(meta_findings)
    for rule_cls in ALL_RULES:
        if not config.rule_enabled(rule_cls.id):
            continue
        rule = rule_cls()
        if not rule.applies(ctx):
            continue
        raw.extend(rule.check(ctx))

    suppress_map: Dict[int, Tuple[str, ...]] = {}
    for pragma in pragmas:
        for covered in (pragma.line, pragma.line + 1):
            existing = suppress_map.get(covered, ())
            suppress_map[covered] = existing + pragma.rules

    for finding in sorted(raw, key=lambda f: (f.line, f.col, f.rule)):
        if finding.rule != META_RULE and finding.rule in suppress_map.get(finding.line, ()):
            result.suppressed.append(finding)
        elif config.use_allowlist and allowlisted(finding):
            result.allowlisted.append(finding)
        else:
            result.findings.append(finding)
    return result


def lint_file(path: str, config: LintConfig = LintConfig()) -> LintResult:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    display = os.path.relpath(path) if os.path.isabs(path) else path
    return lint_source(source, display, config)


def collect_files(paths: Iterable[str]) -> List[str]:
    """Expand path arguments into a sorted, de-duplicated .py file list."""
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs if d not in EXCLUDED_DIR_PARTS and not d.startswith(".")
            )
            for name in sorted(files):
                if name.endswith(".py"):
                    out.append(os.path.join(root, name))
    seen = set()
    unique: List[str] = []
    for path in out:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def lint_paths(paths: Iterable[str], config: LintConfig = LintConfig()) -> LintResult:
    """Lint every .py file under ``paths``; the CLI's and meta-test's entry."""
    total = LintResult()
    for path in collect_files(paths):
        single = lint_file(path, config)
        total.findings.extend(single.findings)
        total.suppressed.extend(single.suppressed)
        total.allowlisted.extend(single.allowlisted)
        total.files_checked += 1
    total.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return total

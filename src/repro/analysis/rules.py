"""detlint rules: one ``NodeVisitor`` subclass per determinism invariant.

Every rule has a stable id (``DET00x``), a one-line title, and an
``invariant`` paragraph naming the contract it enforces (these feed
``--list-rules`` and the ROADMAP's rule table).  Rules are *static
approximations*: they pattern-match the idioms this repo actually uses, and
anything legitimately outside the pattern is suppressed with a
pragma-with-reason or a curated allowlist entry -- never by weakening the
rule.

To add a rule: subclass :class:`Rule`, give it the next free id, implement
``visit_*`` methods that call :meth:`Rule.report`, append the class to
``ALL_RULES``, add a firing + non-firing fixture pair under
``tests/detlint_fixtures/`` and a row to the ROADMAP table.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .engine import Finding, LintContext

__all__ = ["Rule", "ALL_RULES", "ALL_RULE_IDS"]

#: wall-clock entry points that must never run on a simulated path.
WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: numpy.random attributes that do NOT touch the module-level global state.
SEEDABLE_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)

#: constructors whose result is a mutable container (DET007).
MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})
MUTABLE_COLLECTIONS = frozenset(
    {
        "collections.deque",
        "collections.defaultdict",
        "collections.OrderedDict",
        "collections.Counter",
        "collections.ChainMap",
    }
)

#: method names that mutate their receiver in place (DET005's
#: mutate-before-injection check).
MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "update",
        "extend",
        "insert",
        "setdefault",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "discard",
        "clear",
    }
)

#: container-variable names that hold campaign/planner cell factories.
FACTORY_NAME_HINTS = ("backend", "factor", "polic", "chaos", "scenario")

#: call targets whose arguments register factories (DET006).
FACTORY_CONSUMERS = frozenset({"Campaign", "SearchSpace"})


class Rule(ast.NodeVisitor):
    """Base class: a rule visits one file's AST and reports findings."""

    id: str = ""
    title: str = ""
    invariant: str = ""

    def __init__(self) -> None:
        self.ctx: Optional[LintContext] = None
        self._findings: List[Finding] = []
        self._seen: Set[Tuple[int, int, str]] = set()

    def applies(self, ctx: LintContext) -> bool:
        """Whether this rule runs on ``ctx`` at all (path-role scoping)."""
        return True

    def check(self, ctx: LintContext) -> List[Finding]:
        self.ctx = ctx
        self._findings = []
        self._seen = set()
        self.visit(ctx.tree)
        return self._findings

    def report(self, node: ast.AST, message: str, symbol: str = "") -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        key = (line, col, message)
        if key in self._seen:
            return
        self._seen.add(key)
        assert self.ctx is not None
        self._findings.append(
            Finding(
                rule=self.id,
                path=self.ctx.path,
                line=line,
                col=col,
                message=message,
                symbol=symbol,
            )
        )


def _dotted_tail(expr: ast.AST) -> Optional[str]:
    """Textual attribute chain (``self._faults.injector``) without resolution."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif not parts:
        return None
    return ".".join(reversed(parts))


class WallClockRule(Rule):
    id = "DET001"
    title = "wall-clock call on a simulated path"
    invariant = (
        "Simulated time flows only from VirtualClock / at_time translation; a "
        "time.time()/perf_counter()/datetime.now() call inside src/repro "
        "leaks host wall-clock into results and breaks replay byte-identity. "
        "Wall-clock *reporting* sites (campaign wall_seconds) live in the "
        "curated allowlist."
    )

    def applies(self, ctx: LintContext) -> bool:
        return ctx.roles.in_repro

    def visit_Call(self, node: ast.Call) -> None:
        assert self.ctx is not None
        resolved = self.ctx.resolve(node.func)
        if resolved in WALLCLOCK_CALLS:
            self.report(
                node,
                f"wall-clock call {resolved}() on a simulated path; thread a "
                "VirtualClock / at_time instead",
                symbol=resolved.rsplit(".", 1)[-1],
            )
        self.generic_visit(node)


class UnseededRandomnessRule(Rule):
    id = "DET002"
    title = "unseeded or global-state randomness"
    invariant = (
        "All randomness flows through an explicitly seeded "
        "np.random.default_rng(seed) threaded by the caller.  Module-level "
        "random.* / np.random.* state and unseeded default_rng() make "
        "results depend on process history and defeat seeded replay."
    )

    def visit_Call(self, node: ast.Call) -> None:
        assert self.ctx is not None
        resolved = self.ctx.resolve(node.func)
        if resolved:
            if resolved == "numpy.random.default_rng":
                unseeded = not node.args or (
                    isinstance(node.args[0], ast.Constant) and node.args[0].value is None
                )
                if unseeded:
                    self.report(
                        node,
                        "default_rng() without a seed draws OS entropy; pass an "
                        "explicit seed",
                        symbol="default_rng",
                    )
            elif resolved.startswith("random."):
                self.report(
                    node,
                    f"stdlib {resolved}() uses hidden global RNG state; use a "
                    "seeded np.random.default_rng(seed) generator",
                    symbol=resolved.rsplit(".", 1)[-1],
                )
            elif resolved.startswith("numpy.random."):
                attr = resolved.split(".", 2)[2].split(".", 1)[0]
                if attr not in SEEDABLE_NP_RANDOM:
                    self.report(
                        node,
                        f"{resolved}() draws from numpy's module-level RNG "
                        "state; use a seeded default_rng(seed) generator",
                        symbol=attr,
                    )
        self.generic_visit(node)


class ShadowedRngRule(Rule):
    id = "DET003"
    title = "function with an rng parameter constructs its own generator"
    invariant = (
        "Scenario/chaos code threads ONE generator through every consumer in "
        "declaration order; a function that accepts `rng` but builds its own "
        "default_rng()/RandomState() forks the stream and silently decouples "
        "its draws from the campaign seed."
    )

    _CONSTRUCTORS = frozenset(
        {"numpy.random.default_rng", "numpy.random.RandomState", "random.Random"}
    )

    def _check_function(self, node: ast.AST) -> None:
        args = node.args
        params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if "rng" not in params:
            return
        assert self.ctx is not None
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                resolved = self.ctx.resolve(sub.func)
                if resolved in self._CONSTRUCTORS:
                    self.report(
                        sub,
                        "function accepts an rng parameter but constructs "
                        f"{resolved}(); use the passed generator",
                        symbol=resolved.rsplit(".", 1)[-1],
                    )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)


class UnsortedIterationRule(Rule):
    id = "DET004"
    title = "unsorted set/keys/listdir iteration in a fingerprint module"
    invariant = (
        "Campaign/planner/replaycore/serving.server summaries are hashed into "
        "fingerprints; iterating set(...), dict.keys() or os.listdir() there "
        "bakes hash-seed / insertion / filesystem order into the payload.  "
        "Wrap the iterable in sorted(...)."
    )

    _WRAPPERS = frozenset({"tuple", "list", "iter", "enumerate"})

    def applies(self, ctx: LintContext) -> bool:
        return ctx.roles.fingerprint

    def check(self, ctx: LintContext) -> List[Finding]:
        self.ctx = ctx
        self._findings = []
        self._seen = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                self._check_iterable(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    self._check_iterable(gen.iter)
            elif isinstance(node, ast.Call):
                name = _dotted_tail(node.func)
                if name in self._WRAPPERS and node.args:
                    self._check_iterable(node.args[0])
        return self._findings

    def _check_iterable(self, expr: ast.AST) -> None:
        assert self.ctx is not None
        if isinstance(expr, (ast.Set, ast.SetComp)):
            self.report(expr, "iteration over a set literal without sorted(...)", symbol="set")
            return
        if not isinstance(expr, ast.Call):
            return
        name = _dotted_tail(expr.func)
        if name in ("set", "frozenset"):
            self.report(
                expr,
                f"iteration over {name}(...) without sorted(...): set order "
                "depends on the hash seed",
                symbol=name,
            )
            return
        if isinstance(expr.func, ast.Attribute) and expr.func.attr == "keys":
            self.report(
                expr,
                "iteration over .keys() without sorted(...): key order is "
                "insertion history, not a stable contract",
                symbol="keys",
            )
            return
        resolved = self.ctx.resolve(expr.func)
        if resolved in ("os.listdir", "os.scandir"):
            self.report(
                expr,
                f"iteration over {resolved}() without sorted(...): directory "
                "order is filesystem-dependent",
                symbol=resolved.rsplit(".", 1)[-1],
            )


class InjectorGateRule(Rule):
    id = "DET005"
    title = "injector use without the `is not None` gate"
    invariant = (
        "Chaos-off must be byte-identical: every fault-injection point in a "
        "cloud service is a single `if injector is not None` check placed "
        "after the latency advance and before any state mutation.  An "
        "ungated injector call, or instance state mutated before the check, "
        "breaks the chaos-off contract or leaks partial state into faulted "
        "calls."
    )

    #: dotted-tail last segment of the optional hook this rule gates on.
    #: Subclasses re-target the whole machinery at another hook (DET008
    #: checks the telemetry ``tracer`` with the identical contract).
    hook_attr = "injector"
    #: how the feature-off mode is named in findings ("chaos-off", ...).
    off_label = "chaos-off"
    #: how the gate is named in mutation-before-gate findings.
    gate_noun = "injection check"

    def applies(self, ctx: LintContext) -> bool:
        return ctx.roles.cloud_service

    def check(self, ctx: LintContext) -> List[Finding]:
        self.ctx = ctx
        self._findings = []
        self._seen = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(node)
        return self._findings

    @classmethod
    def _is_injector_expr(cls, expr: ast.AST) -> bool:
        tail = _dotted_tail(expr)
        return tail is not None and tail.split(".")[-1] == cls.hook_attr

    @classmethod
    def _gate_exprs(cls, test: ast.AST) -> List[str]:
        """Dumps of injector expressions guarded by ``<expr> is not None``."""
        comparisons = [test]
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            comparisons = list(test.values)
        gated: List[str] = []
        for comp in comparisons:
            if (
                isinstance(comp, ast.Compare)
                and len(comp.ops) == 1
                and isinstance(comp.ops[0], ast.IsNot)
                and isinstance(comp.comparators[0], ast.Constant)
                and comp.comparators[0].value is None
                and cls._is_injector_expr(comp.left)
            ):
                gated.append(ast.dump(comp.left))
        return gated

    @staticmethod
    def _field_of(parent: ast.AST, child: ast.AST) -> Optional[str]:
        for name, value in ast.iter_fields(parent):
            if value is child:
                return name
            if isinstance(value, list) and any(item is child for item in value):
                return name
        return None

    def _check_function(self, func: ast.AST) -> None:
        assert self.ctx is not None
        gates: List[Tuple[ast.If, List[str]]] = []
        for node in self._walk_in_scope(func):
            if isinstance(node, ast.If):
                exprs = self._gate_exprs(node.test)
                if exprs:
                    gates.append((node, exprs))

        for node in self._walk_in_scope(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and self._is_injector_expr(node.func.value)
            ):
                if not self._is_gated(node, node.func.value, gates, func):
                    self.report(
                        node,
                        f"{self.hook_attr} method called outside an `if "
                        f"{self.hook_attr} is not None` gate; {self.off_label} "
                        "would crash or diverge here",
                        symbol=node.func.attr,
                    )

        if gates:
            first_gate_line = min(g.lineno for g, _ in gates)
            self._check_mutations_before(func, first_gate_line)

    @staticmethod
    def _walk_in_scope(func: ast.AST):
        """Walk a function body without descending into nested functions."""
        stack = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                stack.extend(ast.iter_child_nodes(node))

    def _is_gated(
        self,
        use: ast.AST,
        injector_expr: ast.AST,
        gates: List[Tuple[ast.If, List[str]]],
        func: ast.AST,
    ) -> bool:
        assert self.ctx is not None
        want = ast.dump(injector_expr)
        node: ast.AST = use
        while node is not func:
            parent = self.ctx.parent_of(node)
            if parent is None:
                return False
            if isinstance(parent, ast.If) and self._field_of(parent, node) == "body":
                for gate_node, exprs in gates:
                    if gate_node is parent and want in exprs:
                        return True
            node = parent
        return False

    @staticmethod
    def _is_self_attribute(expr: ast.AST) -> bool:
        node = expr
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return isinstance(node, ast.Name) and node.id == "self"

    def _check_mutations_before(self, func: ast.AST, gate_line: int) -> None:
        for node in self._walk_in_scope(func):
            line = getattr(node, "lineno", gate_line)
            if line >= gate_line:
                continue
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)) and self._is_self_attribute(target):
                        self.report(
                            node,
                            f"instance state mutated before the {self.gate_noun}; "
                            f"a {self.off_label} divergence or partial mutation "
                            "could be observed",
                            symbol="mutation-before-gate",
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_METHODS
                and self._is_self_attribute(node.func.value)
                and isinstance(node.func.value, ast.Attribute)
            ):
                self.report(
                    node,
                    f"container on self mutated before the {self.gate_noun}; "
                    f"a {self.off_label} divergence or partial mutation "
                    "could be observed",
                    symbol="mutation-before-gate",
                )


class TracerGateRule(InjectorGateRule):
    id = "DET008"
    title = "tracer use without the `is not None` gate"
    invariant = (
        "Telemetry-off must be byte-identical: every instrumentation point "
        "in a cloud service is a single `if tracer is not None` check, and "
        "no instance state may be mutated before the telemetry decision.  "
        "An ungated tracer call, or a mutation before the gate, breaks the "
        "telemetry-off fingerprint contract."
    )

    hook_attr = "tracer"
    off_label = "telemetry-off"
    gate_noun = "telemetry gate"


class ArbiterGateRule(InjectorGateRule):
    id = "DET009"
    title = "arbiter use without the `is not None` gate"
    invariant = (
        "Contention-off must be byte-identical: every contention hook in a "
        "cloud service is a single `if arbiter is not None` check, and no "
        "instance state may be mutated before the contention decision.  An "
        "ungated arbiter call, or a mutation before the gate, breaks the "
        "serialized-replay fingerprint contract of the concurrency engine."
    )

    hook_attr = "arbiter"
    off_label = "contention-off"
    gate_noun = "contention gate"


class ClosureFactoryRule(Rule):
    id = "DET006"
    title = "lambda/closure registered as a campaign or planner factory"
    invariant = (
        "Process-pool campaigns pickle the cell dispatch, so every "
        "scenario/backend/policy/chaos factory must be a named top-level "
        "callable (the serving.factories Spec dataclasses).  Lambdas and "
        "nested defs pickle nowhere and close over shared mutable state."
    )

    def check(self, ctx: LintContext) -> List[Finding]:
        self.ctx = ctx
        self._findings = []
        self._seen = set()
        self._check_scope(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_scope(node)
        return self._findings

    @staticmethod
    def _own_statements(scope: ast.AST):
        """Statements belonging to this scope (not nested function bodies)."""
        stack = list(scope.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            for child in ast.iter_child_nodes(node):
                stack.append(child)

    @staticmethod
    def _direct_lambdas(expr: ast.AST) -> List[ast.Lambda]:
        """Lambdas in *factory position*: the expression itself, a dict value,
        or a list/tuple/set element -- recursively through display literals
        only.  A lambda buried inside a constructor call (e.g. a
        ``model_builder=lambda ...`` argument of a backend instance) is a
        builder argument, not a registered cell factory, and is not collected.
        """
        out: List[ast.Lambda] = []
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                out.append(node)
            elif isinstance(node, ast.Dict):
                stack.extend(node.values)
            elif isinstance(node, (ast.List, ast.Tuple, ast.Set)):
                stack.extend(node.elts)
        return out

    def _check_scope(self, scope: ast.AST) -> None:
        is_module = isinstance(scope, ast.Module)
        tainted: Set[str] = set()
        nested_defs: Set[str] = set()
        flagged_at_binding: Set[str] = set()

        for node in self._own_statements(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and not is_module:
                nested_defs.add(node.name)
            if isinstance(node, ast.Assign):
                lambdas = self._direct_lambdas(node.value)
                for target in node.targets:
                    if isinstance(target, ast.Name) and lambdas:
                        tainted.add(target.id)
                        if any(hint in target.id.lower() for hint in FACTORY_NAME_HINTS):
                            flagged_at_binding.add(target.id)
                            for lam in lambdas:
                                self.report(
                                    lam,
                                    f"lambda stored in factory container "
                                    f"{target.id!r}; use a named top-level "
                                    "callable (picklability contract)",
                                    symbol=target.id,
                                )
                    elif isinstance(target, ast.Subscript) and lambdas:
                        base = _dotted_tail(target.value)
                        if isinstance(target.value, ast.Name):
                            tainted.add(target.value.id)
                            flagged_at_binding.add(target.value.id)
                        for lam in lambdas:
                            self.report(
                                lam,
                                f"lambda registered into {base or 'container'}"
                                "[...]; use a named top-level callable "
                                "(picklability contract)",
                                symbol=base or "subscript",
                            )

        for node in self._own_statements(scope):
            if isinstance(node, ast.Call):
                callee = _dotted_tail(node.func)
                if callee is None or callee.split(".")[-1] not in FACTORY_CONSUMERS:
                    continue
                consumer = callee.split(".")[-1]
                arg_exprs = list(node.args) + [kw.value for kw in node.keywords]
                for expr in arg_exprs:
                    for lam in self._direct_lambdas(expr):
                        self.report(
                            lam,
                            f"lambda passed to {consumer}(...) as a factory; "
                            "use a named top-level callable (picklability "
                            "contract)",
                            symbol=consumer,
                        )
                    for sub in ast.walk(expr):
                        if not isinstance(sub, ast.Name):
                            continue
                        if sub.id in flagged_at_binding:
                            continue  # already reported where the lambda was stored
                        if sub.id in tainted or sub.id in nested_defs:
                            kind = "closure" if sub.id in nested_defs else "lambda container"
                            self.report(
                                sub,
                                f"{kind} {sub.id!r} passed to {consumer}(...); "
                                "factories must be named top-level callables "
                                "(picklability contract)",
                                symbol=sub.id,
                            )


class ModuleMutableStateRule(Rule):
    id = "DET007"
    title = "module-level mutable container"
    invariant = (
        "Campaign cells run in thread/process pools; module-level mutable "
        "containers are the shared-state race class.  Every survivor must be "
        "an audited allowlist entry (read-only table or content-addressed "
        "cache whose values are deterministic functions of their keys)."
    )

    def applies(self, ctx: LintContext) -> bool:
        return ctx.roles.in_repro

    _EXEMPT_NAMES = frozenset({"__all__"})
    _CACHE_CLASS_SUFFIXES = ("Memo", "Cache", "Registry")

    def check(self, ctx: LintContext) -> List[Finding]:
        self.ctx = ctx
        self._findings = []
        self._seen = set()
        self._check_statements(ctx.tree.body)
        return self._findings

    def _check_statements(self, statements) -> None:
        for node in statements:
            if isinstance(node, ast.If):
                self._check_statements(node.body)
                self._check_statements(node.orelse)
            elif isinstance(node, ast.Try):
                self._check_statements(node.body)
                self._check_statements(node.orelse)
                self._check_statements(node.finalbody)
                for handler in node.handlers:
                    self._check_statements(handler.body)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._check_binding(target.id, node.value, node)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    self._check_binding(node.target.id, node.value, node)

    def _check_binding(self, name: str, value: ast.AST, node: ast.AST) -> None:
        if name in self._EXEMPT_NAMES:
            return
        reason = self._mutability_of(value)
        if reason is not None:
            self.report(
                node,
                f"module-level mutable container {name!r} ({reason}); shared "
                "across parallel campaign cells -- make it immutable or add "
                "an audited allowlist entry",
                symbol=name,
            )

    def _mutability_of(self, value: ast.AST) -> Optional[str]:
        assert self.ctx is not None
        if isinstance(value, (ast.List, ast.ListComp)):
            return "list"
        if isinstance(value, (ast.Dict, ast.DictComp)):
            return "dict"
        if isinstance(value, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(value, ast.Call):
            tail = _dotted_tail(value.func)
            if tail in MUTABLE_CONSTRUCTORS:
                return tail
            resolved = self.ctx.resolve(value.func)
            if resolved in MUTABLE_COLLECTIONS:
                return resolved.rsplit(".", 1)[-1]
            if tail is not None:
                leaf = tail.rsplit(".", 1)[-1]
                if any(leaf.endswith(suffix) for suffix in self._CACHE_CLASS_SUFFIXES):
                    return f"{leaf} instance"
        return None


ALL_RULES: Tuple[type, ...] = (
    WallClockRule,
    UnseededRandomnessRule,
    ShadowedRngRule,
    UnsortedIterationRule,
    InjectorGateRule,
    ClosureFactoryRule,
    ModuleMutableStateRule,
    TracerGateRule,
    ArbiterGateRule,
)

ALL_RULE_IDS: frozenset = frozenset({"DET000"} | {rule.id for rule in ALL_RULES})


def rule_table() -> List[Dict[str, str]]:
    """Rows for ``--list-rules`` and documentation."""
    return [
        {"id": rule.id, "title": rule.title, "invariant": rule.invariant}
        for rule in ALL_RULES
    ]

"""Curated allowlist: the audited, legitimate exceptions to detlint rules.

Every entry carries a written rationale -- this table IS the audit trail for
the handful of sites where a rule's invariant is deliberately not violated
in spirit (read-only tables, content-addressed caches, wall-clock that only
*reports*).  An entry matches a finding by (rule id, path suffix, symbol),
so it survives line-number churn; prefer inline pragmas for one-off or
test-local exceptions and this table for stable, repo-wide ones.

Policy: an entry may only be added when the rationale explains WHY the
determinism contract still holds (never "too noisy to fix").
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Tuple

from .engine import Finding

__all__ = ["AllowlistEntry", "ALLOWLIST", "allowlisted"]


@dataclass(frozen=True)
class AllowlistEntry:
    rule: str
    path_suffix: str
    symbol: str
    rationale: str


ALLOWLIST: Tuple[AllowlistEntry, ...] = (
    AllowlistEntry(
        rule="DET001",
        path_suffix="repro/experiments/campaign.py",
        symbol="perf_counter",
        rationale=(
            "Wall-clock *reporting* only: CellResult.wall_seconds measures how "
            "long a cell took to replay and never enters ServingReport.summary() "
            "or any fingerprint payload (the fingerprint policy hashes simulated "
            "values only)."
        ),
    ),
    AllowlistEntry(
        rule="DET007",
        path_suffix="repro/workloads/graph_challenge.py",
        symbol="PAPER_BIASES",
        rationale=(
            "Read-only table of the paper's published per-width bias constants; "
            "written once at import, never mutated."
        ),
    ),
    AllowlistEntry(
        rule="DET007",
        path_suffix="repro/workloads/graph_challenge.py",
        symbol="PAPER_WORKER_MEMORY_MB",
        rationale=(
            "Read-only table of the paper's published worker memory sizes; "
            "written once at import, never mutated."
        ),
    ),
    AllowlistEntry(
        rule="DET007",
        path_suffix="repro/baselines/server.py",
        symbol="_PAPER_JOB_SCOPED_INSTANCES",
        rationale=(
            "Read-only mapping of the paper's per-width EC2 instance choices; "
            "written once at import, never mutated."
        ),
    ),
    AllowlistEntry(
        rule="DET007",
        path_suffix="repro/baselines/server.py",
        symbol="_FORWARD_FLOPS_MEMO",
        rationale=(
            "Identity-keyed flop-count memo: the value is a deterministic "
            "function of the pinned (model, batch) objects, so a racing "
            "recompute stores the identical float; bounded LRU, no simulated "
            "state."
        ),
    ),
    AllowlistEntry(
        rule="DET007",
        path_suffix="repro/cloud/pricing.py",
        symbol="EC2_HOURLY_PRICES",
        rationale="Read-only price book; written once at import, never mutated.",
    ),
    AllowlistEntry(
        rule="DET007",
        path_suffix="repro/cloud/pricing.py",
        symbol="EC2_INSTANCE_SPECS",
        rationale="Read-only instance-spec table; written once at import, never mutated.",
    ),
    AllowlistEntry(
        rule="DET007",
        path_suffix="repro/core/engine.py",
        symbol="_SERIAL_INPUT_PAYLOADS",
        rationale=(
            "Content-addressed staging-payload cache: keys are payload digests "
            "and values the deterministic serialized bytes, so concurrent "
            "writers can only store identical entries; a race wastes work, "
            "never changes simulated bytes."
        ),
    ),
    AllowlistEntry(
        rule="DET007",
        path_suffix="repro/comm/payload.py",
        symbol="_COMPRESS_MEMO",
        rationale=(
            "Content-addressed zlib memo (ROADMAP performance invariant): the "
            "cached bytes are identical to a fresh deflate, only wall-clock is "
            "skipped; races store identical values."
        ),
    ),
    AllowlistEntry(
        rule="DET007",
        path_suffix="repro/comm/payload.py",
        symbol="_DECOMPRESS_MEMO",
        rationale=(
            "Content-addressed zlib memo, inverse direction; cached bytes are "
            "identical to a fresh inflate, races store identical values."
        ),
    ),
)


def allowlisted(finding: Finding) -> bool:
    path = finding.path.replace(os.sep, "/")
    for entry in ALLOWLIST:
        if (
            entry.rule == finding.rule
            and entry.symbol == finding.symbol
            and path.endswith(entry.path_suffix)
        ):
            return True
    return False

"""Command-line interface: ``python -m repro.analysis [paths] ...``.

Exit codes: 0 = clean, 1 = unsuppressed findings (or unparseable files),
2 = usage error (unknown rule id, missing path).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence, Tuple

from .engine import LintConfig, lint_paths
from .rules import ALL_RULE_IDS, rule_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "detlint: statically enforce the repo's determinism and "
            "byte-identity contracts (rules DET001-DET007)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule ids to run exclusively (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule ids to skip (repeatable)",
    )
    parser.add_argument(
        "--no-allowlist",
        action="store_true",
        help="disable the curated allowlist (audit mode)",
    )
    parser.add_argument(
        "--no-pragmas",
        action="store_true",
        help="disable inline suppression pragmas (audit mode)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _parse_rule_ids(groups: Sequence[str]) -> Tuple[str, ...]:
    ids: List[str] = []
    for group in groups:
        for part in group.split(","):
            part = part.strip()
            if part:
                ids.append(part)
    for rule_id in ids:
        if rule_id not in ALL_RULE_IDS:
            raise ValueError(rule_id)
    return tuple(ids)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for row in rule_table():
            print(f"{row['id']}  {row['title']}")
            print(f"        {row['invariant']}")
        return 0

    try:
        select = _parse_rule_ids(args.select)
        ignore = _parse_rule_ids(args.ignore)
    except ValueError as exc:
        print(f"detlint: unknown rule id {exc.args[0]!r}", file=sys.stderr)
        return 2

    for path in args.paths:
        if not os.path.exists(path):
            print(f"detlint: no such path {path!r}", file=sys.stderr)
            return 2

    config = LintConfig(
        select=select,
        ignore=ignore,
        use_allowlist=not args.no_allowlist,
        use_pragmas=not args.no_pragmas,
    )
    result = lint_paths(args.paths, config)

    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in result.findings:
            location = f"{finding.path}:{finding.line}:{finding.col}"
            suffix = f" [{finding.symbol}]" if finding.symbol else ""
            print(f"{location}: {finding.rule} {finding.message}{suffix}")
        tallies = ", ".join(f"{rule}={n}" for rule, n in result.counts().items())
        if result.findings:
            print(
                f"detlint: {len(result.findings)} finding(s) ({tallies}) in "
                f"{result.files_checked} file(s); "
                f"{len(result.suppressed)} pragma-suppressed, "
                f"{len(result.allowlisted)} allowlisted"
            )
        else:
            print(
                f"detlint: clean ({result.files_checked} file(s); "
                f"{len(result.suppressed)} pragma-suppressed, "
                f"{len(result.allowlisted)} allowlisted)"
            )
    return 1 if result.findings else 0

"""Entry point for ``python -m repro.analysis``."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())

"""detlint: static enforcement of the repo's determinism contracts.

The reproduction's credibility rests on byte-identity invariants -- seeded
rng threading, no wall-clock on simulated paths, gated summary keys,
picklable top-level campaign factories, ``if injector is not None`` chaos
gating -- that runtime regression tests can only catch *after* a fingerprint
drifts.  This package catches the violation at the source line instead: an
AST-based rule framework (one :class:`~repro.analysis.rules.Rule` per
invariant, stable ids DET001-DET007), inline ``allow[DET00x] reason``
suppression pragmas, a curated allowlist for audited
exceptions, and a CLI (``python -m repro.analysis``) wired as a CI gate and
tier-1 meta-test.
"""

from .allowlist import ALLOWLIST, AllowlistEntry, allowlisted
from .engine import (
    FileRoles,
    Finding,
    LintConfig,
    LintResult,
    collect_files,
    lint_file,
    lint_paths,
    lint_source,
)
from .rules import ALL_RULE_IDS, ALL_RULES, Rule, rule_table

__all__ = [
    "ALLOWLIST",
    "ALL_RULES",
    "ALL_RULE_IDS",
    "AllowlistEntry",
    "FileRoles",
    "Finding",
    "LintConfig",
    "LintResult",
    "Rule",
    "allowlisted",
    "collect_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "rule_table",
]

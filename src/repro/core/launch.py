"""Hierarchical worker launch tree.

FSD-Inference launches its ``P`` FaaS workers through a
``worker_invoke_children()`` mechanism: each worker derives its own rank from
its parent's rank, its sibling number and the branching factor, and then
invokes its own children before starting compute work (Section II-B /
Section III).  Spreading invocation responsibility over all internal nodes
fills the worker tree in O(log_b P) sequential invocation rounds instead of
O(P), which is what makes large parallelism levels start quickly.

This module computes the tree shape (ranks, parents, children) and performs
the virtual-time launch against the simulated FaaS platform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cloud import FaaSPlatform, FunctionInvocation, VirtualClock

__all__ = ["LaunchTree", "LaunchResult", "launch_worker_tree"]


@dataclass(frozen=True)
class LaunchTree:
    """Shape of the hierarchical invocation tree for ``num_workers`` workers."""

    num_workers: int
    branching_factor: int

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("a launch tree needs at least one worker")
        if self.branching_factor < 1:
            raise ValueError("branching_factor must be at least 1")

    def parent(self, worker: int) -> Optional[int]:
        """Rank of the worker that invokes ``worker`` (None for the root)."""
        self._check(worker)
        if worker == 0:
            return None
        return (worker - 1) // self.branching_factor

    def children(self, worker: int) -> List[int]:
        """Ranks invoked by ``worker`` (``worker_invoke_children`` targets)."""
        self._check(worker)
        first = worker * self.branching_factor + 1
        return [
            child
            for child in range(first, first + self.branching_factor)
            if child < self.num_workers
        ]

    def depth(self, worker: int) -> int:
        """Number of invocation hops between the root and ``worker``."""
        self._check(worker)
        depth = 0
        current = worker
        while current != 0:
            current = (current - 1) // self.branching_factor
            depth += 1
        return depth

    def height(self) -> int:
        """Depth of the deepest worker."""
        return max(self.depth(worker) for worker in range(self.num_workers))

    def rank_of(self, parent: Optional[int], sibling_number: int) -> int:
        """Rank derived from parent rank and sibling number (the paper's rule)."""
        if parent is None:
            if sibling_number != 0:
                raise ValueError("the root has no siblings")
            return 0
        if not 0 <= sibling_number < self.branching_factor:
            raise ValueError(
                f"sibling_number must be in [0, {self.branching_factor}), got {sibling_number}"
            )
        return parent * self.branching_factor + 1 + sibling_number

    def is_leaf(self, worker: int) -> bool:
        return not self.children(worker)

    def _check(self, worker: int) -> None:
        if not 0 <= worker < self.num_workers:
            raise ValueError(
                f"worker rank {worker} outside [0, {self.num_workers})"
            )


@dataclass
class LaunchResult:
    """Outcome of launching the full worker tree."""

    tree: LaunchTree
    invocations: List[FunctionInvocation]
    #: virtual time at which the last worker's user code started.
    completed_at: float
    #: virtual time at which the first (root) worker's user code started.
    root_started_at: float

    @property
    def launch_span_seconds(self) -> float:
        """Time between the root starting and the last worker starting."""
        return self.completed_at - self.root_started_at


def launch_worker_tree(
    platform: FaaSPlatform,
    function_name: str,
    num_workers: int,
    branching_factor: int,
    coordinator_clock: Optional[VirtualClock] = None,
    at_time: float = 0.0,
) -> LaunchResult:
    """Launch ``num_workers`` invocations of ``function_name`` hierarchically.

    The coordinator invokes worker 0; every worker then invokes its children
    before doing anything else, advancing its own clock by the invoke API
    latency per child (exactly the cost the paper's mechanism pays).

    The launch is reentrant over the shared timeline: pass the coordinator's
    clock (already positioned at the request time), or ``at_time`` alone to
    launch a standalone tree starting then.  Launch spans and per-worker
    start offsets are invariant under time translation.
    """
    if coordinator_clock is None:
        coordinator_clock = VirtualClock(at_time)
    tree = LaunchTree(num_workers=num_workers, branching_factor=branching_factor)
    invocations: List[Optional[FunctionInvocation]] = [None] * num_workers

    root = platform.start_invocation(function_name, invoker_clock=coordinator_clock)
    invocations[0] = root

    # Breadth-first: parents always exist before their children are launched.
    for worker in range(num_workers):
        parent_invocation = invocations[worker]
        if parent_invocation is None:
            raise RuntimeError(f"worker {worker} was never launched by its parent")
        for child in tree.children(worker):
            invocations[child] = platform.start_invocation(
                function_name, invoker_clock=parent_invocation.clock
            )

    started_times = [invocation.started_at for invocation in invocations]
    return LaunchResult(
        tree=tree,
        invocations=list(invocations),
        completed_at=max(started_times),
        root_started_at=invocations[0].started_at,
    )

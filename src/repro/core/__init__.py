"""FSD-Inference core engine: configuration, launch tree, workers, metrics."""

from .config import EngineConfig, Variant
from .engine import FSDInference, InferenceResult
from .launch import LaunchResult, LaunchTree, launch_worker_tree
from .metrics import InferenceMetrics, LayerMetrics, WorkerMetrics
from .worker import FSIWorker, StagedDataLayout

__all__ = [
    "EngineConfig",
    "Variant",
    "FSDInference",
    "InferenceResult",
    "LaunchResult",
    "LaunchTree",
    "launch_worker_tree",
    "InferenceMetrics",
    "LayerMetrics",
    "WorkerMetrics",
    "FSIWorker",
    "StagedDataLayout",
]

"""FSI worker: the per-FaaS-instance inference routine (Algorithms 1 and 2).

Each worker owns a row block of every layer's weight matrix and of the
activation matrix.  For every layer it

1. extracts the activation rows each peer needs and ships them through the
   communication channel (multi-threaded sends, overlapping I/O),
2. performs its local partial product ``z_m = W^k_m x^{k-1}_m`` to overlap
   computation with communication,
3. polls the channel until it has received every activation row it is
   waiting for, folding each received block into ``z_m`` as it arrives,
4. applies the bias and ReLU/threshold activation to produce its rows of
   ``x^k``.

The engine drives these phases in lock step across workers so that message
causality in virtual time is preserved; the per-phase code below follows the
structure of Algorithms 1 and 2 directly (the channel object encapsulates
which of the two communication schemes is in use).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
from scipy import sparse

from ..cloud import Bucket, FunctionInvocation
from ..comm import CommChannel, ThreadPool, decode_row_payload
from ..partitioning import PartitionPlan
from ..sparse import (
    accumulate_spmm,
    add_bias_to_nonzero_structure,
    csr_nbytes,
    expand_rows,
    flop_count_spmm,
    gather_rows,
    positions_in_sorted,
    relu_threshold,
)
from .metrics import LayerMetrics, WorkerMetrics

__all__ = ["StagedDataLayout", "FSIWorker"]


@dataclass(frozen=True)
class StagedDataLayout:
    """Object-store layout of staged model partitions and input blocks."""

    bucket_name: str
    model_name: str
    num_workers: int
    partitioner_name: str

    def weight_key(self, worker: int, layer: int) -> str:
        return (
            f"staged/{self.model_name}/p{self.num_workers}/{self.partitioner_name}/"
            f"worker-{worker:04d}/layer-{layer:04d}.blk"
        )

    def input_key(self, worker: int) -> str:
        return (
            f"staged/{self.model_name}/p{self.num_workers}/{self.partitioner_name}/"
            f"worker-{worker:04d}/input.blk"
        )

    def full_model_key(self, layer: int) -> str:
        return f"staged/{self.model_name}/full/layer-{layer:04d}.blk"

    def full_input_key(self) -> str:
        return f"staged/{self.model_name}/full/input.blk"


class FSIWorker:
    """One FaaS worker executing the Fully Serverless Inference routine."""

    def __init__(
        self,
        worker_id: int,
        invocation: FunctionInvocation,
        plan: PartitionPlan,
        channel: CommChannel,
        data_bucket: Bucket,
        layout: StagedDataLayout,
        biases: Sequence[float],
        activation_cap: Optional[float],
        batch_size: int,
        io_threads: int = 4,
        memory_overhead_bytes: float = 0.0,
    ):
        self.worker_id = worker_id
        self.invocation = invocation
        self.plan = plan
        self.channel = channel
        self.data_bucket = data_bucket
        self.layout = layout
        self.biases = list(biases)
        self.activation_cap = activation_cap
        self.batch_size = batch_size
        self.io_threads = io_threads

        self.num_neurons = plan.num_neurons
        self.num_layers = plan.num_layers
        #: ascending global rows owned by this worker; ``x_local`` stores its
        #: activation rows in exactly this order, so row lookups are a
        #: ``searchsorted`` rather than a per-row dict probe.
        self.owned_rows = plan.worker_rows(worker_id)

        # Runtime state.  The static footprint starts at the language-runtime
        # overhead (Python + numeric libraries) configured for the deployment.
        self.weight_blocks: List[sparse.csr_matrix] = []
        self.x_local: Optional[sparse.csr_matrix] = None
        self._z: Optional[sparse.csr_matrix] = None
        self._static_memory_bytes = float(memory_overhead_bytes)

        self.metrics = WorkerMetrics(
            worker=worker_id,
            cold_start=invocation.cold,
            owned_rows=len(self.owned_rows),
        )

    # -- loading ------------------------------------------------------------------------

    def load_partition(self) -> None:
        """Read this worker's weight partition from object storage (Figure 1)."""
        clock = self.invocation.clock
        start = clock.now
        total_bytes = 0.0
        self.weight_blocks = []
        for layer in range(self.num_layers):
            payload = self.data_bucket.get_object(self.layout.weight_key(self.worker_id, layer), clock)
            rows_ids, block = decode_row_payload(payload)
            if not np.array_equal(rows_ids, self.owned_rows):
                raise ValueError(
                    f"staged weight block for worker {self.worker_id}, layer {layer} "
                    "does not match the partition plan"
                )
            self.weight_blocks.append(block)
            total_bytes += csr_nbytes(block)
            self.metrics.weight_nnz += int(block.nnz)
        self._static_memory_bytes += total_bytes
        self.invocation.account_memory(self._static_memory_bytes)
        self.metrics.weight_load_seconds = clock.now - start

    def load_input(self) -> None:
        """Read this worker's rows of the inference input batch."""
        clock = self.invocation.clock
        start = clock.now
        payload = self.data_bucket.get_object(self.layout.input_key(self.worker_id), clock)
        rows_ids, block = decode_row_payload(payload)
        if not np.array_equal(rows_ids, self.owned_rows):
            raise ValueError(
                f"staged input block for worker {self.worker_id} does not match the plan"
            )
        self.x_local = block
        self._account_dynamic_memory()
        self.metrics.input_load_seconds = clock.now - start

    # -- per-layer phases ------------------------------------------------------------------

    def send_phase(self, layer: int, layer_metrics: LayerMetrics) -> None:
        """Lines 3-7 of Algorithm 1 / lines 3-8 of Algorithm 2."""
        if self.x_local is None:
            raise RuntimeError("worker input was never loaded")
        clock = self.invocation.clock
        start = clock.now
        pool = ThreadPool(clock, self.io_threads)
        send_map = self.plan.send_map(layer, self.worker_id)
        publish_calls_before = self.channel.stats.publish_calls
        put_calls_before = self.channel.stats.put_calls

        for target in sorted(send_map):
            rows = send_map[target]
            extracted = self._extract_rows(rows)
            result = self.channel.send(layer, self.worker_id, target, rows, extracted, pool)
            layer_metrics.merge_counts(
                rows_sent=len(rows),
                bytes_sent=result.bytes_sent,
                messages_sent=result.chunks,
                nnz_sent=int(extracted.nnz),
            )
            self.metrics.bytes_sent += result.bytes_sent
        pool.join()

        layer_metrics.merge_counts(
            publish_calls=self.channel.stats.publish_calls - publish_calls_before,
            put_calls=self.channel.stats.put_calls - put_calls_before,
        )
        elapsed = clock.now - start
        self.metrics.send_seconds += elapsed
        layer_metrics.send_seconds += elapsed

    def local_compute(self, layer: int, layer_metrics: LayerMetrics) -> None:
        """Line 8 of Algorithm 1 / line 9 of Algorithm 2: overlap compute with comms.

        The product runs entirely in compacted local dimensions: the plan's
        pre-sliced weight kernel pairs column ``i`` directly with row ``i`` of
        ``x_local``, so the activation block is never scattered back into the
        global ``(num_neurons, batch)`` dimension.  The flop charge depends
        only on sparsity structure and is identical to the global formulation
        (weight columns outside the owned set pair with empty rows there).
        """
        if self.x_local is None:
            raise RuntimeError("worker input was never loaded")
        kernels = self.plan.layer_kernels(layer, self.worker_id)
        flops = flop_count_spmm(kernels.local, self.x_local)
        self._z = accumulate_spmm(None, kernels.local, self.x_local)
        duration = self.invocation.charge_compute(flops)
        self.metrics.compute_seconds += duration
        layer_metrics.compute_seconds += duration
        self._account_dynamic_memory()

    def receive_phase(self, layer: int, layer_metrics: LayerMetrics) -> None:
        """Lines 9-17 of Algorithm 1 / lines 10-23 of Algorithm 2."""
        clock = self.invocation.clock
        start = clock.now
        compute_during_receive = 0.0
        pending = set(self.plan.recv_map(layer, self.worker_id).keys())
        kernels = self.plan.layer_kernels(layer, self.worker_id)

        while pending:
            before_calls = (
                self.channel.stats.poll_calls,
                self.channel.stats.list_calls,
                self.channel.stats.get_calls,
                self.channel.stats.empty_polls,
                self.channel.stats.delete_calls,
            )
            result = self.channel.poll(layer, self.worker_id, pending, clock)
            after_calls = (
                self.channel.stats.poll_calls,
                self.channel.stats.list_calls,
                self.channel.stats.get_calls,
                self.channel.stats.empty_polls,
                self.channel.stats.delete_calls,
            )
            layer_metrics.merge_counts(
                poll_calls=after_calls[0] - before_calls[0],
                list_calls=after_calls[1] - before_calls[1],
                get_calls=after_calls[2] - before_calls[2],
                empty_polls=after_calls[3] - before_calls[3],
                delete_calls=after_calls[4] - before_calls[4],
            )
            for block in result.blocks:
                # Fold the block into z in arrival order.  The fast path
                # multiplies the pre-sliced source kernel directly against the
                # received rows (no global-dimension scatter, no full-size
                # intermediate); it applies whenever the block carries exactly
                # the rows the plan promised from that source, which is how
                # both channels deliver them.  Anything else (defensive: an
                # out-of-plan sender) falls back to the global formulation.
                w_source = kernels.by_source.get(block.source)
                if w_source is not None and np.array_equal(
                    block.global_rows, kernels.recv_rows[block.source]
                ):
                    flops = flop_count_spmm(w_source, block.rows)
                    self._z = accumulate_spmm(self._z, w_source, block.rows)
                else:
                    weight = self.weight_blocks[layer]
                    received = expand_rows(block.global_rows, block.rows, self.num_neurons)
                    flops = flop_count_spmm(weight, received)
                    self._z = accumulate_spmm(self._z, weight, received)
                duration = self.invocation.charge_compute(flops)
                compute_during_receive += duration
                self.metrics.bytes_received += block.bytes_received
                layer_metrics.bytes_received += block.bytes_received
            pending -= result.completed_sources

        elapsed = clock.now - start
        wait = max(0.0, elapsed - compute_during_receive)
        self.metrics.receive_wait_seconds += wait
        self.metrics.compute_seconds += compute_during_receive
        layer_metrics.receive_wait_seconds += wait
        layer_metrics.compute_seconds += compute_during_receive

    def finalize_layer(self, layer: int, layer_metrics: LayerMetrics) -> None:
        """Line 18 of Algorithm 1 / line 24 of Algorithm 2: bias + activation."""
        if self._z is None:
            raise RuntimeError("finalize_layer called before local_compute")
        biased = add_bias_to_nonzero_structure(self._z, self.biases[layer])
        activated = relu_threshold(biased, self.activation_cap)
        # The activation pass touches each stored entry twice (bias add, clamp).
        duration = self.invocation.charge_compute(2.0 * self._z.nnz)
        self.metrics.compute_seconds += duration
        layer_metrics.compute_seconds += duration
        layer_metrics.activation_nnz += int(activated.nnz)
        self.x_local = activated
        self._z = None
        self._account_dynamic_memory()
        self.invocation.check_timeout()

    # -- end of batch ------------------------------------------------------------------------

    def final_contribution(self) -> tuple:
        """This worker's rows of the final layer output (for the Reduce)."""
        if self.x_local is None:
            raise RuntimeError("worker has not produced any output")
        return self.owned_rows, self.x_local

    def finish(self, enforce_timeout: bool = True) -> float:
        runtime = self.invocation.finish(enforce_timeout=enforce_timeout)
        self.metrics.runtime_seconds = runtime
        self.metrics.peak_memory_mb = self.invocation.peak_memory_mb
        return runtime

    # -- helpers ---------------------------------------------------------------------------------

    def _extract_rows(self, global_rows: Sequence[int]) -> sparse.csr_matrix:
        if self.x_local is None:
            raise RuntimeError("worker input was never loaded")
        # owned_rows is ascending with x_local stored in the same order, so
        # sorted positions are storage positions directly.
        positions = positions_in_sorted(self.owned_rows, global_rows)
        return gather_rows(self.x_local, positions)

    def _account_dynamic_memory(self) -> None:
        dynamic = 0.0
        if self.x_local is not None:
            dynamic += csr_nbytes(self.x_local)
        if self._z is not None:
            dynamic += csr_nbytes(self._z)
        self.invocation.account_memory(self._static_memory_bytes + dynamic)

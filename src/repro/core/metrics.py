"""Fine-grained metric capture for FSD-Inference runs.

The paper validates its cost model by "programmatically capturing
fine-grained metrics (51 per-layer and 26 per-batch)" from every run
(Section VI-F).  This module provides the equivalent instrumentation:
per-layer and per-worker counters collected while the engine executes, plus
batch-level aggregates derived from them.  The cost-model validator consumes
these metrics to predict charges that are then compared against the billing
ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional

__all__ = ["LayerMetrics", "WorkerMetrics", "InferenceMetrics"]


@dataclass
class LayerMetrics:
    """Counters accumulated over all workers for one layer."""

    layer: int
    rows_sent: int = 0
    nnz_sent: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    publish_calls: int = 0
    poll_calls: int = 0
    empty_polls: int = 0
    put_calls: int = 0
    get_calls: int = 0
    list_calls: int = 0
    delete_calls: int = 0
    send_seconds: float = 0.0
    compute_seconds: float = 0.0
    receive_wait_seconds: float = 0.0
    activation_nnz: int = 0

    def merge_counts(self, **deltas: float) -> None:
        for key, value in deltas.items():
            setattr(self, key, getattr(self, key) + value)


@dataclass
class WorkerMetrics:
    """Per-worker accounting over the whole batch."""

    worker: int
    runtime_seconds: float = 0.0
    startup_seconds: float = 0.0
    weight_load_seconds: float = 0.0
    input_load_seconds: float = 0.0
    compute_seconds: float = 0.0
    send_seconds: float = 0.0
    receive_wait_seconds: float = 0.0
    bytes_sent: int = 0
    bytes_received: int = 0
    peak_memory_mb: float = 0.0
    cold_start: bool = False
    weight_nnz: int = 0
    owned_rows: int = 0


@dataclass
class InferenceMetrics:
    """Everything measured during one inference run."""

    variant: str
    num_workers: int
    num_layers: int
    num_neurons: int
    batch_size: int
    per_layer: List[LayerMetrics] = field(default_factory=list)
    per_worker: List[WorkerMetrics] = field(default_factory=list)
    #: communication performed by the final Barrier/Reduce step, kept separate
    #: from the per-layer counters but included in every total below.
    reduce_comm: Optional[LayerMetrics] = None
    launch_seconds: float = 0.0
    reduce_seconds: float = 0.0
    coordinator_seconds: float = 0.0

    # -- derived batch-level aggregates ----------------------------------------------

    def layer(self, index: int) -> LayerMetrics:
        return self.per_layer[index]

    def _all_phases(self) -> List[LayerMetrics]:
        phases = list(self.per_layer)
        if self.reduce_comm is not None:
            phases.append(self.reduce_comm)
        return phases

    @property
    def total_bytes_sent(self) -> int:
        return sum(layer.bytes_sent for layer in self._all_phases())

    @property
    def total_nnz_sent(self) -> int:
        return sum(layer.nnz_sent for layer in self._all_phases())

    @property
    def total_rows_sent(self) -> int:
        return sum(layer.rows_sent for layer in self._all_phases())

    @property
    def total_messages_sent(self) -> int:
        return sum(layer.messages_sent for layer in self._all_phases())

    @property
    def total_publish_calls(self) -> int:
        return sum(layer.publish_calls for layer in self._all_phases())

    @property
    def total_poll_calls(self) -> int:
        return sum(layer.poll_calls for layer in self._all_phases())

    @property
    def total_put_calls(self) -> int:
        return sum(layer.put_calls for layer in self._all_phases())

    @property
    def total_get_calls(self) -> int:
        return sum(layer.get_calls for layer in self._all_phases())

    @property
    def total_list_calls(self) -> int:
        return sum(layer.list_calls for layer in self._all_phases())

    @property
    def total_delete_calls(self) -> int:
        return sum(layer.delete_calls for layer in self._all_phases())

    @property
    def total_bytes_received(self) -> int:
        return sum(layer.bytes_received for layer in self._all_phases())

    @property
    def total_compute_seconds(self) -> float:
        return sum(layer.compute_seconds for layer in self.per_layer)

    @property
    def total_receive_wait_seconds(self) -> float:
        return sum(layer.receive_wait_seconds for layer in self.per_layer)

    @property
    def mean_worker_runtime_seconds(self) -> float:
        if not self.per_worker:
            return 0.0
        return sum(w.runtime_seconds for w in self.per_worker) / len(self.per_worker)

    @property
    def max_worker_runtime_seconds(self) -> float:
        if not self.per_worker:
            return 0.0
        return max(w.runtime_seconds for w in self.per_worker)

    @property
    def nnz_sent_per_target(self) -> float:
        """Average nonzeros shipped per (source, target, layer) transfer."""
        pairs = sum(1 for layer in self.per_layer for _ in range(layer.messages_sent)) or 0
        transfers = self.total_messages_sent
        if transfers == 0:
            return 0.0
        return self.total_nnz_sent / transfers

    def per_layer_table(self) -> List[Dict[str, float]]:
        """The per-layer metrics as a list of plain dictionaries (for reports)."""
        table = []
        for layer in self.per_layer:
            row = {f.name: getattr(layer, f.name) for f in fields(layer)}
            table.append(row)
        return table

    def batch_summary(self) -> Dict[str, float]:
        """The per-batch metric set (the paper's 26 per-batch metrics analogue)."""
        return {
            "variant": self.variant,
            "num_workers": self.num_workers,
            "num_layers": self.num_layers,
            "num_neurons": self.num_neurons,
            "batch_size": self.batch_size,
            "total_bytes_sent": self.total_bytes_sent,
            "total_nnz_sent": self.total_nnz_sent,
            "total_rows_sent": self.total_rows_sent,
            "total_messages_sent": self.total_messages_sent,
            "total_publish_calls": self.total_publish_calls,
            "total_poll_calls": self.total_poll_calls,
            "total_put_calls": self.total_put_calls,
            "total_get_calls": self.total_get_calls,
            "total_list_calls": self.total_list_calls,
            "total_compute_seconds": self.total_compute_seconds,
            "total_receive_wait_seconds": self.total_receive_wait_seconds,
            "mean_worker_runtime_seconds": self.mean_worker_runtime_seconds,
            "max_worker_runtime_seconds": self.max_worker_runtime_seconds,
            "launch_seconds": self.launch_seconds,
            "reduce_seconds": self.reduce_seconds,
            "coordinator_seconds": self.coordinator_seconds,
        }

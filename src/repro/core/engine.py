"""The FSD-Inference engine: public API for serverless distributed inference.

:class:`FSDInference` wires together the simulated cloud, the partitioning
subsystem, the communication channels and the FSI worker routine.  Typical
usage::

    cloud = CloudEnvironment()
    engine = FSDInference(cloud, EngineConfig(variant=Variant.QUEUE, workers=8))
    plan = engine.partition(model, HypergraphPartitioner())
    result = engine.infer(model, batch, plan)

``result`` carries the assembled output activations, the end-to-end query
latency in virtual time, the cost report scoped to exactly this run, and the
fine-grained per-layer/per-worker metrics used by the cost-model validator.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np
from scipy import sparse

from ..cloud import (
    CloudEnvironment,
    CostReport,
    FunctionConfig,
    FunctionTimeoutError,
    VirtualClock,
)
from ..comm import (
    ChannelStats,
    CommChannel,
    ObjectChannel,
    ObjectChannelConfig,
    QueueChannel,
    QueueChannelConfig,
    barrier,
    decode_row_payload,
    encode_row_payload,
    reduce_to_root,
)
from ..model import SparseDNN
from ..partitioning import HypergraphPartitioner, PartitionPlan, Partitioner
from ..sparse import as_csr, csr_nbytes, flop_count_spmm, relu_threshold, add_bias_to_nonzero_structure
from .config import EngineConfig, Variant
from .launch import LaunchResult, launch_worker_tree
from .metrics import InferenceMetrics, LayerMetrics, WorkerMetrics
from .worker import FSIWorker, StagedDataLayout

__all__ = ["InferenceResult", "FSDInference"]


@dataclass
class InferenceResult:
    """Everything produced by one inference run.

    ``latency_seconds`` is always measured relative to the request time, so
    results are directly comparable whether the query ran on a private
    ``t=0`` timeline or arrived mid-way through a shared serving timeline
    (``started_at``/``finished_at`` carry the absolute placement).
    """

    output: sparse.csr_matrix
    latency_seconds: float
    batch_size: int
    variant: Variant
    num_workers: int
    cost: CostReport
    metrics: InferenceMetrics
    launch: Optional[LaunchResult] = None
    #: absolute virtual time at which the request was issued.
    started_at: float = 0.0
    #: absolute virtual time at which the output was assembled.
    finished_at: Optional[float] = None
    #: snapshot of the communication channel counters for this run (None for
    #: the serial variant, which performs no inter-worker communication).
    channel_stats: Optional[ChannelStats] = None

    @property
    def per_sample_seconds(self) -> float:
        if self.batch_size == 0:
            return 0.0
        return self.latency_seconds / self.batch_size

    @property
    def per_sample_ms(self) -> float:
        return self.per_sample_seconds * 1000.0

    @property
    def per_sample_cost(self) -> float:
        if self.batch_size == 0:
            return 0.0
        return self.cost.total / self.batch_size

    def predictions(self) -> np.ndarray:
        """Argmax category per sample (Graph Challenge style output)."""
        dense = np.asarray(self.output.todense())
        return dense.argmax(axis=0)

    def matches(self, expected: sparse.spmatrix, tolerance: float = 1e-4) -> bool:
        """Check numerical agreement with a ground-truth activation matrix."""
        expected = as_csr(expected)
        if expected.shape != self.output.shape:
            return False
        difference = (self.output - expected)
        if difference.nnz == 0:
            return True
        return float(np.abs(difference.data).max()) <= tolerance


#: Content-addressed LRU memo of encoded serial input payloads.  Benchmark
#: sweeps and serving replays stage the same batch over and over through
#: fresh engines, so keying by batch *content* (not object identity) turns
#: the repeated encode+deflate into a digest lookup with byte-identical
#: results.  Bounded so pathological sweeps cannot hold every batch alive.
_SERIAL_INPUT_PAYLOADS: "OrderedDict[bytes, bytes]" = OrderedDict()
_SERIAL_INPUT_PAYLOAD_ENTRIES = 64


def _batch_content_key(batch: sparse.csr_matrix, compress: bool) -> bytes:
    digest = hashlib.blake2b(digest_size=16)
    digest.update(np.int64(batch.shape[0]).tobytes())
    digest.update(np.int64(batch.shape[1]).tobytes())
    digest.update(np.ascontiguousarray(batch.indptr).tobytes())
    digest.update(np.ascontiguousarray(batch.indices).tobytes())
    digest.update(np.ascontiguousarray(batch.data).tobytes())
    digest.update(b"Z" if compress else b"R")
    return digest.digest()


def _serial_input_memo_put(key: bytes, payload: bytes) -> None:
    _SERIAL_INPUT_PAYLOADS[key] = payload
    _SERIAL_INPUT_PAYLOADS.move_to_end(key)
    while len(_SERIAL_INPUT_PAYLOADS) > _SERIAL_INPUT_PAYLOAD_ENTRIES:
        _SERIAL_INPUT_PAYLOADS.popitem(last=False)


class FSDInference:
    """Fully Serverless Distributed Inference engine (paper Section III)."""

    def __init__(self, cloud: CloudEnvironment, config: Optional[EngineConfig] = None):
        self.cloud = cloud
        self.config = config or EngineConfig()
        self._staged_weights: Set[Tuple[str, int, str]] = set()
        self._staged_serial_models: Set[str] = set()

    # -- offline steps -----------------------------------------------------------------

    def partition(
        self,
        model: SparseDNN,
        partitioner: Optional[Partitioner] = None,
        workers: Optional[int] = None,
    ) -> PartitionPlan:
        """Partition ``model`` for this engine's worker count (offline step)."""
        partitioner = partitioner or HypergraphPartitioner()
        workers = workers or self.config.workers
        return partitioner.partition(model, workers)

    # -- public entry point ---------------------------------------------------------------

    def infer(
        self,
        model: SparseDNN,
        batch: sparse.spmatrix,
        plan: Optional[PartitionPlan] = None,
        partitioner: Optional[Partitioner] = None,
        at_time: float = 0.0,
    ) -> InferenceResult:
        """Run one batch of inference and return the result with cost/metrics.

        ``at_time`` places the request on the cloud's shared timeline: the
        coordinator (or the serial instance) is invoked then, every launch,
        message and billing timestamp follows from that point, and the
        returned latency/cost are relative to it.  The default of ``0.0``
        reproduces the historical private-timeline behaviour exactly.
        """
        if at_time < 0.0:
            raise ValueError(f"at_time cannot be negative, got {at_time}")
        batch = as_csr(batch).astype(np.float64)
        if batch.shape[0] != model.num_neurons:
            raise ValueError(
                f"batch has {batch.shape[0]} rows but the model has {model.num_neurons} neurons"
            )
        if self.config.variant is Variant.SERIAL:
            return self._infer_serial(model, batch, at_time)

        if plan is None:
            plan = self.partition(model, partitioner)
        if plan.num_workers != self.config.workers:
            raise ValueError(
                f"plan was built for {plan.num_workers} workers but the engine is "
                f"configured for {self.config.workers}"
            )
        return self._infer_distributed(model, batch, plan, at_time)

    # -- serial variant --------------------------------------------------------------------

    def _infer_serial(
        self, model: SparseDNN, batch: sparse.csr_matrix, at_time: float = 0.0
    ) -> InferenceResult:
        bucket = self.cloud.object_storage.get_or_create_bucket(self.config.data_bucket)
        layout = StagedDataLayout(
            bucket_name=bucket.name,
            model_name=model.name,
            num_workers=1,
            partitioner_name="serial",
        )
        self._stage_serial(model, batch, bucket, layout)

        function_name = f"{self.config.resource_prefix}-serial-{self.config.serial_memory_mb}"
        self._ensure_function(function_name, self.config.serial_memory_mb)

        checkpoint = self.cloud.billing_checkpoint()
        invocation = self.cloud.faas.start_invocation(function_name, at_time=at_time)
        metrics = InferenceMetrics(
            variant=Variant.SERIAL.value,
            num_workers=1,
            num_layers=model.num_layers,
            num_neurons=model.num_neurons,
            batch_size=batch.shape[1],
        )
        worker_metrics = WorkerMetrics(worker=0, cold_start=invocation.cold)

        clock = invocation.clock
        load_start = clock.now
        resident_bytes = self.config.memory_overhead_mb * 1024.0 * 1024.0
        weights: List[sparse.csr_matrix] = []
        for layer in range(model.num_layers):
            payload = bucket.get_object(layout.full_model_key(layer), clock)
            _, weight = decode_row_payload(payload)
            weights.append(weight)
            resident_bytes += csr_nbytes(weight)
            invocation.account_memory(resident_bytes)
        worker_metrics.weight_load_seconds = clock.now - load_start

        input_start = clock.now
        payload = bucket.get_object(layout.full_input_key(), clock)
        _, activations = decode_row_payload(payload)
        resident_bytes += csr_nbytes(activations)
        invocation.account_memory(resident_bytes)
        worker_metrics.input_load_seconds = clock.now - input_start

        for layer in range(model.num_layers):
            layer_metrics = LayerMetrics(layer=layer)
            flops = flop_count_spmm(weights[layer], activations)
            pre = weights[layer] @ activations
            duration = invocation.charge_compute(flops + 2.0 * pre.nnz)
            biased = add_bias_to_nonzero_structure(pre, model.biases[layer])
            activations = relu_threshold(biased, model.activation_cap)
            invocation.account_memory(resident_bytes + csr_nbytes(activations) + csr_nbytes(pre))
            layer_metrics.compute_seconds = duration
            layer_metrics.activation_nnz = int(activations.nnz)
            worker_metrics.compute_seconds += duration
            metrics.per_layer.append(layer_metrics)
            invocation.check_timeout()

        runtime = invocation.finish()
        worker_metrics.runtime_seconds = runtime
        worker_metrics.peak_memory_mb = invocation.peak_memory_mb
        metrics.per_worker.append(worker_metrics)

        return InferenceResult(
            output=as_csr(activations),
            latency_seconds=invocation.clock.now - at_time,
            batch_size=batch.shape[1],
            variant=Variant.SERIAL,
            num_workers=1,
            cost=self.cloud.report_since(checkpoint),
            metrics=metrics,
            started_at=at_time,
            finished_at=invocation.clock.now,
        )

    # -- distributed variants -------------------------------------------------------------------

    def _infer_distributed(
        self,
        model: SparseDNN,
        batch: sparse.csr_matrix,
        plan: PartitionPlan,
        at_time: float = 0.0,
    ) -> InferenceResult:
        num_workers = plan.num_workers
        bucket = self.cloud.object_storage.get_or_create_bucket(self.config.data_bucket)
        layout = StagedDataLayout(
            bucket_name=bucket.name,
            model_name=model.name,
            num_workers=num_workers,
            partitioner_name=plan.partitioner_name,
        )
        self._stage_distributed(model, plan, batch, bucket, layout)

        channel = self._build_channel()
        channel.prepare(num_workers)

        max_partition_bytes = max(
            plan.worker_weight_bytes(worker) for worker in range(num_workers)
        )
        worker_memory = self.config.resolve_worker_memory(
            max_partition_bytes, neurons=model.num_neurons
        )
        worker_fn = (
            f"{self.config.resource_prefix}-worker-{self.config.variant.value}-{worker_memory}"
        )
        coordinator_fn = f"{self.config.resource_prefix}-coordinator"
        self._ensure_function(worker_fn, worker_memory)
        self._ensure_function(coordinator_fn, self.config.coordinator_memory_mb)

        checkpoint = self.cloud.billing_checkpoint()
        metrics = InferenceMetrics(
            variant=self.config.variant.value,
            num_workers=num_workers,
            num_layers=model.num_layers,
            num_neurons=model.num_neurons,
            batch_size=batch.shape[1],
        )

        # Coordinator: parse the request and invoke the root worker.
        coordinator = self.cloud.faas.start_invocation(coordinator_fn, at_time=at_time)
        coordinator.charge_duration(0.005)
        launch = launch_worker_tree(
            self.cloud.faas,
            worker_fn,
            num_workers,
            self.config.branching_factor,
            coordinator.clock,
        )
        metrics.coordinator_seconds = coordinator.clock.now - at_time
        coordinator.finish()
        metrics.launch_seconds = launch.launch_span_seconds

        workers = [
            FSIWorker(
                worker_id=rank,
                invocation=launch.invocations[rank],
                plan=plan,
                channel=channel,
                data_bucket=bucket,
                layout=layout,
                biases=model.biases,
                activation_cap=model.activation_cap,
                batch_size=batch.shape[1],
                io_threads=self.config.io_threads,
                memory_overhead_bytes=self.config.memory_overhead_mb * 1024.0 * 1024.0,
            )
            for rank in range(num_workers)
        ]

        for worker in workers:
            worker.load_partition()
            worker.load_input()

        for layer in range(model.num_layers):
            layer_metrics = LayerMetrics(layer=layer)
            for worker in workers:
                worker.send_phase(layer, layer_metrics)
            for worker in workers:
                worker.local_compute(layer, layer_metrics)
            for worker in workers:
                worker.receive_phase(layer, layer_metrics)
            for worker in workers:
                worker.finalize_layer(layer, layer_metrics)
            metrics.per_layer.append(layer_metrics)

        # Barrier + Reduce to worker 0 (lines 19-20 / 25-26 of the algorithms).
        clocks = {worker.worker_id: worker.invocation.clock for worker in workers}
        barrier(list(clocks.values()))
        reduce_start = clocks[0].now
        stats_before_reduce = channel.stats.snapshot()
        contributions = {
            worker.worker_id: worker.final_contribution() for worker in workers
        }
        output = reduce_to_root(
            channel,
            layer=channel.reduction_layer(model.num_layers),
            root=0,
            contributions=contributions,
            clocks=clocks,
            io_threads=self.config.io_threads,
            num_columns=batch.shape[1],
        )
        output = self._pad_rows(output, model.num_neurons)
        metrics.reduce_seconds = clocks[0].now - reduce_start
        reduce_delta = channel.stats.delta(stats_before_reduce)
        metrics.reduce_comm = LayerMetrics(
            layer=model.num_layers,
            bytes_sent=reduce_delta.bytes_sent,
            bytes_received=reduce_delta.bytes_received,
            nnz_sent=reduce_delta.payload_nnz_sent,
            messages_sent=reduce_delta.messages_sent,
            publish_calls=reduce_delta.publish_calls,
            poll_calls=reduce_delta.poll_calls,
            empty_polls=reduce_delta.empty_polls,
            put_calls=reduce_delta.put_calls,
            get_calls=reduce_delta.get_calls,
            list_calls=reduce_delta.list_calls,
            delete_calls=reduce_delta.delete_calls,
            send_seconds=metrics.reduce_seconds,
        )
        finished_at = clocks[0].now
        latency = finished_at - at_time

        timeouts: List[FunctionTimeoutError] = []
        for worker in workers:
            try:
                worker.finish(enforce_timeout=True)
            except FunctionTimeoutError as error:
                timeouts.append(error)
            metrics.per_worker.append(worker.metrics)

        result = InferenceResult(
            output=output,
            latency_seconds=latency,
            batch_size=batch.shape[1],
            variant=self.config.variant,
            num_workers=num_workers,
            cost=self.cloud.report_since(checkpoint),
            metrics=metrics,
            launch=launch,
            started_at=at_time,
            finished_at=finished_at,
            channel_stats=channel.stats.snapshot(),
        )
        if timeouts:
            # Surface the first timeout; callers treat it like the paper treats
            # configurations that "could not run within the maximum FaaS runtime".
            raise timeouts[0]
        return result

    # -- staging ---------------------------------------------------------------------------------

    def _stage_serial(
        self,
        model: SparseDNN,
        batch: sparse.csr_matrix,
        bucket,
        layout: StagedDataLayout,
    ) -> None:
        """Place the full model and input batch in object storage.

        Staging is the paper's offline step (models and buffered inputs are
        assumed to already live in object storage when a request arrives), so
        it is neither timed nor billed; the per-request GETs that read the
        data back *are*.

        The encoded payloads are pure functions of the model/batch contents,
        so they are cached -- the full-model payloads on the model object
        (mirroring the distributed ``staged_payload_cache`` on the plan) and
        the input payload in a content-addressed memo -- so benchmark sweeps
        and serving replays that re-stage the same data skip the re-encode.
        """
        all_rows = np.arange(model.num_neurons, dtype=np.int64)
        if model.name not in self._staged_serial_models:
            encoded_key = ("serial-full", self.config.compress)
            encoded = model.staged_payload_cache.get(encoded_key)
            if encoded is None:
                encoded = [
                    (
                        layout.full_model_key(layer),
                        encode_row_payload(all_rows, weight, compress=self.config.compress),
                    )
                    for layer, weight in enumerate(model.weights)
                ]
                model.staged_payload_cache[encoded_key] = encoded
            for key, payload in encoded:
                bucket.preload_object(key, payload)
            self._staged_serial_models.add(model.name)
        content_key = _batch_content_key(batch, self.config.compress)
        payload = _SERIAL_INPUT_PAYLOADS.get(content_key)
        if payload is None:
            payload = encode_row_payload(all_rows, batch, compress=self.config.compress)
            _serial_input_memo_put(content_key, payload)
        bucket.preload_object(layout.full_input_key(), payload)

    def _stage_distributed(
        self,
        model: SparseDNN,
        plan: PartitionPlan,
        batch: sparse.csr_matrix,
        bucket,
        layout: StagedDataLayout,
    ) -> None:
        """Place per-worker model partitions and input row blocks in object storage.

        The encoded weight payloads are a pure function of the plan contents,
        so they are cached *on the plan object* (keyed by compression and the
        staged model name): re-running the same plan -- the common benchmark
        sweep pattern -- skips the re-encode, while distinct plans or models
        can never collide because they are distinct objects.
        """
        cache_key = (model.name, plan.num_workers, plan.partitioner_name)
        if cache_key not in self._staged_weights:
            encoded_key = (model.name, self.config.compress)
            encoded = plan.staged_payload_cache.get(encoded_key)
            if encoded is None:
                encoded = []
                for layer in range(plan.num_layers):
                    for worker in range(plan.num_workers):
                        block = plan.weight_blocks[layer][worker]
                        payload = encode_row_payload(
                            block.global_rows, block.local, compress=self.config.compress
                        )
                        encoded.append((layout.weight_key(worker, layer), payload))
                plan.staged_payload_cache[encoded_key] = encoded
            for key, payload in encoded:
                bucket.preload_object(key, payload)
            self._staged_weights.add(cache_key)
        for worker in range(plan.num_workers):
            rows = plan.worker_rows(worker)
            block = batch[rows, :]
            payload = encode_row_payload(rows, block, compress=self.config.compress)
            bucket.preload_object(layout.input_key(worker), payload)

    # -- helpers -----------------------------------------------------------------------------------

    def _build_channel(self) -> CommChannel:
        if self.config.variant is Variant.QUEUE:
            return QueueChannel(
                self.cloud,
                QueueChannelConfig(
                    num_topics=self.config.num_topics,
                    long_poll_wait_seconds=self.config.long_poll_wait_seconds,
                    use_long_polling=self.config.use_long_polling,
                    compress=self.config.compress,
                    resource_prefix=self.config.resource_prefix,
                ),
            )
        if self.config.variant is Variant.OBJECT:
            return ObjectChannel(
                self.cloud,
                ObjectChannelConfig(
                    num_buckets=self.config.num_buckets,
                    compress=self.config.compress,
                    resource_prefix=self.config.resource_prefix,
                ),
            )
        raise ValueError(f"variant {self.config.variant} has no communication channel")

    def _ensure_function(self, name: str, memory_mb: int) -> None:
        platform = self.cloud.faas
        if name in platform:
            existing = platform.get_function(name)
            if existing.memory_mb == memory_mb and existing.timeout_seconds == self.config.timeout_seconds:
                return
            platform.delete_function(name)
        platform.create_function(
            FunctionConfig(
                name=name,
                memory_mb=memory_mb,
                timeout_seconds=self.config.timeout_seconds,
            )
        )

    @staticmethod
    def _pad_rows(matrix: sparse.csr_matrix, total_rows: int) -> sparse.csr_matrix:
        matrix = as_csr(matrix)
        if matrix.shape[0] == total_rows:
            return matrix
        if matrix.shape[0] > total_rows:
            raise ValueError("assembled output has more rows than the model has neurons")
        padding = sparse.csr_matrix(
            (total_rows - matrix.shape[0], matrix.shape[1]), dtype=matrix.dtype
        )
        return sparse.vstack([matrix, padding], format="csr")

"""Engine configuration for FSD-Inference runs."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..cloud import MAX_MEMORY_MB, MAX_TIMEOUT_SECONDS, MIN_MEMORY_MB
from ..workloads import PAPER_WORKER_MEMORY_MB

__all__ = ["Variant", "EngineConfig"]


class Variant(enum.Enum):
    """Which FSD-Inference execution/communication variant to run."""

    SERIAL = "serial"
    QUEUE = "queue"
    OBJECT = "object"

    @property
    def is_distributed(self) -> bool:
        return self is not Variant.SERIAL


@dataclass(frozen=True)
class EngineConfig:
    """Run-time parameters of an FSD-Inference deployment.

    Mirrors the knobs the paper exposes: variant, worker parallelism ``P``,
    per-worker memory, the hierarchical launch branching factor, the number
    of pub/sub topics or object buckets, long-polling behaviour, compression
    and the per-worker I/O thread count.
    """

    variant: Variant = Variant.QUEUE
    workers: int = 8
    worker_memory_mb: Optional[int] = None
    coordinator_memory_mb: int = 128
    serial_memory_mb: int = MAX_MEMORY_MB
    timeout_seconds: float = MAX_TIMEOUT_SECONDS
    branching_factor: int = 4
    io_threads: int = 4

    # Pub/sub + queue channel knobs.
    num_topics: int = 10
    long_poll_wait_seconds: float = 5.0
    use_long_polling: bool = True

    # Object storage channel knobs.
    num_buckets: int = 10

    # Shared knobs.
    compress: bool = True
    data_bucket: str = "fsd-data"
    resource_prefix: str = "fsd"
    #: multiplier on the partition footprint when auto-sizing worker memory.
    memory_headroom: float = 2.5
    #: baseline resident memory of the language runtime and libraries inside a
    #: FaaS instance (Python + numpy/scipy in the paper's deployment); counted
    #: against the configured memory limit on top of model/activation data.
    memory_overhead_mb: float = 0.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.variant is Variant.SERIAL and self.workers != 1:
            raise ValueError("the serial variant runs on exactly one worker")
        if self.worker_memory_mb is not None and not (
            MIN_MEMORY_MB <= self.worker_memory_mb <= MAX_MEMORY_MB
        ):
            raise ValueError(
                f"worker_memory_mb must be within [{MIN_MEMORY_MB}, {MAX_MEMORY_MB}]"
            )
        if not MIN_MEMORY_MB <= self.coordinator_memory_mb <= MAX_MEMORY_MB:
            raise ValueError("coordinator_memory_mb outside the FaaS limits")
        if self.branching_factor < 1:
            raise ValueError("branching_factor must be at least 1")
        if self.io_threads < 1:
            raise ValueError("io_threads must be at least 1")
        if self.num_topics < 1 or self.num_buckets < 1:
            raise ValueError("num_topics and num_buckets must be at least 1")
        if self.memory_headroom < 1.0:
            raise ValueError("memory_headroom must be at least 1.0")
        if self.memory_overhead_mb < 0.0:
            raise ValueError("memory_overhead_mb cannot be negative")

    def resolve_worker_memory(self, partition_bytes: int, neurons: Optional[int] = None) -> int:
        """Memory to allocate per worker.

        Explicit configuration wins; otherwise the paper's per-N allocations
        are used when ``neurons`` matches a paper configuration; otherwise the
        partition footprint times ``memory_headroom`` (rounded up to 64 MB,
        clamped to the FaaS limits).
        """
        if self.worker_memory_mb is not None:
            return self.worker_memory_mb
        if neurons is not None and neurons in PAPER_WORKER_MEMORY_MB:
            return PAPER_WORKER_MEMORY_MB[neurons]
        needed_mb = (partition_bytes / (1024.0 * 1024.0)) * self.memory_headroom
        rounded = int(-(-max(needed_mb, MIN_MEMORY_MB) // 64) * 64)
        return min(max(rounded, MIN_MEMORY_MB), MAX_MEMORY_MB)

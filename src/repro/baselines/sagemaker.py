"""Sage-SL-Inf baseline: a managed serverless inference endpoint.

AWS SageMaker Serverless Inference runs each request on a single
resource-constrained FaaS-backed endpoint.  The paper evaluates it with the
maximum allowed memory (6 GB) and finds that it cannot load the larger
models, that its 6 MB request payload and 60 s runtime limits cap how many
samples can be processed per request, and that it is outperformed by
FSD-Inf-Serial even where it does run (Table II).

The baseline reproduces those resource envelopes on the simulated substrate:
requests are sized to the payload cap, executed sequentially, billed per
invocation and per GB-second, and rejected when the model exceeds the
endpoint memory or a request exceeds the runtime limit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import sparse

from ..cloud import CloudEnvironment, CloudError, SERVICE_ENDPOINT
from ..cloud.faas import MEMORY_MB_PER_VCPU
from ..model import SparseDNN
from ..sparse import as_csr, csr_nbytes, flop_count_spmm

__all__ = [
    "EndpointLimits",
    "EndpointInfeasibleError",
    "EndpointQueryResult",
    "run_endpoint_query",
]


class EndpointInfeasibleError(CloudError, RuntimeError):
    """The workload cannot run on the managed endpoint at all.

    A cloud-shaped failure (it is the endpoint service rejecting the query),
    so it descends from :class:`~repro.cloud.CloudError` for uniform retry
    classification -- infeasibility is deterministic, hence not retryable --
    while keeping ``RuntimeError`` in the MRO for pre-existing callers.
    """


@dataclass(frozen=True)
class EndpointLimits:
    """Service limits of the managed serverless endpoint."""

    memory_mb: int = 6144
    max_runtime_seconds: float = 60.0
    max_payload_bytes: int = 6 * 1024 * 1024


@dataclass(frozen=True)
class EndpointQueryResult:
    """Outcome of running (part of) a batch on the managed endpoint."""

    requested_samples: int
    processed_samples: int
    requests: int
    latency_seconds: float
    cost: float

    @property
    def per_sample_ms(self) -> float:
        if self.processed_samples == 0:
            return 0.0
        return self.latency_seconds / self.processed_samples * 1000.0

    @property
    def completed(self) -> bool:
        return self.processed_samples == self.requested_samples


def _per_sample_payload_bytes(batch: sparse.csr_matrix) -> float:
    """Approximate request payload bytes per input sample (uncompressed)."""
    if batch.shape[1] == 0:
        return 0.0
    return max(1.0, csr_nbytes(batch) / batch.shape[1])


def run_endpoint_query(
    cloud: CloudEnvironment,
    model: SparseDNN,
    batch: sparse.spmatrix,
    limits: Optional[EndpointLimits] = None,
    at_time: float = 0.0,
) -> EndpointQueryResult:
    """Run a batch through the managed serverless endpoint, as far as it allows.

    Returns a result recording how many samples could actually be processed;
    ``EndpointInfeasibleError`` is raised when not even a single sample fits
    (e.g. the model exceeds the endpoint memory), matching the paper's
    treatment of Sage-SL-Inf for the largest networks.  ``at_time`` offsets
    the billing timestamps onto the shared serving timeline; latency is
    relative, so the default changes nothing.
    """
    limits = limits or EndpointLimits()
    batch = as_csr(batch)
    samples = batch.shape[1]

    model_bytes = model.nbytes()
    if model_bytes * 1.2 > limits.memory_mb * 1024 * 1024:
        raise EndpointInfeasibleError(
            f"model '{model.name}' ({model_bytes / 1e9:.2f} GB) exceeds the endpoint "
            f"memory of {limits.memory_mb} MB"
        )

    payload_per_sample = _per_sample_payload_bytes(batch)
    samples_per_request = max(1, int(limits.max_payload_bytes // payload_per_sample))
    vcpus = limits.memory_mb / MEMORY_MB_PER_VCPU
    latency_model = cloud.latency
    prices = cloud.prices

    processed = 0
    requests = 0
    total_latency = 0.0
    total_cost = 0.0
    cursor = 0
    while cursor < samples:
        stop = min(samples, cursor + samples_per_request)
        sub_batch = batch[:, cursor:stop]
        flops = 0.0
        activations = sub_batch
        for weight, bias in zip(model.weights, model.biases):
            flops += flop_count_spmm(weight, activations) + 2.0 * weight.nnz
            pre = weight @ activations
            pre.data = pre.data + bias
            pre.eliminate_zeros()
            np.maximum(pre.data, 0.0, out=pre.data)
            if model.activation_cap is not None:
                np.minimum(pre.data, model.activation_cap, out=pre.data)
            pre.eliminate_zeros()
            activations = pre
        runtime = limits.max_runtime_seconds + 1 if vcpus <= 0 else (
            latency_model.endpoint_overhead_seconds + latency_model.endpoint_compute(flops, vcpus)
        )
        if runtime > limits.max_runtime_seconds:
            # This request would exceed the runtime cap; the endpoint cannot
            # process any further samples (the paper reports the reduced
            # sample counts Sage-SL-Inf achieved per model size).
            break
        requests += 1
        processed = stop
        total_latency += runtime
        gb_seconds = (limits.memory_mb / 1024.0) * runtime
        request_cost = (
            prices.endpoint_price_per_invocation
            + gb_seconds * prices.endpoint_price_per_gb_second
        )
        total_cost += request_cost
        cloud.ledger.record(
            service=SERVICE_ENDPOINT,
            operation="request",
            resource=f"endpoint-{model.name}",
            quantity=1,
            cost=request_cost,
            timestamp=at_time + total_latency,
        )
        cursor = stop

    if processed == 0:
        raise EndpointInfeasibleError(
            f"no request of model '{model.name}' completes within the "
            f"{limits.max_runtime_seconds:.0f}s endpoint runtime limit"
        )

    return EndpointQueryResult(
        requested_samples=samples,
        processed_samples=processed,
        requests=requests,
        latency_seconds=total_latency,
        cost=total_cost,
    )

"""H-SpFF baseline: hypergraph-partitioned sparse inference on an HPC cluster.

The paper compares against H-SpFF [12] (Demirci & Ferhatosmanoglu, ICS'21),
which runs the same hypergraph-partitioned sparse feed-forward inference on
an on-premise HPC platform with MPI over a fast interconnect.  That hardware
is not available here, so the baseline is modelled on the same virtual-time
substrate: per-layer compute is spread over MPI ranks with an HPC-grade
per-core throughput and parallel efficiency, and the partition plan's
communication volume crosses a microsecond-latency, tens-of-GB/s
interconnect.  No cost is reported, matching the paper ("cost information is
not available for H-SpFF").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np
from scipy import sparse

from ..cloud import LatencyModel
from ..model import SparseDNN
from ..partitioning import HypergraphPartitioner, PartitionPlan
from ..sparse import as_csr, flop_count_spmm

__all__ = ["HPCQueryResult", "run_hpc_query"]

#: assumed bytes per transferred activation value on the wire (float32 + index).
_BYTES_PER_TRANSFERRED_VALUE = 8.0


@dataclass(frozen=True)
class HPCQueryResult:
    """Latency breakdown of one H-SpFF style query."""

    ranks: int
    latency_seconds: float
    compute_seconds: float
    communication_seconds: float
    batch_size: int

    @property
    def per_sample_ms(self) -> float:
        if self.batch_size == 0:
            return 0.0
        return self.latency_seconds / self.batch_size * 1000.0


def run_hpc_query(
    model: SparseDNN,
    batch: sparse.spmatrix,
    ranks: int,
    latency: Optional[LatencyModel] = None,
    plan: Optional[PartitionPlan] = None,
) -> HPCQueryResult:
    """Simulate one batch of H-SpFF inference with ``ranks`` MPI ranks."""
    if ranks < 1:
        raise ValueError("ranks must be at least 1")
    latency = latency or LatencyModel()
    batch = as_csr(batch)
    if plan is None and ranks > 1:
        plan = HypergraphPartitioner().partition(model, ranks)

    compute_seconds = 0.0
    communication_seconds = 0.0
    activations = batch
    for layer, (weight, bias) in enumerate(zip(model.weights, model.biases)):
        flops = flop_count_spmm(weight, activations) + 2.0 * weight.nnz
        compute_seconds += latency.hpc_compute(flops, ranks)

        pre = weight @ activations
        pre.data = pre.data + bias
        pre.eliminate_zeros()
        np.maximum(pre.data, 0.0, out=pre.data)
        if model.activation_cap is not None:
            np.minimum(pre.data, model.activation_cap, out=pre.data)
        pre.eliminate_zeros()

        if plan is not None and ranks > 1:
            avg_row_nnz = activations.nnz / max(activations.shape[0], 1)
            rows_exchanged = plan.comm_maps[layer].total_rows_transferred()
            bytes_exchanged = rows_exchanged * avg_row_nnz * _BYTES_PER_TRANSFERRED_VALUE
            # Transfers are spread over the ranks; each rank also pays a
            # per-layer message latency for its point-to-point exchanges.
            pairs = plan.comm_maps[layer].message_pairs()
            communication_seconds += latency.hpc_transfer(bytes_exchanged / ranks)
            communication_seconds += latency.hpc_interconnect_latency_seconds * (pairs / ranks)

        activations = pre

    total = compute_seconds + communication_seconds
    return HPCQueryResult(
        ranks=ranks,
        latency_seconds=total,
        compute_seconds=compute_seconds,
        communication_seconds=communication_seconds,
        batch_size=batch.shape[1],
    )

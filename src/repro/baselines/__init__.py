"""Comparison baselines: server VMs, HPC (H-SpFF) and a managed serverless endpoint."""

from .hpc import HPCQueryResult, run_hpc_query
from .sagemaker import (
    EndpointInfeasibleError,
    EndpointLimits,
    EndpointQueryResult,
    run_endpoint_query,
)
from .server import (
    ServerMode,
    ServerQueryResult,
    always_on_daily_cost,
    model_load_bytes,
    paper_server_instance,
    run_server_query,
)

__all__ = [
    "HPCQueryResult",
    "run_hpc_query",
    "EndpointInfeasibleError",
    "EndpointLimits",
    "EndpointQueryResult",
    "run_endpoint_query",
    "ServerMode",
    "ServerQueryResult",
    "always_on_daily_cost",
    "model_load_bytes",
    "paper_server_instance",
    "run_server_query",
]

"""Server-based baselines: Always-On (hot/cold) and Job-Scoped EC2 inference.

These reproduce the paper's server-side comparison points (Section VI-B):

* **Server-Always-On** -- a pair of large compute-optimised instances kept
  running around the clock.  Queries dispatch immediately; in the *hot* case
  the requested model is already resident in memory, in the *cold* case it
  must first be fetched from object storage (mimicking SageMaker multi-model
  endpoints demoting idle models to EBS and then S3).
* **Server-Job-Scoped** -- a right-sized instance is provisioned per query,
  pays the instance start-up delay (minutes), loads the model from object
  storage, runs the query and shuts down; billing covers only the elapsed
  duration.

Both baselines run the same single-process forward pass as FSD-Inf-Serial,
just on VM hardware, so their latency is dominated by model loading, start-up
and single-node compute throughput -- which is exactly the trade-off Figure 5
illustrates.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse

from ..cloud import CloudEnvironment, EC2_INSTANCE_SPECS, InstanceSpec
from ..model import SparseDNN
from ..sparse import as_csr, flop_count_spmm

__all__ = [
    "ServerMode",
    "ServerQueryResult",
    "paper_server_instance",
    "model_load_bytes",
    "run_server_query",
    "always_on_daily_cost",
]


class ServerMode(enum.Enum):
    """Provisioning/residency mode of the server baseline."""

    ALWAYS_ON_HOT = "always_on_hot"
    ALWAYS_ON_COLD = "always_on_cold"
    JOB_SCOPED = "job_scoped"


@dataclass(frozen=True)
class ServerQueryResult:
    """Latency and cost of one query on a server baseline."""

    mode: ServerMode
    instance_type: str
    latency_seconds: float
    startup_seconds: float
    model_load_seconds: float
    compute_seconds: float
    cost: float
    batch_size: int
    #: whether a fresh instance was booted for this query (job-scoped), as
    #: opposed to dispatching onto an already-running always-on fleet.  This
    #: is what distinguishes a cold start from a warm one: always-on-cold
    #: queries reload the model from object storage, but the instance itself
    #: was already provisioned.
    provisioned: bool = False

    @property
    def per_sample_ms(self) -> float:
        if self.batch_size == 0:
            return 0.0
        return self.latency_seconds / self.batch_size * 1000.0


#: Instance types used by the paper for each neuron count (Section VI-A2).
_PAPER_JOB_SCOPED_INSTANCES: Dict[int, str] = {
    1024: "c5.2xlarge",
    4096: "c5.2xlarge",
    16384: "c5.9xlarge",
    65536: "c5.12xlarge",
}
_PAPER_ALWAYS_ON_INSTANCE = "c5.12xlarge"


def paper_server_instance(neurons: int, mode: ServerMode) -> str:
    """Instance type the paper uses for a given neuron count and mode."""
    if mode is ServerMode.JOB_SCOPED:
        if neurons in _PAPER_JOB_SCOPED_INSTANCES:
            return _PAPER_JOB_SCOPED_INSTANCES[neurons]
        return _smallest_instance_for(neurons)
    return _PAPER_ALWAYS_ON_INSTANCE


def _smallest_instance_for(neurons: int) -> str:
    """Smallest c5 instance whose memory can hold a model of this width."""
    # Rough sizing: 32 nonzeros per neuron per layer, 120 layers, 8 bytes each,
    # doubled for activations and framing.
    estimated_bytes = neurons * 32 * 120 * 8 * 2
    for instance_type in sorted(EC2_INSTANCE_SPECS, key=lambda t: EC2_INSTANCE_SPECS[t]["memory_gib"]):
        if EC2_INSTANCE_SPECS[instance_type]["memory_gib"] * 1024 ** 3 >= estimated_bytes:
            return instance_type
    return "c5.24xlarge"


def model_load_bytes(model: SparseDNN) -> int:
    """Bytes that must be read to bring the model into memory."""
    return model.nbytes()


#: flop-count memo for :func:`_forward_flops`.  Counting the flops of a
#: forward pass requires *running* the forward pass (the per-layer nnz after
#: ReLU/thresholding depends on the data), which dominates the cost of a
#: server-baseline query.  The count is a pure function of (model, batch), so
#: repeated replays of the same pair -- every warm query of a serving trace --
#: reuse it.  Keys are object identities; the memo pins both objects so a
#: recycled ``id`` can never alias a dead entry.
_FORWARD_FLOPS_MEMO: "OrderedDict[Tuple[int, int], Tuple[SparseDNN, sparse.spmatrix, float]]" = (
    OrderedDict()
)
_FORWARD_FLOPS_MEMO_LIMIT = 128


def _forward_flops(model: SparseDNN, batch: sparse.spmatrix) -> float:
    """Total floating point work of a full forward pass over ``batch``."""
    key = (id(model), id(batch))
    cached = _FORWARD_FLOPS_MEMO.get(key)
    if cached is not None and cached[0] is model and cached[1] is batch:
        _FORWARD_FLOPS_MEMO.move_to_end(key)
        return cached[2]
    activations = as_csr(batch)
    total = 0.0
    for weight, bias in zip(model.weights, model.biases):
        total += flop_count_spmm(weight, activations)
        pre = weight @ activations
        total += 2.0 * pre.nnz
        pre.data = pre.data + bias
        pre.eliminate_zeros()
        np.maximum(pre.data, 0.0, out=pre.data)
        if model.activation_cap is not None:
            np.minimum(pre.data, model.activation_cap, out=pre.data)
        pre.eliminate_zeros()
        activations = pre
    _FORWARD_FLOPS_MEMO[key] = (model, batch, total)
    while len(_FORWARD_FLOPS_MEMO) > _FORWARD_FLOPS_MEMO_LIMIT:
        _FORWARD_FLOPS_MEMO.popitem(last=False)
    return total


def run_server_query(
    cloud: CloudEnvironment,
    model: SparseDNN,
    batch: sparse.spmatrix,
    mode: ServerMode,
    instance_type: Optional[str] = None,
    at_time: float = 0.0,
) -> ServerQueryResult:
    """Execute one inference query on a server baseline and bill it.

    ``at_time`` places the query on the shared timeline (the serving layer's
    replay position); latencies are reported relative to it, so the default
    of ``0.0`` reproduces the historical behaviour exactly.
    """
    batch = as_csr(batch)
    if instance_type is None:
        instance_type = paper_server_instance(model.num_neurons, mode)
    spec = InstanceSpec.for_type(instance_type)

    required_bytes = model_load_bytes(model) * 1.5  # model + activations headroom
    if not required_bytes <= spec.memory_bytes:
        raise MemoryError(
            f"model '{model.name}' needs ~{required_bytes / 1e9:.1f} GB but "
            f"{instance_type} offers {spec.memory_gib} GiB"
        )

    always_on = mode is not ServerMode.JOB_SCOPED
    vm = cloud.vms.launch(instance_type, always_on=always_on)
    ready_at = vm.start(at_time=at_time)
    startup_seconds = ready_at - at_time

    load_start = vm.clock.now
    if mode is ServerMode.ALWAYS_ON_HOT:
        pass  # model already resident in memory
    elif mode is ServerMode.ALWAYS_ON_COLD:
        vm.load_from_object_storage(model_load_bytes(model))
    else:
        vm.load_from_object_storage(model_load_bytes(model))
    model_load_seconds = vm.clock.now - load_start

    compute_start = vm.clock.now
    vm.run_compute(_forward_flops(model, batch))
    compute_seconds = vm.clock.now - compute_start

    latency = vm.clock.now - at_time
    if mode is ServerMode.JOB_SCOPED:
        elapsed = vm.stop()
        cost = (elapsed / 3600.0) * vm.hourly_price()
    else:
        # Always-on instances are billed by the day elsewhere; attribute only the
        # marginal (zero) per-query cost here, as the paper's Figure 4 does.
        cost = 0.0

    return ServerQueryResult(
        mode=mode,
        instance_type=instance_type,
        latency_seconds=latency,
        startup_seconds=startup_seconds,
        model_load_seconds=model_load_seconds,
        compute_seconds=compute_seconds,
        cost=cost,
        batch_size=batch.shape[1],
        provisioned=not vm.always_on,
    )


def always_on_daily_cost(
    cloud: CloudEnvironment,
    instance_type: str = _PAPER_ALWAYS_ON_INSTANCE,
    instances: int = 2,
    hours: float = 24.0,
) -> float:
    """Standing daily cost of the Always-On fleet (two instances in the paper)."""
    total = 0.0
    for _ in range(instances):
        vm = cloud.vms.launch(instance_type, always_on=True)
        total += vm.bill_always_on_period(hours)
    return total

"""FSD-Inference reproduction: fully serverless distributed ML inference.

Reproduction of "FSD-Inference: Fully Serverless Distributed Inference with
Scalable Cloud Communication" (Oakley & Ferhatosmanoglu, ICDE 2024) on a
simulated, virtually-timed serverless cloud substrate.

Quickstart::

    from repro import (
        CloudEnvironment, EngineConfig, FSDInference, Variant,
        GraphChallengeConfig, build_graph_challenge_model, generate_input_batch,
        HypergraphPartitioner,
    )

    cloud = CloudEnvironment()
    model = build_graph_challenge_model(GraphChallengeConfig(neurons=1024, layers=12))
    batch = generate_input_batch(model.num_neurons, samples=64)

    engine = FSDInference(cloud, EngineConfig(variant=Variant.QUEUE, workers=8))
    plan = engine.partition(model, HypergraphPartitioner())
    result = engine.infer(model, batch, plan)
    print(result.latency_seconds, result.cost.total)
"""

from .baselines import (
    EndpointInfeasibleError,
    EndpointLimits,
    EndpointQueryResult,
    HPCQueryResult,
    ServerMode,
    ServerQueryResult,
    always_on_daily_cost,
    run_endpoint_query,
    run_hpc_query,
    run_server_query,
)
from .chaos import (
    ChaosConfig,
    ColdStartStorm,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    PoissonFaultProcess,
    PreemptionWindows,
    RetryPolicy,
    ScheduledFaults,
)
from .cloud import (
    CloudEnvironment,
    CostReport,
    FunctionPreemptedError,
    FunctionTimeoutError,
    LatencyModel,
    OutOfMemoryError,
    PriceBook,
    TransientServiceError,
    VirtualClock,
)
from .comm import (
    ObjectChannel,
    ObjectChannelConfig,
    QueueChannel,
    QueueChannelConfig,
    ThreadPool,
)
from .concurrency import (
    ConcurrencyConfig,
    ContentionConfig,
    FairShareArbiter,
)
from .core import (
    EngineConfig,
    FSDInference,
    InferenceMetrics,
    InferenceResult,
    LaunchTree,
    Variant,
)
from .costmodel import (
    CandidateEstimate,
    CoalescingProfile,
    CoalescingRecommendation,
    CostBreakdown,
    CostValidationReport,
    QueryCostModel,
    Recommendation,
    SizeStats,
    WorkloadCostEstimator,
    WorkloadEstimate,
    WorkloadProfile,
    WorkloadStats,
    estimate_candidate,
    estimate_from_metrics,
    recommend_coalescing,
    recommend_variant,
    validate_cost_model,
)
from .experiments import (
    Campaign,
    CampaignCell,
    CampaignReport,
    CellResult,
)
from .model import SparseDNN
from .planner import (
    BackendCalibration,
    CandidateResult,
    DeploymentPlanner,
    PlanCandidate,
    PlanReport,
    SearchSpace,
    SLOSpec,
    SLOVerdict,
    calibrate_backend,
    estimate_cold_fraction,
)
from .scenarios import (
    ArrivalProcess,
    BurstyProcess,
    ChaosScenario,
    DiurnalProcess,
    FlashCrowdProcess,
    MixtureScenario,
    PoissonProcess,
    Scenario,
    TraceProcess,
    build_scenario_workload,
)
from .serving import (
    BatchCoalescingPolicy,
    EndpointBackendSpec,
    EndpointServingBackend,
    FSDBackendSpec,
    FSDServingBackend,
    HPCBackendSpec,
    HPCServingBackend,
    InferenceServer,
    PolicySetSpec,
    QueryRecord,
    QueryWorkloadFactory,
    QueueDepthAutoscaler,
    SchedulingPolicy,
    ServerBackendSpec,
    ServerServingBackend,
    ServingBackend,
    ServingConfig,
    ServingReport,
    policies_from_knobs,
)
from .telemetry import (
    TelemetryConfig,
    Tracer,
    chrome_trace,
    critical_path,
    write_chrome_trace,
)
from .partitioning import (
    ContiguousPartitioner,
    HypergraphPartitioner,
    PartitionPlan,
    Partitioner,
    RandomPartitioner,
    evaluate_plan,
)
from .workloads import (
    GraphChallengeConfig,
    InferenceQuery,
    PAPER_BATCH_SIZE,
    PAPER_LAYER_COUNT,
    PAPER_NEURON_COUNTS,
    PAPER_WORKER_COUNTS,
    SporadicWorkload,
    build_graph_challenge_model,
    generate_input_batch,
    generate_sporadic_workload,
    merge_queries,
    paper_configuration,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # concurrency
    "ConcurrencyConfig",
    "ContentionConfig",
    "FairShareArbiter",
    # chaos
    "ChaosConfig",
    "ColdStartStorm",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "PoissonFaultProcess",
    "PreemptionWindows",
    "RetryPolicy",
    "ScheduledFaults",
    # cloud
    "CloudEnvironment",
    "CostReport",
    "FunctionPreemptedError",
    "FunctionTimeoutError",
    "LatencyModel",
    "OutOfMemoryError",
    "PriceBook",
    "TransientServiceError",
    "VirtualClock",
    # comm
    "ObjectChannel",
    "ObjectChannelConfig",
    "QueueChannel",
    "QueueChannelConfig",
    "ThreadPool",
    # core
    "EngineConfig",
    "FSDInference",
    "InferenceMetrics",
    "InferenceResult",
    "LaunchTree",
    "Variant",
    # cost model
    "CandidateEstimate",
    "CoalescingProfile",
    "CoalescingRecommendation",
    "CostBreakdown",
    "CostValidationReport",
    "QueryCostModel",
    "Recommendation",
    "SizeStats",
    "WorkloadCostEstimator",
    "WorkloadEstimate",
    "WorkloadProfile",
    "WorkloadStats",
    "estimate_candidate",
    "estimate_from_metrics",
    "recommend_coalescing",
    "recommend_variant",
    "validate_cost_model",
    # planner
    "BackendCalibration",
    "CandidateResult",
    "DeploymentPlanner",
    "PlanCandidate",
    "PlanReport",
    "SearchSpace",
    "SLOSpec",
    "SLOVerdict",
    "calibrate_backend",
    "estimate_cold_fraction",
    # model & partitioning
    "SparseDNN",
    "ContiguousPartitioner",
    "HypergraphPartitioner",
    "PartitionPlan",
    "Partitioner",
    "RandomPartitioner",
    "evaluate_plan",
    # scenarios
    "ArrivalProcess",
    "BurstyProcess",
    "ChaosScenario",
    "DiurnalProcess",
    "FlashCrowdProcess",
    "MixtureScenario",
    "PoissonProcess",
    "Scenario",
    "TraceProcess",
    "build_scenario_workload",
    # experiments
    "Campaign",
    "CampaignCell",
    "CampaignReport",
    "CellResult",
    # serving
    "BatchCoalescingPolicy",
    "EndpointBackendSpec",
    "EndpointServingBackend",
    "FSDBackendSpec",
    "FSDServingBackend",
    "HPCBackendSpec",
    "HPCServingBackend",
    "InferenceServer",
    "PolicySetSpec",
    "QueryRecord",
    "QueryWorkloadFactory",
    "QueueDepthAutoscaler",
    "SchedulingPolicy",
    "ServerBackendSpec",
    "ServerServingBackend",
    "ServingBackend",
    "ServingConfig",
    "ServingReport",
    "policies_from_knobs",
    # telemetry
    "TelemetryConfig",
    "Tracer",
    "chrome_trace",
    "critical_path",
    "write_chrome_trace",
    # workloads
    "GraphChallengeConfig",
    "InferenceQuery",
    "PAPER_BATCH_SIZE",
    "PAPER_LAYER_COUNT",
    "PAPER_NEURON_COUNTS",
    "PAPER_WORKER_COUNTS",
    "SporadicWorkload",
    "build_graph_challenge_model",
    "generate_input_batch",
    "generate_sporadic_workload",
    "merge_queries",
    "paper_configuration",
    # baselines
    "EndpointInfeasibleError",
    "EndpointLimits",
    "EndpointQueryResult",
    "HPCQueryResult",
    "ServerMode",
    "ServerQueryResult",
    "always_on_daily_cost",
    "run_endpoint_query",
    "run_hpc_query",
    "run_server_query",
]

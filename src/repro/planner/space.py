"""The planner's search-space protocol: SLOs, candidates, grids, refinement.

A :class:`SearchSpace` declares the configuration space the planner explores
for one scenario:

* **backends** -- named zero-argument factories returning fresh
  :class:`~repro.serving.ServingBackend` instances (the campaign-runner
  contract: each call owns a private cloud).  Backend-level knobs (worker
  count, variant, memory) are expressed by registering multiple named
  factories -- e.g. ``{"fsd-q4": ..., "fsd-q8": ...}`` -- so one dimension
  covers both the substrate and its sizing.
* **knobs** -- a declarative grid of scheduling-policy knob values (the
  :func:`repro.serving.policies_from_knobs` vocabulary).  The cross product
  of backends and knob values is the base grid; *successive-halving
  refinement* (:meth:`SearchSpace.refine_around`) then bisects the numeric
  knob intervals around the analytic incumbent, narrowing onto promising
  regions without enumerating a dense grid up front.

:class:`SLOSpec` states what "good" means -- a p95/p99 latency bound, an
optional daily budget, and optional per-tenant p95 overrides checked against
the serving report's per-tenant pivot (mixture scenarios).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..serving import KNOWN_POLICY_KNOBS, ServingBackend, policies_from_knobs

__all__ = [
    "KnobValue",
    "SLOSpec",
    "SLOVerdict",
    "PlanCandidate",
    "SearchSpace",
    "pareto_indices",
]

KnobValue = Union[None, bool, int, float, str]
BackendFactory = Callable[[], ServingBackend]

_SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True)
class SLOVerdict:
    """Whether one evaluated configuration met the SLO, and how it failed."""

    compliant: bool
    violations: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {"compliant": self.compliant, "violations": list(self.violations)}


@dataclass(frozen=True)
class SLOSpec:
    """A service-level objective: latency bounds plus an optional budget.

    ``per_tenant_p95`` overrides the global p95 bound for named tenants of a
    :class:`~repro.scenarios.MixtureScenario`; it is checked against the
    serving summary's per-tenant pivot, so it only applies to workloads that
    actually carry tenant tags (an override naming an absent tenant is a
    violation -- the SLO asks for a guarantee the replay cannot witness).
    """

    p95_latency_seconds: Optional[float] = None
    p99_latency_seconds: Optional[float] = None
    daily_budget: Optional[float] = None
    per_tenant_p95: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "per_tenant_p95", dict(sorted(dict(self.per_tenant_p95).items()))
        )
        bounds = (
            self.p95_latency_seconds,
            self.p99_latency_seconds,
            self.daily_budget,
            *self.per_tenant_p95.values(),
        )
        if all(bound is None for bound in bounds):
            raise ValueError("an SLO needs at least one bound")
        for bound in bounds:
            if bound is not None and bound <= 0:
                raise ValueError(f"SLO bounds must be positive, got {bound}")

    def evaluate(self, summary: Mapping[str, object], horizon_seconds: float) -> SLOVerdict:
        """Check one serving summary against every configured bound.

        Latency percentiles of an empty replay are ``None`` in the summary;
        a bound trivially holds over zero queries, so those checks pass.
        """
        violations: List[str] = []

        def check_latency(name: str, key: str, bound: Optional[float], view: Mapping) -> None:
            if bound is None:
                return
            value = view.get(key)
            if value is not None and float(value) > bound:
                violations.append(f"{name} {float(value):.3f}s exceeds the {bound:.3f}s bound")

        check_latency("p95 latency", "p95_latency_seconds", self.p95_latency_seconds, summary)
        check_latency("p99 latency", "p99_latency_seconds", self.p99_latency_seconds, summary)
        if self.daily_budget is not None:
            daily = float(summary["cost_total"]) * (_SECONDS_PER_DAY / horizon_seconds)  # type: ignore[arg-type]
            if daily > self.daily_budget:
                violations.append(
                    f"daily cost ${daily:.6f} exceeds the ${self.daily_budget:.6f} budget"
                )
        if self.per_tenant_p95:
            tenants: Mapping[str, Mapping[str, object]] = summary.get("tenants", {})  # type: ignore[assignment]
            for tenant, bound in self.per_tenant_p95.items():
                view = tenants.get(tenant)
                if view is None:
                    violations.append(f"tenant {tenant!r} has a p95 override but no queries in the replay")
                    continue
                check_latency(f"tenant {tenant!r} p95 latency", "p95_latency_seconds", bound, view)
        return SLOVerdict(compliant=not violations, violations=tuple(violations))

    def describe(self) -> Dict[str, object]:
        return {
            "p95_latency_seconds": self.p95_latency_seconds,
            "p99_latency_seconds": self.p99_latency_seconds,
            "daily_budget": self.daily_budget,
            "per_tenant_p95": dict(self.per_tenant_p95),
        }


def _format_knob(value: KnobValue) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


@dataclass(frozen=True)
class PlanCandidate:
    """One point of the search space: a backend kind plus policy knobs.

    Knobs are stored as a sorted tuple of pairs so equal candidates compare,
    hash and serialise identically regardless of construction order; the
    neutral knob values (zero window, ``None`` autoscale limit) are part of
    the identity even though they construct no policy -- two candidates may
    therefore replay identically while remaining distinct search points.
    """

    backend: str
    knobs: Tuple[Tuple[str, KnobValue], ...] = ()

    def __post_init__(self) -> None:
        if not self.backend:
            raise ValueError("a candidate needs a backend name")
        canonical = tuple(sorted(dict(self.knobs).items()))
        object.__setattr__(self, "knobs", canonical)
        policies_from_knobs(self.knob_dict)  # validate the vocabulary eagerly

    @property
    def knob_dict(self) -> Dict[str, KnobValue]:
        return dict(self.knobs)

    @property
    def label(self) -> str:
        """Human-readable unique identity, e.g. ``fsd[coalesce_window_seconds=600]``."""
        if not self.knobs:
            return self.backend
        inner = ",".join(f"{key}={_format_knob(value)}" for key, value in self.knobs)
        return f"{self.backend}[{inner}]"

    def with_knob(self, key: str, value: KnobValue) -> "PlanCandidate":
        knobs = self.knob_dict
        knobs[key] = value
        return PlanCandidate(backend=self.backend, knobs=tuple(knobs.items()))

    def describe(self) -> Dict[str, object]:
        return {"backend": self.backend, "knobs": self.knob_dict, "label": self.label}


class SearchSpace:
    """Declarative (backend x policy knob) grid with numeric refinement."""

    def __init__(
        self,
        backends: Mapping[str, BackendFactory],
        knobs: Optional[Mapping[str, Sequence[KnobValue]]] = None,
    ):
        if not backends:
            raise ValueError("a search space needs at least one backend")
        self.backends: Dict[str, BackendFactory] = dict(backends)
        self.knobs: Dict[str, Tuple[KnobValue, ...]] = {}
        for key, values in (knobs or {}).items():
            if key not in KNOWN_POLICY_KNOBS:
                raise ValueError(
                    f"unknown policy knob {key!r}; known knobs: {sorted(KNOWN_POLICY_KNOBS)}"
                )
            grid = tuple(dict.fromkeys(values))
            if not grid:
                raise ValueError(f"knob {key!r} has an empty value grid")
            self.knobs[key] = grid

    def candidates(self) -> List[PlanCandidate]:
        """The base grid: every backend crossed with every knob combination."""
        keys = list(self.knobs)
        combos = list(itertools.product(*(self.knobs[key] for key in keys)))
        return [
            PlanCandidate(backend=backend, knobs=tuple(zip(keys, combo)))
            for backend in self.backends
            for combo in combos
        ]

    def refine_around(
        self, incumbent: PlanCandidate, explored: Iterable[PlanCandidate]
    ) -> List[PlanCandidate]:
        """Successive-halving refinement: bisect numeric knob intervals.

        For every numeric knob, the explored values (same backend) around the
        incumbent's value define its current bracket; the midpoints to the
        nearest lower and higher explored values are proposed as new
        candidates (one knob varied at a time, coordinate-descent style).
        Each round therefore halves the resolution of the grid around the
        incumbent.  Integer-typed knob grids round their midpoints and drop
        degenerate proposals; already-explored candidates are never
        re-proposed, so refinement terminates once the bracket collapses.
        """
        explored_set: Set[PlanCandidate] = set(explored)
        seen_values: Dict[str, Set[KnobValue]] = {key: set(values) for key, values in self.knobs.items()}
        for candidate in explored_set:
            if candidate.backend != incumbent.backend:
                continue
            for key, value in candidate.knobs:
                seen_values.setdefault(key, set()).add(value)

        proposals: List[PlanCandidate] = []
        for key, value in incumbent.knobs:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            numeric = sorted(
                v for v in seen_values.get(key, set())
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            )
            integral = all(isinstance(v, int) for v in numeric)
            below = max((v for v in numeric if v < value), default=None)
            above = min((v for v in numeric if v > value), default=None)
            for neighbour in (below, above):
                if neighbour is None:
                    continue
                midpoint: KnobValue = (float(value) + float(neighbour)) / 2.0
                if integral:
                    midpoint = int(round(midpoint))
                    if midpoint in (value, neighbour):
                        continue
                proposal = incumbent.with_knob(key, midpoint)
                if proposal not in explored_set and proposal not in proposals:
                    proposals.append(proposal)
        return proposals


def pareto_indices(points: Sequence[Tuple[float, float]]) -> List[int]:
    """Indices of the non-dominated points of a (cost, latency) cloud.

    A point is dominated when another is at least as good on both axes and
    strictly better on one; ties survive together (the simulated stage, or
    the reader, separates them).  Order is preserved.
    """
    kept: List[int] = []
    for i, (cost_i, latency_i) in enumerate(points):
        dominated = False
        for j, (cost_j, latency_j) in enumerate(points):
            if i == j:
                continue
            if (
                cost_j <= cost_i
                and latency_j <= latency_i
                and (cost_j < cost_i or latency_j < latency_i)
            ):
                dominated = True
                break
        if not dominated:
            kept.append(i)
    return kept

"""Probe-based calibration: fit analytic cost models per backend kind.

The analytic pruning stage scores every candidate without replaying the
workload, but it needs per-(backend, model size) cost/latency coefficients.
Rather than asking callers to hand-tune them, :func:`calibrate_backend`
derives them from **O(backends) probe executions** -- constant in the number
of candidates, which is what makes analytic pruning cheaper than exhaustive
replay:

1. an empty begin/finish cycle captures the backend's *standing* cost over
   the horizon (always-on fleets bill their whole fleet in ``begin``);
2. per model size, one warm-up execution (absorbing cold starts and the
   per-size planning/staging caches) followed by two warm probes at
   ``s`` and ``2s`` samples fit the affine
   :class:`~repro.costmodel.QueryCostModel` -- the same fixed-vs-marginal
   decomposition the coalescing recommendation reasons about;
3. the warm-up-minus-warm latency gap estimates the cold-start penalty.

Every probe runs on a **throw-away backend instance** (a fresh factory
call), so calibration never touches the private clouds the simulated
evaluation stage replays on; all probes are virtual-time deterministic, so
calibration is reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..costmodel import QueryCostModel, WorkloadStats
from ..serving import ServingBackend
from ..workloads import InferenceQuery, SporadicWorkload

__all__ = ["BackendCalibration", "calibrate_backend", "estimate_cold_fraction"]


@dataclass(frozen=True)
class BackendCalibration:
    """Analytic coefficients of one backend kind over one workload."""

    backend: str
    #: horizon-scoped fixed bill (always-on fleets; zero for pay-per-use).
    standing_cost: float
    #: affine per-execution model per model size.
    models: Dict[int, QueryCostModel]
    #: the backend's warm keepalive, for cold-fraction estimation (``None``
    #: means timeless warm reuse or no warm-pool concept at all).
    warm_keepalive_seconds: Optional[float]

    def to_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "standing_cost": self.standing_cost,
            "models": {str(neurons): model.to_dict() for neurons, model in self.models.items()},
            "warm_keepalive_seconds": self.warm_keepalive_seconds,
        }


def calibrate_backend(
    name: str,
    factory: Callable[[], ServingBackend],
    stats: WorkloadStats,
) -> BackendCalibration:
    """Fit :class:`BackendCalibration` for one backend kind via probes."""
    backend = factory()
    empty = SporadicWorkload(queries=[], horizon_seconds=stats.horizon_seconds)
    backend.begin(empty)
    standing_cost = backend.finish().total

    models: Dict[int, QueryCostModel] = {}
    for size in stats.sizes:
        base_samples = max(1, int(round(size.mean_samples)))

        def probe(query_id: int, samples: int):
            query = InferenceQuery(
                query_id=query_id, arrival_time=0.0, neurons=size.neurons, samples=samples
            )
            return backend.execute(query, at_time=0.0)

        warmup = probe(0, base_samples)  # cold: pays planning caches + cold starts
        small = probe(1, base_samples)  # warm
        large = probe(2, 2 * base_samples)  # warm, doubled samples
        models[size.neurons] = QueryCostModel.from_probes(
            small=(base_samples, small.cost, small.latency_seconds),
            large=(2 * base_samples, large.cost, large.latency_seconds),
            cold_penalty_seconds=max(0.0, warmup.latency_seconds - small.latency_seconds),
        )

    return BackendCalibration(
        backend=name,
        standing_cost=standing_cost,
        models=models,
        warm_keepalive_seconds=getattr(backend, "warm_keepalive_seconds", None),
    )


def estimate_cold_fraction(
    workload: SporadicWorkload, warm_keepalive_seconds: Optional[float]
) -> float:
    """Fraction of arrivals expected to find their warm pool expired.

    Warm pools are per model size (each size is its own function), so the
    relevant gaps are between consecutive arrivals *of the same size*; a gap
    longer than the keepalive means the pool expired and the next query
    starts cold.  The first arrival of each size is always cold.  A
    ``None`` keepalive (timeless warm reuse, or substrates without a warm
    pool) estimates zero.  This is a pruning heuristic: coalescing thins the
    admission stream and lengthens effective gaps, which is deliberately
    ignored here and left to the simulated stage.
    """
    if warm_keepalive_seconds is None or not workload.queries:
        return 0.0
    cold = 0
    total = 0
    for queries in workload.queries_by_neurons().values():
        times = np.sort(np.asarray([query.arrival_time for query in queries]))
        gaps = np.diff(times)
        cold += 1 + int(np.count_nonzero(gaps > warm_keepalive_seconds))
        total += len(queries)
    return cold / total if total else 0.0

"""SLO-constrained deployment planning over the serving configuration space.

Given a scenario (any object with ``name``/``build()``/``describe()``, e.g.
:class:`~repro.scenarios.Scenario` or
:class:`~repro.scenarios.MixtureScenario`) and an :class:`SLOSpec`, the
:class:`DeploymentPlanner` searches a declarative :class:`SearchSpace` of
(backend x policy knob) configurations in two stages -- analytic pruning
through the cost-model candidate scorer, then simulated evaluation of the
surviving Pareto finalists through the campaign runner -- and returns a
:class:`PlanReport` ranking the frontier of (daily cost, p95 latency) with
per-candidate SLO verdicts and the cheapest compliant winner.
"""

from .calibration import BackendCalibration, calibrate_backend, estimate_cold_fraction
from .planner import CandidateResult, DeploymentPlanner, PlanReport
from .space import (
    PlanCandidate,
    SearchSpace,
    SLOSpec,
    SLOVerdict,
    pareto_indices,
)

__all__ = [
    "BackendCalibration",
    "calibrate_backend",
    "estimate_cold_fraction",
    "CandidateResult",
    "DeploymentPlanner",
    "PlanReport",
    "PlanCandidate",
    "SearchSpace",
    "SLOSpec",
    "SLOVerdict",
    "pareto_indices",
]

"""The SLO-constrained deployment planner: prune analytically, verify by replay.

:class:`DeploymentPlanner` answers the question the paper's Section IV-C
decision procedure poses, generalised to the full serving configuration
space: *what is the cheapest deployment configuration that meets my latency
SLO for this workload?*  It works in two stages:

1. **Analytic pruning.**  Every :class:`~repro.planner.PlanCandidate` of the
   :class:`~repro.planner.SearchSpace` grid is scored through the cost-model
   scorer (:func:`repro.costmodel.estimate_candidate`) using probe-fitted
   per-backend coefficients -- O(backends) probes, never a full replay.
   Successive-halving refinement then bisects the numeric knob intervals
   around the analytic incumbent for a configurable number of rounds, and
   dominated candidates are discarded: only the analytic Pareto frontier of
   (cost, p95 latency) survives as *finalists*.
2. **Simulated evaluation.**  The finalists are dispatched through the
   existing :class:`~repro.experiments.Campaign` machinery -- one
   private-cloud :class:`~repro.serving.InferenceServer` serve per candidate,
   parallel across candidates, deterministic under the scenario seed -- and
   the report carries each finalist's *unmodified*
   :meth:`~repro.serving.ServingReport.summary` (the exact payload the
   serving/campaign benchmarks fingerprint, so a policy-free FSD candidate
   reproduces the serving benchmark's fingerprint bit-for-bit).

The outcome is a :class:`PlanReport`: the simulated Pareto frontier of
(daily cost, p95 latency), per-candidate SLO-compliance verdicts (including
per-tenant overrides on mixture scenarios), the winner -- the cheapest
frontier configuration that meets the SLO -- and markdown/JSON renderings
consistent with :class:`~repro.experiments.CampaignReport`.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..costmodel import CandidateEstimate, WorkloadStats, estimate_candidate
from ..experiments import Campaign, CampaignCell
from ..serving import PolicySetSpec
from ..concurrency import ConcurrencyConfig
from ..telemetry import TelemetryConfig
from .calibration import BackendCalibration, calibrate_backend, estimate_cold_fraction
from .space import PlanCandidate, SearchSpace, SLOSpec, SLOVerdict, pareto_indices

__all__ = ["CandidateResult", "PlanReport", "DeploymentPlanner"]

_SECONDS_PER_DAY = 86400.0


@dataclass
class CandidateResult:
    """One scored candidate: analytic estimate plus (for finalists) replay."""

    candidate: PlanCandidate
    analytic: CandidateEstimate
    finalist: bool = False
    #: the finalist's unmodified :meth:`ServingReport.summary` (``None`` for
    #: analytically pruned candidates -- they were never replayed).
    summary: Optional[Dict[str, object]] = None
    slo: Optional[SLOVerdict] = None
    wall_seconds: float = 0.0
    #: scenario identity baked in by the planner (fingerprint context).
    scenario: Dict[str, object] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return self.candidate.label

    @property
    def simulated_cost(self) -> Optional[float]:
        if self.summary is None:
            return None
        return float(self.summary["cost_total"])  # type: ignore[arg-type]

    def simulated_daily_cost(self, horizon_seconds: float) -> Optional[float]:
        cost = self.simulated_cost
        if cost is None:
            return None
        return cost * (_SECONDS_PER_DAY / horizon_seconds)

    @property
    def simulated_p95(self) -> Optional[float]:
        if self.summary is None:
            return None
        value = self.summary["p95_latency_seconds"]
        return None if value is None else float(value)

    @property
    def fingerprint(self) -> Optional[str]:
        """Stable content hash over (scenario, candidate, simulated summary).

        Same policy as the campaign benchmark: simulated values only, never
        wall-clock, so fixed scenario seeds reproduce it bit-for-bit.
        ``None`` until the candidate has been replayed.
        """
        if self.summary is None:
            return None
        payload = {
            "scenario": self.scenario,
            "backend": self.candidate.backend,
            "knobs": self.candidate.knob_dict,
            "summary": self.summary,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        return {
            "candidate": self.candidate.describe(),
            "analytic": self.analytic.to_dict(),
            "finalist": self.finalist,
            "fingerprint": self.fingerprint,
            "summary": self.summary,
            "slo": None if self.slo is None else self.slo.to_dict(),
            "wall_seconds": self.wall_seconds,
        }


def _format_value(value: Optional[float]) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "n/a"
    return f"{value:.6g}"


@dataclass
class PlanReport:
    """Ranked outcome of one planning run over one scenario."""

    scenario: Dict[str, object]
    slo: SLOSpec
    horizon_seconds: float
    candidates: List[CandidateResult]
    #: labels of the simulated Pareto frontier, cheapest first.
    frontier_labels: List[str]
    #: cheapest SLO-compliant *evaluated* configuration (``None`` when no
    #: evaluated configuration meets the SLO).  With only p95/budget bounds
    #: the winner always lies on the frontier (a dominating point is at least
    #: as compliant); p99 or per-tenant bounds can crown a dominated point.
    winner_label: Optional[str]
    executor: str = "thread"

    # -- lookup ----------------------------------------------------------------

    def result(self, label: str) -> CandidateResult:
        for candidate in self.candidates:
            if candidate.label == label:
                return candidate
        raise KeyError(f"no candidate labelled {label!r}")

    @property
    def finalists(self) -> List[CandidateResult]:
        return [candidate for candidate in self.candidates if candidate.finalist]

    @property
    def frontier(self) -> List[CandidateResult]:
        return [self.result(label) for label in self.frontier_labels]

    @property
    def winner(self) -> Optional[CandidateResult]:
        return None if self.winner_label is None else self.result(self.winner_label)

    # -- export ----------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "slo": self.slo.describe(),
            "horizon_seconds": self.horizon_seconds,
            "executor": self.executor,
            "num_candidates": len(self.candidates),
            "num_finalists": len(self.finalists),
            "frontier": self.frontier_labels,
            "winner": self.winner_label,
            "candidates": [candidate.to_dict() for candidate in self.candidates],
        }

    def to_json(self, path: Optional[Union[str, "os.PathLike[str]"]] = None, indent: int = 2) -> str:
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=False) + "\n"
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text)
        return text

    def render_markdown(self) -> str:
        """A GitHub-flavoured table of the finalists, cheapest first."""
        header = (
            "| candidate | analytic $/day | simulated $/day | simulated p95 (s) "
            "| SLO | frontier |"
        )
        separator = "|" + " --- |" * 6
        ordered = sorted(
            self.finalists,
            key=lambda c: (c.simulated_cost if c.simulated_cost is not None else float("inf"), c.label),
        )
        rows = []
        for candidate in ordered:
            slo = "n/a" if candidate.slo is None else ("pass" if candidate.slo.compliant else "FAIL")
            if candidate.label == self.winner_label:
                marker = "winner"
            else:
                marker = "yes" if candidate.label in self.frontier_labels else ""
            rows.append(
                f"| {candidate.label} "
                f"| {_format_value(candidate.analytic.daily_cost)} "
                f"| {_format_value(candidate.simulated_daily_cost(self.horizon_seconds))} "
                f"| {_format_value(candidate.simulated_p95)} "
                f"| {slo} | {marker} |"
            )
        title = f"**Deployment plan -- {self.scenario.get('name', 'scenario')}**"
        return "\n".join([title, "", header, separator, *rows])


class DeploymentPlanner:
    """Search a :class:`SearchSpace` for the cheapest SLO-compliant deployment."""

    def __init__(
        self,
        search_space: SearchSpace,
        slo: SLOSpec,
        refine_rounds: int = 1,
        max_finalists: int = 8,
        executor: str = "thread",
        max_workers: Optional[int] = None,
        telemetry: Optional["TelemetryConfig"] = None,
        concurrency: Optional["ConcurrencyConfig"] = None,
    ):
        if refine_rounds < 0:
            raise ValueError("refine_rounds cannot be negative")
        if max_finalists < 1:
            raise ValueError("max_finalists must be at least 1")
        if executor not in ("thread", "process"):
            # Fail fast: Campaign.run would only raise after the (expensive)
            # calibration and analytic-scoring stages have completed.
            raise ValueError(f"unknown executor {executor!r}; use 'thread' or 'process'")
        self.search_space = search_space
        self.slo = slo
        self.refine_rounds = refine_rounds
        self.max_finalists = max_finalists
        self.executor = executor
        self.max_workers = max_workers
        # Opt-in telemetry for the Stage-2 replay campaign: each finalist
        # cell records a trace (``CampaignReport.export_traces``).  ``None``
        # keeps the planner's replays untraced and byte-identical.
        self.telemetry = telemetry
        # Opt-in interleaved replay for the Stage-2 campaign: finalists are
        # evaluated under contention so the ranking reflects interference.
        # ``None`` keeps the serialized replays byte-identical.
        self.concurrency = concurrency

    # -- analytic stage --------------------------------------------------------

    def _score(
        self,
        candidate: PlanCandidate,
        stats: WorkloadStats,
        calibration: BackendCalibration,
        cold_fraction: float,
    ) -> CandidateEstimate:
        knobs = candidate.knob_dict
        return estimate_candidate(
            stats,
            calibration.models,
            standing_cost=calibration.standing_cost,
            coalesce_window_seconds=float(knobs.get("coalesce_window_seconds") or 0.0),
            coalesce_max_hold_seconds=(
                None
                if knobs.get("coalesce_max_hold_seconds") is None
                else float(knobs["coalesce_max_hold_seconds"])  # type: ignore[arg-type]
            ),
            coalesce_max_batch_queries=(
                None
                if knobs.get("coalesce_max_batch_queries") is None
                else int(knobs["coalesce_max_batch_queries"])  # type: ignore[arg-type]
            ),
            cold_fraction=cold_fraction,
        )

    def _analytically_feasible(self, estimate: CandidateEstimate) -> bool:
        if (
            self.slo.p95_latency_seconds is not None
            and estimate.p95_latency_seconds > self.slo.p95_latency_seconds
        ):
            return False
        if self.slo.daily_budget is not None and estimate.daily_cost > self.slo.daily_budget:
            return False
        return True

    def _incumbent(self, scored: Dict[PlanCandidate, CandidateEstimate]) -> PlanCandidate:
        """Cheapest analytically feasible candidate, else the fastest one."""
        feasible = [c for c, e in scored.items() if self._analytically_feasible(e)]
        pool = feasible or list(scored)
        return min(
            pool,
            key=lambda c: (
                scored[c].total_cost,
                scored[c].p95_latency_seconds,
                c.label,
            ),
        )

    def _select_finalists(
        self, scored: Dict[PlanCandidate, CandidateEstimate]
    ) -> List[PlanCandidate]:
        """The analytic Pareto frontier, cheapest first, capped in size."""
        candidates = list(scored)
        points = [
            (scored[c].total_cost, scored[c].p95_latency_seconds) for c in candidates
        ]
        frontier = [candidates[i] for i in pareto_indices(points)]
        frontier.sort(
            key=lambda c: (scored[c].total_cost, scored[c].p95_latency_seconds, c.label)
        )
        return frontier[: self.max_finalists]

    # -- full pipeline ---------------------------------------------------------

    def plan(self, scenario) -> PlanReport:
        """Search the space for ``scenario`` and return the ranked report."""
        # Scenarios exposing a ``tenants`` attribute (Scenario/MixtureScenario)
        # are validated upfront: a per-tenant override naming a tenant the
        # scenario does not serve -- including any override against an
        # untagged scenario -- can never be satisfied, so fail before paying
        # for calibration and replays.  Duck-typed scenarios without the
        # attribute skip the check (their tenancy is unknown until built).
        tenants = getattr(scenario, "tenants", None)
        if self.slo.per_tenant_p95 and tenants is not None:
            unknown_tenants = set(self.slo.per_tenant_p95) - set(tenants)
            if unknown_tenants:
                raise ValueError(
                    f"SLO names tenants {sorted(unknown_tenants)} that scenario "
                    f"{scenario.name!r} does not serve (tenants: {list(tenants)})"
                )

        workload = scenario.build()
        stats = WorkloadStats.from_workload(workload)
        scenario_describe = scenario.describe()

        calibrations = {
            name: calibrate_backend(name, factory, stats)
            for name, factory in self.search_space.backends.items()
        }
        cold_fractions = {
            name: estimate_cold_fraction(workload, calibration.warm_keepalive_seconds)
            for name, calibration in calibrations.items()
        }

        # Stage 1a: score the declarative grid.
        scored: Dict[PlanCandidate, CandidateEstimate] = {}
        for candidate in self.search_space.candidates():
            scored[candidate] = self._score(
                candidate,
                stats,
                calibrations[candidate.backend],
                cold_fractions[candidate.backend],
            )

        # Stage 1b: successive-halving refinement around the incumbent.
        for _ in range(self.refine_rounds):
            incumbent = self._incumbent(scored)
            proposals = self.search_space.refine_around(incumbent, scored.keys())
            if not proposals:
                break
            for candidate in proposals:
                scored[candidate] = self._score(
                    candidate,
                    stats,
                    calibrations[candidate.backend],
                    cold_fractions[candidate.backend],
                )

        # Stage 1c: discard dominated candidates; survivors are the finalists.
        finalists = self._select_finalists(scored)
        finalist_set = set(finalists)

        results: List[CandidateResult] = [
            CandidateResult(
                candidate=candidate,
                analytic=estimate,
                finalist=candidate in finalist_set,
                scenario=scenario_describe,
            )
            for candidate, estimate in scored.items()
        ]
        by_candidate = {result.candidate: result for result in results}

        # Stage 2: simulated evaluation of the finalists via the campaign
        # machinery -- one private-cloud serve per *distinct* configuration,
        # in parallel.  Finalists whose knobs construct the identical policy
        # tuple on the same backend (e.g. neutral-knob variants) replay
        # identically, so each such group is served once and shares the cell.
        if finalists:
            labels = [candidate.label for candidate in finalists]
            if len(set(labels)) != len(labels):
                raise RuntimeError(f"non-unique candidate labels: {labels}")

            def replay_key(candidate: PlanCandidate) -> tuple:
                policies = PolicySetSpec.from_knobs(candidate.knob_dict)()
                identity = [policy.describe() for policy in policies]
                return (candidate.backend, json.dumps(identity, sort_keys=True))

            representatives: Dict[tuple, PlanCandidate] = {}
            representative_of: Dict[PlanCandidate, PlanCandidate] = {}
            for candidate in finalists:
                representative = representatives.setdefault(replay_key(candidate), candidate)
                representative_of[candidate] = representative
            replayed = list(representatives.values())

            campaign = Campaign(
                [scenario],
                backends={
                    candidate.label: self.search_space.backends[candidate.backend]
                    for candidate in replayed
                },
                policy_sets={
                    candidate.label: PolicySetSpec.from_knobs(candidate.knob_dict)
                    for candidate in replayed
                },
                telemetry=self.telemetry,
                concurrency_sets=(
                    None if self.concurrency is None else {"contended": self.concurrency}
                ),
            )
            concurrency_set = "none" if self.concurrency is None else "contended"
            cells = [
                CampaignCell(
                    scenario=scenario.name,
                    backend=c.label,
                    policy_set=c.label,
                    concurrency=concurrency_set,
                )
                for c in replayed
            ]
            campaign_report = campaign.run(
                max_workers=self.max_workers, executor=self.executor, cells=cells
            )
            cell_of = dict(zip(replayed, campaign_report.cells))
            for candidate in finalists:
                cell_result = cell_of[representative_of[candidate]]
                result = by_candidate[candidate]
                result.summary = cell_result.summary
                result.wall_seconds = cell_result.wall_seconds
                result.slo = self.slo.evaluate(cell_result.summary, workload.horizon_seconds)

        # Simulated Pareto frontier over (cost, p95) of the replayed finalists.
        evaluated = [by_candidate[c] for c in finalists if by_candidate[c].summary is not None]
        points = [
            (
                result.simulated_cost if result.simulated_cost is not None else 0.0,
                result.simulated_p95 if result.simulated_p95 is not None else 0.0,
            )
            for result in evaluated
        ]
        frontier = [evaluated[i] for i in pareto_indices(points)]
        frontier.sort(
            key=lambda r: (
                r.simulated_cost if r.simulated_cost is not None else 0.0,
                r.simulated_p95 if r.simulated_p95 is not None else 0.0,
                r.label,
            )
        )
        frontier_labels = [result.label for result in frontier]

        # The winner is the cheapest compliant configuration among ALL
        # evaluated finalists, not just frontier members: p99 or per-tenant
        # bounds can fail a dominating point while a dominated one passes.
        winner_label: Optional[str] = None
        for result in sorted(
            evaluated,
            key=lambda r: (
                r.simulated_cost if r.simulated_cost is not None else 0.0,
                r.simulated_p95 if r.simulated_p95 is not None else 0.0,
                r.label,
            ),
        ):
            if result.slo is not None and result.slo.compliant:
                winner_label = result.label
                break

        return PlanReport(
            scenario=scenario_describe,
            slo=self.slo,
            horizon_seconds=workload.horizon_seconds,
            candidates=results,
            frontier_labels=frontier_labels,
            winner_label=winner_label,
            executor=self.executor,
        )

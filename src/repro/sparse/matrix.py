"""Row-block sparse matrix helpers.

FSD-Inference parallelises inference through *row-wise* partitioning of the
(sparse) weight matrices and activation vectors/matrices (Section III-C).
This module provides the small set of structural operations the engine and
the partitioners need on top of ``scipy.sparse``:

* building CSR matrices with validated shapes;
* slicing a matrix into row blocks given an ownership assignment;
* extracting a subset of *global* rows from a block that stores them locally;
* measuring the memory footprint of sparse structures (for the FaaS memory
  accounting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np
from scipy import sparse

__all__ = [
    "RowBlock",
    "as_csr",
    "split_rows",
    "csr_nbytes",
    "rows_with_nonzeros",
    "empty_csr",
    "expand_rows",
]


def as_csr(matrix: sparse.spmatrix | np.ndarray) -> sparse.csr_matrix:
    """Return ``matrix`` as a CSR matrix without copying when already CSR."""
    if sparse.isspmatrix_csr(matrix):
        return matrix
    return sparse.csr_matrix(matrix)


def empty_csr(shape: tuple) -> sparse.csr_matrix:
    """An all-zero CSR matrix of ``shape``."""
    return sparse.csr_matrix(shape, dtype=np.float64)


def csr_nbytes(matrix: sparse.spmatrix) -> int:
    """Approximate resident bytes of a CSR/CSC matrix (data + indices + indptr)."""
    matrix = as_csr(matrix)
    return int(matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes)


def rows_with_nonzeros(matrix: sparse.csr_matrix) -> np.ndarray:
    """Indices of rows that contain at least one nonzero."""
    matrix = as_csr(matrix)
    counts = np.diff(matrix.indptr)
    return np.flatnonzero(counts > 0)


@dataclass
class RowBlock:
    """A block of rows of a larger (virtual) matrix.

    ``global_rows`` holds the global row indices, in the order in which they
    are stored in ``local``; ``local`` has ``len(global_rows)`` rows and the
    full global column dimension, so products against other blocks need no
    column re-indexing.
    """

    global_rows: np.ndarray
    local: sparse.csr_matrix

    def __post_init__(self) -> None:
        self.global_rows = np.asarray(self.global_rows, dtype=np.int64)
        self.local = as_csr(self.local)
        if self.local.shape[0] != len(self.global_rows):
            raise ValueError(
                f"row block stores {self.local.shape[0]} rows but was given "
                f"{len(self.global_rows)} global row indices"
            )
        # Map from global row index to local position, for O(1) extraction.
        self._position: Dict[int, int] = {
            int(g): i for i, g in enumerate(self.global_rows)
        }

    @property
    def num_rows(self) -> int:
        return len(self.global_rows)

    @property
    def num_cols(self) -> int:
        return self.local.shape[1]

    @property
    def nnz(self) -> int:
        return int(self.local.nnz)

    def nbytes(self) -> int:
        return csr_nbytes(self.local) + self.global_rows.nbytes

    def owns(self, global_row: int) -> bool:
        return int(global_row) in self._position

    def local_index(self, global_row: int) -> int:
        """Local position of ``global_row``; raises ``KeyError`` if not owned."""
        return self._position[int(global_row)]

    def extract_rows(self, global_rows: Sequence[int]) -> sparse.csr_matrix:
        """Extract the given global rows as a CSR matrix (rows in given order)."""
        locals_ = [self._position[int(g)] for g in global_rows]
        return self.local[locals_, :]

    def extract_nonempty_rows(self, global_rows: Sequence[int]) -> tuple:
        """Split ``global_rows`` into (rows with data, rows without data).

        FSD-Inf-Object uses this to decide between writing a ``.dat`` object
        (some rows carry nonzeros) and a ``.nul`` marker (nothing to send).
        """
        nonzero_local = set(rows_with_nonzeros(self.local).tolist())
        with_data = [g for g in global_rows if self._position[int(g)] in nonzero_local]
        without_data = [g for g in global_rows if self._position[int(g)] not in nonzero_local]
        return with_data, without_data

    def to_dense(self) -> np.ndarray:
        return np.asarray(self.local.todense())


def expand_rows(
    global_rows: Sequence[int],
    rows: sparse.spmatrix,
    total_rows: int,
) -> sparse.csr_matrix:
    """Scatter a row block back into a ``(total_rows, cols)`` CSR matrix.

    ``rows`` holds ``len(global_rows)`` rows; the result places row ``i`` of
    ``rows`` at global position ``global_rows[i]`` and leaves every other row
    empty.  This is how a worker combines its own activation rows with rows
    received from peers before multiplying against its weight block.
    """
    rows = as_csr(rows)
    global_rows = np.asarray(global_rows, dtype=np.int64)
    if rows.shape[0] != len(global_rows):
        raise ValueError(
            f"row block stores {rows.shape[0]} rows but was given "
            f"{len(global_rows)} global row indices"
        )
    if len(global_rows) and (global_rows.min() < 0 or global_rows.max() >= total_rows):
        raise ValueError("a global row index falls outside the expanded matrix")

    indptr = np.zeros(total_rows + 1, dtype=np.int64)
    local_counts = np.diff(rows.indptr)
    indptr[global_rows + 1] = local_counts
    np.cumsum(indptr, out=indptr)

    data = np.empty(rows.nnz, dtype=rows.data.dtype)
    indices = np.empty(rows.nnz, dtype=rows.indices.dtype)
    # The rows of the expanded matrix must appear in ascending global order.
    order = np.argsort(global_rows, kind="stable")
    cursor = 0
    for local in order:
        start, stop = rows.indptr[local], rows.indptr[local + 1]
        size = stop - start
        data[cursor:cursor + size] = rows.data[start:stop]
        indices[cursor:cursor + size] = rows.indices[start:stop]
        cursor += size
    return sparse.csr_matrix((data, indices, indptr), shape=(total_rows, rows.shape[1]))


def split_rows(matrix: sparse.spmatrix, owner: np.ndarray, num_parts: int) -> List[RowBlock]:
    """Split ``matrix`` into ``num_parts`` row blocks according to ``owner``.

    ``owner[i]`` gives the part that owns global row ``i``.  Every part
    receives a :class:`RowBlock`, possibly with zero rows.
    """
    matrix = as_csr(matrix)
    owner = np.asarray(owner)
    if owner.shape[0] != matrix.shape[0]:
        raise ValueError(
            f"ownership vector has {owner.shape[0]} entries but the matrix has "
            f"{matrix.shape[0]} rows"
        )
    if owner.size and (owner.min() < 0 or owner.max() >= num_parts):
        raise ValueError("ownership vector references a part outside [0, num_parts)")
    blocks = []
    for part in range(num_parts):
        rows = np.flatnonzero(owner == part)
        blocks.append(RowBlock(global_rows=rows, local=matrix[rows, :]))
    return blocks

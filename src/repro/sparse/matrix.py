"""Row-block sparse matrix helpers.

FSD-Inference parallelises inference through *row-wise* partitioning of the
(sparse) weight matrices and activation vectors/matrices (Section III-C).
This module provides the small set of structural operations the engine and
the partitioners need on top of ``scipy.sparse``:

* building CSR matrices with validated shapes;
* slicing a matrix into row blocks given an ownership assignment;
* extracting a subset of *global* rows from a block that stores them locally;
* measuring the memory footprint of sparse structures (for the FaaS memory
  accounting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
from scipy import sparse

__all__ = [
    "RowBlock",
    "as_csr",
    "split_rows",
    "csr_nbytes",
    "rows_with_nonzeros",
    "empty_csr",
    "expand_rows",
    "gather_rows",
    "positions_in_sorted",
    "unsafe_csr",
]


def positions_in_sorted(sorted_values: np.ndarray, queries: Sequence[int]) -> np.ndarray:
    """Positions of ``queries`` within ascending ``sorted_values``.

    Vectorized membership lookup for the hot path (replaces per-row dict
    probes).  Raises ``KeyError`` naming the first query that is absent; an
    empty query set always succeeds with an empty result.
    """
    queries = np.asarray(queries, dtype=np.int64).ravel()
    if queries.size == 0:
        return np.empty(0, dtype=np.int64)
    if sorted_values.size == 0:
        raise KeyError(int(queries[0]))
    found = np.searchsorted(sorted_values, queries)
    clipped = np.minimum(found, sorted_values.size - 1)
    matched = (found < sorted_values.size) & (sorted_values[clipped] == queries)
    if not matched.all():
        raise KeyError(int(queries[np.argmin(matched)]))
    return clipped


def as_csr(matrix: sparse.spmatrix | np.ndarray) -> sparse.csr_matrix:
    """Return ``matrix`` as a CSR matrix without copying when already CSR."""
    if sparse.isspmatrix_csr(matrix):
        return matrix
    return sparse.csr_matrix(matrix)


def empty_csr(shape: tuple) -> sparse.csr_matrix:
    """An all-zero CSR matrix of ``shape``."""
    return sparse.csr_matrix(shape, dtype=np.float64)


def csr_nbytes(matrix: sparse.spmatrix) -> int:
    """Approximate resident bytes of a CSR/CSC matrix (data + indices + indptr)."""
    matrix = as_csr(matrix)
    return int(matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes)


def rows_with_nonzeros(matrix: sparse.csr_matrix) -> np.ndarray:
    """Indices of rows that contain at least one nonzero."""
    matrix = as_csr(matrix)
    counts = np.diff(matrix.indptr)
    return np.flatnonzero(counts > 0)


def unsafe_csr(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    shape: tuple,
) -> sparse.csr_matrix:
    """Build a CSR matrix from pre-validated arrays, skipping scipy's checks.

    The hot path constructs thousands of small CSR matrices per query from
    arrays that are correct by construction; scipy's constructor spends more
    time validating and canonicalising them than the kernels spend computing.
    Falls back to the validating constructor if the internal layout of scipy
    ever changes.  Callers must guarantee consistency (``len(indptr) ==
    shape[0] + 1``, ``indptr[-1] == len(data) == len(indices)``).
    """
    try:
        matrix = sparse.csr_matrix.__new__(sparse.csr_matrix)
        matrix.data = data
        matrix.indices = indices
        matrix.indptr = indptr
        matrix._shape = shape
        return matrix
    except AttributeError:
        return sparse.csr_matrix((data, indices, indptr), shape=shape)


def gather_rows(matrix: sparse.csr_matrix, positions: np.ndarray) -> sparse.csr_matrix:
    """Extract ``matrix[positions, :]`` with a vectorized nonzero gather.

    Equivalent to scipy's fancy row indexing (row order preserved, values
    bit-identical) but without the index-validation and canonicalisation
    overhead, which dominates for the small extractions of the send phase.
    """
    matrix = as_csr(matrix)
    positions = np.asarray(positions, dtype=np.int64)
    source_starts = matrix.indptr[positions].astype(np.int64, copy=False)
    counts = matrix.indptr[positions + 1].astype(np.int64, copy=False) - source_starts
    indptr = np.zeros(len(positions) + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    total = int(indptr[-1])
    source = (
        np.arange(total, dtype=np.int64)
        - np.repeat(indptr[:-1], counts)
        + np.repeat(source_starts, counts)
    )
    return unsafe_csr(
        matrix.data[source],
        matrix.indices[source],
        indptr,
        (len(positions), matrix.shape[1]),
    )


@dataclass
class RowBlock:
    """A block of rows of a larger (virtual) matrix.

    ``global_rows`` holds the global row indices, in the order in which they
    are stored in ``local``; ``local`` has ``len(global_rows)`` rows and the
    full global column dimension, so products against other blocks need no
    column re-indexing.
    """

    global_rows: np.ndarray
    local: sparse.csr_matrix

    def __post_init__(self) -> None:
        self.global_rows = np.asarray(self.global_rows, dtype=np.int64)
        self.local = as_csr(self.local)
        if self.local.shape[0] != len(self.global_rows):
            raise ValueError(
                f"row block stores {self.local.shape[0]} rows but was given "
                f"{len(self.global_rows)} global row indices"
            )
        # Sorted view of the global rows for vectorized (searchsorted) lookup;
        # ``_sorted_to_local`` maps a position in the sorted view back to the
        # storage order of ``local``.
        self._sorted_to_local = np.argsort(self.global_rows, kind="stable")
        self._sorted_rows = self.global_rows[self._sorted_to_local]
        # Lazily-built mask of local rows that carry nonzeros (blocks are
        # immutable in practice, so this never needs invalidation).
        self._nonzero_mask: Optional[np.ndarray] = None

    @property
    def num_rows(self) -> int:
        return len(self.global_rows)

    @property
    def num_cols(self) -> int:
        return self.local.shape[1]

    @property
    def nnz(self) -> int:
        return int(self.local.nnz)

    def nbytes(self) -> int:
        return csr_nbytes(self.local) + self.global_rows.nbytes

    def local_positions(self, global_rows: Sequence[int]) -> np.ndarray:
        """Local storage positions of ``global_rows`` (vectorized lookup).

        Raises ``KeyError`` on the first row the block does not own, matching
        the historical dict-based lookup.
        """
        return self._sorted_to_local[
            positions_in_sorted(self._sorted_rows, global_rows)
        ]

    def owns(self, global_row: int) -> bool:
        position = np.searchsorted(self._sorted_rows, int(global_row))
        return bool(
            position < self._sorted_rows.size
            and self._sorted_rows[position] == int(global_row)
        )

    def local_index(self, global_row: int) -> int:
        """Local position of ``global_row``; raises ``KeyError`` if not owned."""
        return int(self.local_positions(np.asarray([global_row]))[0])

    def extract_rows(self, global_rows: Sequence[int]) -> sparse.csr_matrix:
        """Extract the given global rows as a CSR matrix (rows in given order)."""
        return self.local[self.local_positions(global_rows), :]

    def extract_nonempty_rows(self, global_rows: Sequence[int]) -> tuple:
        """Split ``global_rows`` into (rows with data, rows without data).

        FSD-Inf-Object uses this to decide between writing a ``.dat`` object
        (some rows carry nonzeros) and a ``.nul`` marker (nothing to send).
        """
        if self._nonzero_mask is None:
            self._nonzero_mask = np.diff(self.local.indptr) > 0
        has_data = self._nonzero_mask[self.local_positions(global_rows)]
        with_data = [g for g, flag in zip(global_rows, has_data) if flag]
        without_data = [g for g, flag in zip(global_rows, has_data) if not flag]
        return with_data, without_data

    def to_dense(self) -> np.ndarray:
        return np.asarray(self.local.todense())


def expand_rows(
    global_rows: Sequence[int],
    rows: sparse.spmatrix,
    total_rows: int,
) -> sparse.csr_matrix:
    """Scatter a row block back into a ``(total_rows, cols)`` CSR matrix.

    ``rows`` holds ``len(global_rows)`` rows; the result places row ``i`` of
    ``rows`` at global position ``global_rows[i]`` and leaves every other row
    empty.  This is how a worker combines its own activation rows with rows
    received from peers before multiplying against its weight block.
    """
    rows = as_csr(rows)
    global_rows = np.asarray(global_rows, dtype=np.int64)
    if rows.shape[0] != len(global_rows):
        raise ValueError(
            f"row block stores {rows.shape[0]} rows but was given "
            f"{len(global_rows)} global row indices"
        )
    if len(global_rows) and (global_rows.min() < 0 or global_rows.max() >= total_rows):
        raise ValueError("a global row index falls outside the expanded matrix")

    indptr = np.zeros(total_rows + 1, dtype=np.int64)
    local_counts = np.diff(rows.indptr)
    indptr[global_rows + 1] = local_counts
    np.cumsum(indptr, out=indptr)

    # The rows of the expanded matrix must appear in ascending global order.
    if len(global_rows) == 0 or np.all(np.diff(global_rows) > 0):
        # Already sorted (the common case): the nonzeros keep their layout.
        data = rows.data.copy()
        indices = rows.indices.copy()
    else:
        order = np.argsort(global_rows, kind="stable")
        lengths = local_counts[order]
        destination_ends = np.cumsum(lengths)
        # For every output nonzero, its source position in ``rows``: the
        # start of its (reordered) source row plus its offset inside it.
        source = (
            np.arange(rows.nnz, dtype=np.int64)
            - np.repeat(destination_ends - lengths, lengths)
            + np.repeat(rows.indptr[order].astype(np.int64), lengths)
        )
        data = rows.data[source]
        indices = rows.indices[source]
    return sparse.csr_matrix((data, indices, indptr), shape=(total_rows, rows.shape[1]))


def split_rows(matrix: sparse.spmatrix, owner: np.ndarray, num_parts: int) -> List[RowBlock]:
    """Split ``matrix`` into ``num_parts`` row blocks according to ``owner``.

    ``owner[i]`` gives the part that owns global row ``i``.  Every part
    receives a :class:`RowBlock`, possibly with zero rows.
    """
    matrix = as_csr(matrix)
    owner = np.asarray(owner)
    if owner.shape[0] != matrix.shape[0]:
        raise ValueError(
            f"ownership vector has {owner.shape[0]} entries but the matrix has "
            f"{matrix.shape[0]} rows"
        )
    if owner.size and (owner.min() < 0 or owner.max() >= num_parts):
        raise ValueError("ownership vector references a part outside [0, num_parts)")
    blocks = []
    for part in range(num_parts):
        rows = np.flatnonzero(owner == part)
        blocks.append(RowBlock(global_rows=rows, local=matrix[rows, :]))
    return blocks

"""Sparse linear-algebra substrate (row blocks and CSR kernels)."""

from .matrix import (
    RowBlock,
    as_csr,
    csr_nbytes,
    empty_csr,
    expand_rows,
    gather_rows,
    positions_in_sorted,
    rows_with_nonzeros,
    split_rows,
    unsafe_csr,
)
from .ops import (
    accumulate_spmm,
    activation_nnz,
    add_bias_to_nonzero_structure,
    flop_count_spmm,
    relu_threshold,
    sparsify,
    spmm,
)

__all__ = [
    "RowBlock",
    "as_csr",
    "csr_nbytes",
    "empty_csr",
    "expand_rows",
    "gather_rows",
    "positions_in_sorted",
    "rows_with_nonzeros",
    "split_rows",
    "unsafe_csr",
    "accumulate_spmm",
    "activation_nnz",
    "add_bias_to_nonzero_structure",
    "flop_count_spmm",
    "relu_threshold",
    "sparsify",
    "spmm",
]

"""Sparse numerical kernels used by the inference engine.

The Graph Challenge inference recurrence for one layer is

    Y_k = h(W_k @ Y_{k-1} + b_k)

where ``h`` clamps negative values to zero (ReLU) and saturates activations
at a cap (32 in the Graph Challenge), and the activations are kept sparse
throughout.  These kernels operate on ``scipy.sparse`` CSR matrices whose
rows are neurons and whose columns are samples, matching the paper's
matrix-matrix product (MMP) formulation for batch inference; a single sample
is simply a one-column matrix (MVP).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import sparse

from .matrix import as_csr

__all__ = [
    "spmm",
    "accumulate_spmm",
    "add_bias_to_nonzero_structure",
    "relu_threshold",
    "sparsify",
    "flop_count_spmm",
    "activation_nnz",
]


def spmm(weights: sparse.csr_matrix, activations: sparse.csr_matrix) -> sparse.csr_matrix:
    """Sparse matrix-matrix product ``weights @ activations`` (both CSR)."""
    return as_csr(weights) @ as_csr(activations)


def accumulate_spmm(
    accumulator: Optional[sparse.csr_matrix],
    weights: sparse.csr_matrix,
    activations: sparse.csr_matrix,
) -> sparse.csr_matrix:
    """``accumulator + weights @ activations`` (or just the product if ``None``).

    The inference hot path folds each received activation block into the
    running pre-activation ``z`` in arrival order.  Keeping one product and
    one addition per block preserves the exact floating-point accumulation
    order of the reference implementation (stacking blocks into a single
    product would round differently), which is what makes the local-dimension
    compute core bit-for-bit reproducible against the seed semantics.
    """
    product = as_csr(weights) @ as_csr(activations)
    if accumulator is None:
        return product
    return accumulator + product


def add_bias_to_nonzero_structure(
    accumulator: sparse.csr_matrix, bias: float
) -> sparse.csr_matrix:
    """Add a scalar bias to every *stored* entry of ``accumulator``.

    The Graph Challenge reference implementation adds the (negative) bias
    only where the pre-activation is nonzero -- adding it densely would turn
    the entire matrix dense and defeat the sparse formulation.  Explicit
    zeros are eliminated afterwards.
    """
    result = as_csr(accumulator).copy()
    result.data = result.data + bias
    result.eliminate_zeros()
    return result


def relu_threshold(
    activations: sparse.csr_matrix, cap: Optional[float] = 32.0
) -> sparse.csr_matrix:
    """Apply ReLU and (optionally) saturate activations at ``cap``.

    Entries that become zero are removed from the sparse structure so that
    downstream communication volumes reflect true data sparsity.
    """
    result = as_csr(activations).copy()
    np.maximum(result.data, 0.0, out=result.data)
    if cap is not None:
        np.minimum(result.data, cap, out=result.data)
    result.eliminate_zeros()
    return result


def sparsify(dense: np.ndarray, threshold: float = 0.0) -> sparse.csr_matrix:
    """Convert a dense array to CSR, dropping entries ``<= threshold``."""
    dense = np.asarray(dense, dtype=np.float64)
    mask = dense > threshold
    return sparse.csr_matrix(np.where(mask, dense, 0.0))


def flop_count_spmm(weights: sparse.spmatrix, activations: sparse.spmatrix) -> float:
    """Estimated floating point operations of ``weights @ activations``.

    For CSR x CSR the work is proportional to, for each stored weight
    ``W[i, j]``, the number of stored entries in row ``j`` of the
    activations: two flops (multiply + add) per pairing.  This estimate is
    what the virtual-time model charges the FaaS/VM/HPC compute with, so it
    must depend only on sparsity structure (deterministic and cheap), not on
    wall-clock measurements.
    """
    weights = as_csr(weights)
    activations = as_csr(activations)
    activation_row_nnz = np.diff(activations.indptr)
    if weights.nnz == 0 or activations.nnz == 0:
        return 0.0
    per_weight = activation_row_nnz[weights.indices]
    return float(2.0 * per_weight.sum())


def activation_nnz(activations: sparse.spmatrix) -> int:
    """Stored nonzero count of an activation matrix."""
    return int(as_csr(activations).nnz)

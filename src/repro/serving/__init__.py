"""Request-level serving layer: replay sporadic workloads on one shared cloud.

``InferenceServer`` + a ``ServingBackend`` turn the single-query simulator
into a day-scale serving system: arrival traces from
:mod:`repro.workloads.sporadic` replay through one
:class:`~repro.cloud.CloudEnvironment` timeline with warm-environment reuse,
admission control and per-query + aggregate reporting.
"""

from .backends import (
    EndpointServingBackend,
    FSDServingBackend,
    HPCServingBackend,
    QueryOutcome,
    QueryWorkloadFactory,
    ServerServingBackend,
    ServingBackend,
    split_batch_outcome,
)
from .factories import (
    KNOWN_POLICY_KNOBS,
    EndpointBackendSpec,
    FSDBackendSpec,
    HPCBackendSpec,
    PolicySetSpec,
    ServerBackendSpec,
    policies_from_knobs,
)
from .policies import (
    BatchCoalescingPolicy,
    HoldDecision,
    QueueDepthAutoscaler,
    SchedulingPolicy,
)
from .replaycore import (
    LazyRecordList,
    OutcomeCacheMixin,
    ReplayOutcomeCache,
    ReportColumns,
    batch_fingerprint,
    peak_overlap_arrays,
)
from ..concurrency import ConcurrencyConfig, ContentionConfig
from .server import (
    InferenceServer,
    QueryRecord,
    ServingConfig,
    ServingReport,
    peak_overlap,
)

__all__ = [
    "EndpointServingBackend",
    "FSDServingBackend",
    "HPCServingBackend",
    "QueryOutcome",
    "QueryWorkloadFactory",
    "ServerServingBackend",
    "ServingBackend",
    "split_batch_outcome",
    "KNOWN_POLICY_KNOBS",
    "EndpointBackendSpec",
    "FSDBackendSpec",
    "HPCBackendSpec",
    "PolicySetSpec",
    "ServerBackendSpec",
    "policies_from_knobs",
    "BatchCoalescingPolicy",
    "HoldDecision",
    "QueueDepthAutoscaler",
    "SchedulingPolicy",
    "LazyRecordList",
    "OutcomeCacheMixin",
    "ReplayOutcomeCache",
    "ReportColumns",
    "batch_fingerprint",
    "peak_overlap_arrays",
    "ConcurrencyConfig",
    "ContentionConfig",
    "InferenceServer",
    "QueryRecord",
    "ServingConfig",
    "ServingReport",
    "peak_overlap",
]

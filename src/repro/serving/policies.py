"""Pluggable scheduling policies for the event-driven serving loop.

The :class:`~repro.serving.server.InferenceServer` event loop delegates two
decisions to policies:

* **What to admit** -- a policy may *hold* arriving queries (scheduling a
  policy tick for later) and release them in admission units of one or more
  queries.  :class:`BatchCoalescingPolicy` uses this to merge same-model
  queries arriving within a window into one larger batch, paying the
  per-query fixed charges (invocations, coordinator, per-batch polling) once
  -- the win the paper's Figure-4 per-query economics predict for sporadic
  workloads.  The decision to coalesce is gated by the analytical cost model
  (:func:`repro.costmodel.recommend_coalescing`).
* **How much to admit** -- a policy may adjust the concurrency bound.
  :class:`QueueDepthAutoscaler` replaces the static
  ``max_concurrent_queries`` with a controller that raises the in-flight
  limit while the admission queue is deep and lowers it as it drains.

With no policies configured the event loop reproduces the pre-policy serving
semantics bit-for-bit (locked by the regression tests), so every fingerprint
validated before this subsystem landed remains valid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..costmodel import CoalescingProfile, recommend_coalescing
from ..workloads import InferenceQuery, SporadicWorkload

__all__ = [
    "HoldDecision",
    "SchedulingPolicy",
    "BatchCoalescingPolicy",
    "QueueDepthAutoscaler",
]


@dataclass(frozen=True)
class HoldDecision:
    """A policy's claim on an arriving query.

    ``tick_at`` asks the event loop to schedule a policy tick at that virtual
    time (the coalescing-window deadline); ``None`` means the query joined an
    already-scheduled group and no new tick is needed.
    """

    tick_at: Optional[float] = None


class SchedulingPolicy:
    """Base policy: every hook is a no-op, so subclasses override only what
    they shape.  Policies are stateful across one serve; :meth:`begin` resets
    them at replay start."""

    name: str = "policy"

    def begin(self, workload: SporadicWorkload) -> None:
        """Called once before replay starts."""

    def on_arrival(self, query: InferenceQuery, now: float) -> Optional[HoldDecision]:
        """Claim an arriving query (hold it) or return ``None`` to pass it on.

        A held query is owned by the policy until it is released from
        :meth:`on_tick`; the event loop will not admit it in the meantime.
        """
        return None

    def on_tick(self, now: float) -> List[Tuple[InferenceQuery, ...]]:
        """Admission units released at a policy tick (each unit is executed
        as one batch by the backend)."""
        return []

    def on_completion(self, now: float, in_flight: int, queue_depth: int) -> None:
        """Observe a query (or merged batch) completing."""

    def admission_limit(
        self, base_limit: Optional[int], queue_depth: int, in_flight: int
    ) -> Optional[int]:
        """Concurrency bound to apply right now (``None`` = unbounded)."""
        return base_limit

    def describe(self) -> Dict[str, object]:
        """JSON-friendly identity for benchmark fingerprints."""
        return {"name": self.name}


@dataclass
class _CoalescingGroup:
    """Queries of one model size held open for the current window."""

    deadline: float
    queries: List[InferenceQuery] = field(default_factory=list)


class BatchCoalescingPolicy(SchedulingPolicy):
    """Merge same-model queries arriving within a window into one batch.

    The first query of a model size opens a *window*: it is held, and a
    policy tick is scheduled ``window_seconds`` later.  Same-``neurons``
    queries arriving strictly inside the window join the group; at the
    deadline the group is released as one admission unit, which the backend
    executes as a single merged inference (summed samples) and splits back
    onto per-query records.  Boundary semantics:

    * ``window_seconds=0`` degenerates to no batching: the release tick
      fires before any same-time arrival is processed, so every query
      executes alone.
    * A query arriving exactly at the deadline does not join -- the deadline
      tick is ordered before same-time arrivals -- it opens the next window.
    * Queries of different model sizes never merge; each size holds its own
      independent window.

    ``profile_for`` hooks in the analytical cost model: when provided, the
    first query of each model size is profiled and
    :func:`~repro.costmodel.recommend_coalescing` decides whether merging
    wins for that size; sizes where it loses are never held.  Without a
    profiler, coalescing is unconditional (the fixed per-query charges make
    merging win whenever scaling is linear, which is the default
    assumption).

    ``max_hold_seconds`` is the latency-SLO cap on the window: the batch
    leader (the query that opens a window) is held for exactly the window
    duration before admission, so its queueing delay due to coalescing is
    the hold time.  When the cap is below the window, the window's release
    deadline is pulled in so the leader's hold never exceeds the cap --
    trading back some of the merge's cost saving for bounded added latency.
    The default ``None`` (and any cap at or above the window) keeps the
    deadline arithmetic byte-identical to the uncapped policy.
    """

    def __init__(
        self,
        window_seconds: float,
        max_batch_queries: Optional[int] = None,
        profile_for: Optional[Callable[[InferenceQuery], CoalescingProfile]] = None,
        max_hold_seconds: Optional[float] = None,
    ):
        if window_seconds < 0:
            raise ValueError("window_seconds cannot be negative")
        if max_batch_queries is not None and max_batch_queries < 1:
            raise ValueError("max_batch_queries must be at least 1 (or None)")
        if max_hold_seconds is not None and max_hold_seconds < 0:
            raise ValueError("max_hold_seconds cannot be negative (or None)")
        self.window_seconds = window_seconds
        self.max_batch_queries = max_batch_queries
        self.profile_for = profile_for
        self.max_hold_seconds = max_hold_seconds
        self.name = "coalesce"
        self._open: Dict[int, _CoalescingGroup] = {}
        self._ready: List[Tuple[InferenceQuery, ...]] = []
        self._merge_wins: Dict[int, bool] = {}
        #: (neurons, batch size) of every released unit, for introspection.
        self.released: List[Tuple[int, int]] = []

    def begin(self, workload: SporadicWorkload) -> None:
        self._open = {}
        self._ready = []
        self._merge_wins = {}
        self.released = []

    def _coalescing_wins(self, query: InferenceQuery) -> bool:
        if self.profile_for is None:
            return True
        if query.neurons not in self._merge_wins:
            recommendation = recommend_coalescing(self.profile_for(query))
            self._merge_wins[query.neurons] = recommendation.merge
        return self._merge_wins[query.neurons]

    def on_arrival(self, query: InferenceQuery, now: float) -> Optional[HoldDecision]:
        if self.max_batch_queries == 1:
            # Batches may never grow past one query: holding could only add
            # latency, so this degenerates to no batching at all.
            return None
        if not self._coalescing_wins(query):
            return None
        group = self._open.get(query.neurons)
        if group is not None and now < group.deadline:
            group.queries.append(query)
            if (
                self.max_batch_queries is not None
                and len(group.queries) >= self.max_batch_queries
            ):
                # Full batch: close the window early via an immediate tick.
                del self._open[query.neurons]
                self._ready.append(tuple(group.queries))
                return HoldDecision(tick_at=now)
            return HoldDecision(tick_at=None)
        hold = self.window_seconds
        if self.max_hold_seconds is not None:
            # SLO cap: the leader's queueing delay from coalescing equals its
            # hold, so the release deadline never exceeds arrival + cap.
            hold = min(hold, self.max_hold_seconds)
        deadline = now + hold
        self._open[query.neurons] = _CoalescingGroup(deadline=deadline, queries=[query])
        return HoldDecision(tick_at=deadline)

    def on_tick(self, now: float) -> List[Tuple[InferenceQuery, ...]]:
        units = self._ready
        self._ready = []
        expired = [n for n, group in self._open.items() if group.deadline <= now]
        for neurons in expired:
            units.append(tuple(self._open.pop(neurons).queries))
        self.released.extend((unit[0].neurons, len(unit)) for unit in units)
        return units

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "window_seconds": self.window_seconds,
            "max_batch_queries": self.max_batch_queries,
            "max_hold_seconds": self.max_hold_seconds,
        }


class QueueDepthAutoscaler(SchedulingPolicy):
    """Concurrency controller driven by observed admission-queue depth.

    Replaces the static ``max_concurrent_queries`` bound: the in-flight
    limit is ``min_limit`` plus one extra slot per ``queries_per_slot``
    *admission units* waiting in the queue (a coalesced batch released by a
    batching policy counts as one unit), capped at ``max_limit``.  The
    response is monotone -- a deeper queue never yields a smaller limit --
    so the limit relaxes back to ``min_limit`` as the queue drains
    (in-flight work is never cancelled; a lowered limit only gates new
    admissions).

    ``scale_down_lag_ticks`` adds scale-down hysteresis: the limit grows
    immediately with queue depth, but only shrinks after that many
    *consecutive* observations wanting a lower limit (an observation wanting
    the current limit or higher resets the streak).  This damps limit
    flapping on bursty arrivals -- a momentary dip in queue depth no longer
    throttles the admission rate the instant before the next burst lands.
    The default ``0`` shrinks immediately, byte-identical to the memoryless
    controller.
    """

    def __init__(
        self,
        min_limit: int = 1,
        max_limit: int = 8,
        queries_per_slot: int = 2,
        scale_down_lag_ticks: int = 0,
    ):
        if min_limit < 1:
            raise ValueError("min_limit must be at least 1")
        if max_limit < min_limit:
            raise ValueError("max_limit cannot be below min_limit")
        if queries_per_slot < 1:
            raise ValueError("queries_per_slot must be at least 1")
        if scale_down_lag_ticks < 0:
            raise ValueError("scale_down_lag_ticks cannot be negative")
        self.min_limit = min_limit
        self.max_limit = max_limit
        self.queries_per_slot = queries_per_slot
        self.scale_down_lag_ticks = scale_down_lag_ticks
        self.name = "autoscale"
        #: (queue_depth, limit) observations, for tests and introspection.
        self.observations: List[Tuple[int, int]] = []
        self._current_limit: Optional[int] = None
        self._low_streak = 0

    def begin(self, workload: SporadicWorkload) -> None:
        self.observations = []
        self._current_limit = None
        self._low_streak = 0

    def desired_limit(self, queue_depth: int) -> int:
        """The controller's pure response: monotone in queue depth."""
        if queue_depth < 0:
            raise ValueError("queue depth cannot be negative")
        return min(self.max_limit, self.min_limit + queue_depth // self.queries_per_slot)

    def admission_limit(
        self, base_limit: Optional[int], queue_depth: int, in_flight: int
    ) -> Optional[int]:
        desired = self.desired_limit(queue_depth)
        if (
            self.scale_down_lag_ticks == 0
            or self._current_limit is None
            or desired >= self._current_limit
        ):
            # Growth (and the no-hysteresis default) applies immediately.
            limit = desired
            self._low_streak = 0
        else:
            self._low_streak += 1
            if self._low_streak >= self.scale_down_lag_ticks:
                limit = desired
                self._low_streak = 0
            else:
                limit = self._current_limit
        self._current_limit = limit
        self.observations.append((queue_depth, limit))
        return limit

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "min_limit": self.min_limit,
            "max_limit": self.max_limit,
            "queries_per_slot": self.queries_per_slot,
            "scale_down_lag_ticks": self.scale_down_lag_ticks,
        }

"""The event-driven inference server: one cloud, one timeline, a whole day.

The paper's sporadic-workload argument (Section VI-C, Figure 4) is about
*populations* of queries -- hundreds of mixed-size requests arriving over 24
hours -- yet a single ``FSDInference.infer`` call simulates one query on a
private timeline that starts at ``t=0``.  :class:`InferenceServer` closes
that gap: it replays a :class:`~repro.workloads.SporadicWorkload` arrival
trace through **one shared** :class:`~repro.cloud.CloudEnvironment`, so

* every invocation, message and billing record lands at its true absolute
  time,
* FaaS execution environments stay warm (or expire) according to the real
  gaps between queries,
* admission can bound how many queries run concurrently, delaying excess
  arrivals until a slot frees, and
* the output is both per-query (latency decomposition, cost, cold starts)
  and aggregate (daily :class:`CostReport`, p50/p95/p99 latency, peak
  concurrency).

Invariant: replaying a single query arriving at ``t=0`` on a cold pool is
*exactly* ``FSDInference.infer`` -- same output bytes, latency, cost and
metrics -- so everything validated against the single-query engine transfers
to the serving layer unchanged.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..cloud import CostReport
from ..comm import ChannelStats
from ..workloads import SporadicWorkload
from .backends import ServingBackend

__all__ = [
    "ServingConfig",
    "QueryRecord",
    "ServingReport",
    "InferenceServer",
    "peak_overlap",
]


def peak_overlap(intervals: Iterable[Tuple[float, float]]) -> int:
    """Maximum number of simultaneously active ``(start, end)`` intervals.

    Touching endpoints do not overlap: an interval ending exactly when
    another starts releases its slot first.
    """
    events: List[Tuple[float, int]] = []
    for start, end in intervals:
        events.append((start, 1))
        events.append((end, -1))
    events.sort(key=lambda event: (event[0], event[1]))
    active = peak = 0
    for _, delta in events:
        active += delta
        peak = max(peak, active)
    return peak


@dataclass(frozen=True)
class ServingConfig:
    """Admission/scheduling knobs of the serving layer."""

    #: maximum queries in flight at once; arrivals beyond it queue until a
    #: running query completes.  ``None`` admits every arrival immediately.
    max_concurrent_queries: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_concurrent_queries is not None and self.max_concurrent_queries < 1:
            raise ValueError("max_concurrent_queries must be at least 1 (or None)")


@dataclass(frozen=True)
class QueryRecord:
    """Timeline placement and outcome of one replayed query."""

    query_id: int
    neurons: int
    samples: int
    arrival_time: float
    started_at: float
    finished_at: float
    cost: float
    cold_starts: int
    warm_starts: int

    @property
    def queue_delay_seconds(self) -> float:
        """Time spent waiting for admission before execution began."""
        return self.started_at - self.arrival_time

    @property
    def service_seconds(self) -> float:
        """Execution latency once admitted (the backend's query latency)."""
        return self.finished_at - self.started_at

    @property
    def latency_seconds(self) -> float:
        """End-to-end latency the client observes (queueing + service)."""
        return self.finished_at - self.arrival_time


@dataclass
class ServingReport:
    """Per-query and aggregate results of replaying one workload."""

    backend: str
    config: ServingConfig
    horizon_seconds: float
    records: List[QueryRecord]
    cost: CostReport
    peak_concurrent_queries: int
    peak_concurrent_workers: int
    channel_stats: ChannelStats = field(default_factory=ChannelStats)

    # -- aggregates -----------------------------------------------------------

    @property
    def num_queries(self) -> int:
        return len(self.records)

    @property
    def total_samples(self) -> int:
        return sum(record.samples for record in self.records)

    @property
    def cold_start_count(self) -> int:
        return sum(record.cold_starts for record in self.records)

    @property
    def warm_start_count(self) -> int:
        return sum(record.warm_starts for record in self.records)

    @property
    def makespan_seconds(self) -> float:
        """From the first arrival to the last completion."""
        if not self.records:
            return 0.0
        first = min(record.arrival_time for record in self.records)
        last = max(record.finished_at for record in self.records)
        return last - first

    def latency_percentile(self, percentile: float) -> float:
        if not self.records:
            return 0.0
        latencies = np.asarray([record.latency_seconds for record in self.records])
        return float(np.percentile(latencies, percentile))

    @property
    def p50_latency_seconds(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p95_latency_seconds(self) -> float:
        return self.latency_percentile(95.0)

    @property
    def p99_latency_seconds(self) -> float:
        return self.latency_percentile(99.0)

    def records_by_neurons(self) -> Dict[int, List[QueryRecord]]:
        grouped: Dict[int, List[QueryRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.neurons, []).append(record)
        return grouped

    def mean_cost_per_query_by_neurons(self) -> Dict[int, float]:
        """Average measured per-query cost per model size (Figure-4 input)."""
        return {
            neurons: sum(record.cost for record in records) / len(records)
            for neurons, records in self.records_by_neurons().items()
        }

    def summary(self) -> Dict[str, object]:
        """Flat, JSON-friendly aggregate view (benchmark fingerprints)."""
        return {
            "backend": self.backend,
            "num_queries": self.num_queries,
            "total_samples": self.total_samples,
            "cost_total": self.cost.total,
            "p50_latency_seconds": self.p50_latency_seconds,
            "p95_latency_seconds": self.p95_latency_seconds,
            "p99_latency_seconds": self.p99_latency_seconds,
            "makespan_seconds": self.makespan_seconds,
            "cold_start_count": self.cold_start_count,
            "warm_start_count": self.warm_start_count,
            "peak_concurrent_queries": self.peak_concurrent_queries,
            "peak_concurrent_workers": self.peak_concurrent_workers,
        }


class InferenceServer:
    """Replays a sporadic workload through a backend on one shared timeline."""

    def __init__(self, backend: ServingBackend, config: Optional[ServingConfig] = None):
        self.backend = backend
        self.config = config or ServingConfig()

    def serve(self, workload: SporadicWorkload) -> ServingReport:
        """Replay every query of ``workload`` in arrival order.

        Queries are admitted at their arrival time unless the concurrency
        bound is saturated, in which case they start when the earliest
        in-flight query completes.  Admission times are non-decreasing, so
        the FaaS warm pool observes a causally consistent request sequence.
        """
        self.backend.begin(workload)
        in_flight: List[float] = []  # completion-time min-heap
        records: List[QueryRecord] = []
        channel_total = ChannelStats()
        limit = self.config.max_concurrent_queries

        for query in workload.iter_trace():
            start = query.arrival_time
            while in_flight and in_flight[0] <= start:
                heapq.heappop(in_flight)
            if limit is not None:
                while len(in_flight) >= limit:
                    start = max(start, heapq.heappop(in_flight))
            outcome = self.backend.execute(query, at_time=start)
            finished = start + outcome.latency_seconds
            heapq.heappush(in_flight, finished)
            if outcome.channel_stats is not None:
                channel_total = channel_total.merge(outcome.channel_stats)
            records.append(
                QueryRecord(
                    query_id=query.query_id,
                    neurons=query.neurons,
                    samples=query.samples,
                    arrival_time=query.arrival_time,
                    started_at=start,
                    finished_at=finished,
                    cost=outcome.cost,
                    cold_starts=outcome.cold_starts,
                    warm_starts=outcome.warm_starts,
                )
            )

        cost = self.backend.finish()
        return ServingReport(
            backend=self.backend.name,
            config=self.config,
            horizon_seconds=workload.horizon_seconds,
            records=records,
            cost=cost,
            peak_concurrent_queries=peak_overlap(
                (record.started_at, record.finished_at) for record in records
            ),
            peak_concurrent_workers=peak_overlap(self.backend.worker_intervals()),
            channel_stats=channel_total,
        )

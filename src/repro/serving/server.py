"""The event-driven inference server: one cloud, one timeline, a whole day.

The paper's sporadic-workload argument (Section VI-C, Figure 4) is about
*populations* of queries -- hundreds of mixed-size requests arriving over 24
hours -- yet a single ``FSDInference.infer`` call simulates one query on a
private timeline that starts at ``t=0``.  :class:`InferenceServer` closes
that gap: it replays a :class:`~repro.workloads.SporadicWorkload` arrival
trace through **one shared** :class:`~repro.cloud.CloudEnvironment`, so

* every invocation, message and billing record lands at its true absolute
  time,
* FaaS execution environments stay warm (or expire) according to the real
  gaps between queries,
* admission can bound how many queries run concurrently, delaying excess
  arrivals until a slot frees, and
* the output is both per-query (latency decomposition, cost, cold starts)
  and aggregate (daily :class:`CostReport`, p50/p95/p99 latency, peak
  concurrency).

The scheduler is an explicit event loop over one heap carrying three event
kinds -- **completion**, **policy tick**, **arrival**, processed in that
order at equal times -- so scheduling policies
(:mod:`repro.serving.policies`) can hold arrivals (batch coalescing) or
adjust the admission limit (queue-depth autoscaling) without touching the
replay mechanics.  With no policies configured the loop reproduces the
original inline admission loop bit-for-bit.

Invariant: replaying a single query arriving at ``t=0`` on a cold pool is
*exactly* ``FSDInference.infer`` -- same output bytes, latency, cost and
metrics -- so everything validated against the single-query engine transfers
to the serving layer unchanged.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..chaos import ChaosConfig
from ..concurrency import ConcurrencyConfig
from ..cloud import CloudError, CostReport
from ..comm import ChannelStats
from ..telemetry import TelemetryConfig, Tracer
from ..telemetry.export import critical_path as _trace_critical_path
from ..workloads import InferenceQuery, SporadicWorkload
from .backends import ServingBackend
from .policies import SchedulingPolicy

__all__ = [
    "ServingConfig",
    "QueryRecord",
    "ServingReport",
    "InferenceServer",
    "peak_overlap",
]

#: event-kind priorities: at equal virtual times, completions release their
#: slots first, policy ticks (e.g. coalescing-window deadlines) flush next,
#: and only then are new arrivals processed.  This is what makes touching
#: intervals non-overlapping and a zero-second coalescing window equal to no
#: batching.
_COMPLETION, _POLICY_TICK, _ARRIVAL = 0, 1, 2


def peak_overlap(intervals: Iterable[Tuple[float, float]]) -> int:
    """Maximum number of simultaneously active ``(start, end)`` intervals.

    Touching endpoints do not overlap: an interval ending exactly when
    another starts releases its slot first.  Zero-length intervals are
    momentarily active at their instant: they overlap intervals strictly
    containing that instant (and each other when they coincide), but -- by
    the touching rule -- not intervals starting or ending exactly there.
    """
    events: List[Tuple[float, int]] = []
    for start, end in intervals:
        if end > start:
            events.append((start, 1))
            events.append((end, -1))
        else:
            # Zero-length: a marker evaluated between the ends and starts at
            # its timestamp, so it counts as momentarily active.
            events.append((start, 0))
    events.sort(key=lambda event: (event[0], event[1]))
    active = peak = 0
    index = 0
    total = len(events)
    while index < total:
        time = events[index][0]
        while index < total and events[index][0] == time and events[index][1] == -1:
            active -= 1
            index += 1
        momentary = 0
        while index < total and events[index][0] == time and events[index][1] == 0:
            momentary += 1
            index += 1
        if momentary:
            peak = max(peak, active + momentary)
        while index < total and events[index][0] == time and events[index][1] == 1:
            active += 1
            peak = max(peak, active)
            index += 1
    return peak


@dataclass(frozen=True)
class ServingConfig:
    """Admission/scheduling knobs of the serving layer."""

    #: maximum *executions* in flight at once; arrivals beyond it queue until
    #: a running execution completes.  ``None`` admits every arrival
    #: immediately.  A coalesced batch counts as one execution, so
    #: ``peak_concurrent_queries`` (which counts the client-visible queries
    #: inside merged batches individually) may legitimately exceed this
    #: bound when a batching policy is active.  A
    #: :class:`~repro.serving.policies.QueueDepthAutoscaler` policy
    #: supersedes this static bound.
    max_concurrent_queries: Optional[int] = None
    #: scheduling policies consulted by the event loop, in order.  The first
    #: policy to claim an arrival holds it; ``admission_limit`` hooks chain.
    policies: Tuple[SchedulingPolicy, ...] = ()
    #: deterministic fault injection plus the resilience mechanisms answering
    #: it (:class:`~repro.chaos.ChaosConfig`).  ``None`` -- the default --
    #: replays the exact fault-free loop; no injector is ever installed.
    chaos: Optional[ChaosConfig] = None
    #: opt into Tier-A whole-execution outcome memoisation
    #: (:mod:`repro.serving.replaycore`).  Off by default: replayed deltas
    #: are time-translated, which is exact only to ~1e-12 relative, so every
    #: historical fingerprint is produced with the cache off.  Chaos serves
    #: always bypass the cache regardless of this flag.
    outcome_cache: bool = False
    #: replay strategy: ``"exact"`` (the event loop, default), ``"auto"`` or
    #: ``"columnar"`` (Tier-B numpy fast path when no policies/chaos/bound
    #: are configured, exact loop otherwise), ``"fluid"`` (Tier-C analytic
    #: approximation; summaries are tagged).
    replay_mode: str = "exact"
    #: opt-in virtual-timeline tracing (:class:`~repro.telemetry.TelemetryConfig`).
    #: ``None`` -- the default -- installs nothing: every instrumentation
    #: point is a single ``if tracer is not None`` gate, so telemetry-off
    #: replays are byte-identical to the pre-telemetry serving layer.  The
    #: exact loop and the columnar fast path emit the same span set; fluid
    #: replays are analytic and record no trace.
    telemetry: Optional[TelemetryConfig] = None
    #: opt-in interleaved execution with channel contention modelling
    #: (:class:`~repro.concurrency.ConcurrencyConfig`).  ``None`` -- the
    #: default -- runs the serialized loop exactly as before; set, it routes
    #: the serve through :func:`repro.concurrency.interleave.interleaved_serve`,
    #: which is byte-identical to the serialized loop while the contention
    #: config stays unbounded.  Mutually exclusive with ``chaos`` and with
    #: non-exact ``replay_mode``.
    concurrency: Optional[ConcurrencyConfig] = None

    def __post_init__(self) -> None:
        if self.max_concurrent_queries is not None and self.max_concurrent_queries < 1:
            raise ValueError("max_concurrent_queries must be at least 1 (or None)")
        if self.replay_mode not in ("exact", "auto", "columnar", "fluid"):
            raise ValueError(
                f"replay_mode must be one of 'exact', 'auto', 'columnar', 'fluid'; "
                f"got {self.replay_mode!r}"
            )
        if self.concurrency is not None:
            if not isinstance(self.concurrency, ConcurrencyConfig):
                raise ValueError(
                    f"concurrency must be a ConcurrencyConfig or None; "
                    f"got {type(self.concurrency).__name__}"
                )
            if self.chaos is not None:
                raise ValueError(
                    "concurrency and chaos are mutually exclusive: the contended "
                    "timeline has no retry/degradation semantics yet (see ROADMAP)"
                )
            if self.replay_mode != "exact":
                raise ValueError(
                    f"concurrency requires replay_mode='exact'; got "
                    f"{self.replay_mode!r} (the vectorized tiers have no "
                    f"contention model)"
                )


@dataclass(frozen=True)
class QueryRecord:
    """Timeline placement and outcome of one replayed query."""

    query_id: int
    neurons: int
    samples: int
    arrival_time: float
    started_at: float
    finished_at: float
    cost: float
    cold_starts: int
    warm_starts: int
    #: all query ids executed in the same merged batch (including this one),
    #: in arrival order; empty when the query executed alone.
    coalesced_group: Tuple[int, ...] = ()
    #: tenant provenance carried over from :class:`InferenceQuery` -- queries
    #: from a :class:`~repro.scenarios.MixtureScenario` keep their tenant tag
    #: through the replay so reports can pivot per tenant.  ``None`` for
    #: untagged (single-tenant) workloads.
    tenant: Optional[str] = None
    #: ``"completed"``, ``"failed"`` (dispatch exhausted its retries) or
    #: ``"shed"`` (dropped before dispatch, e.g. past its deadline).  Always
    #: ``"completed"`` on a chaos-off replay.
    outcome: str = "completed"
    #: dispatch attempts made (1 = first try succeeded; 0 = shed undispatched).
    attempts: int = 1
    #: structured reason for a non-success outcome (error class name or
    #: ``"deadline_exceeded"``); ``None`` when completed.
    failure_reason: Optional[str] = None
    #: extra latency this query absorbed from channel/FaaS contention with
    #: concurrently in-flight queries (interleaved serves only).  Exactly
    #: ``0.0`` on serialized serves and on interleaved serves with an
    #: unbounded contention config, preserving record-level byte-identity.
    interference_seconds: float = 0.0

    @property
    def was_coalesced(self) -> bool:
        return len(self.coalesced_group) > 1

    @property
    def queue_delay_seconds(self) -> float:
        """Time spent waiting for admission before execution began."""
        return self.started_at - self.arrival_time

    @property
    def service_seconds(self) -> float:
        """Execution latency once admitted (the backend's query latency)."""
        return self.finished_at - self.started_at

    @property
    def latency_seconds(self) -> float:
        """End-to-end latency the client observes (queueing + service)."""
        return self.finished_at - self.arrival_time


@dataclass
class ServingReport:
    """Per-query and aggregate results of replaying one workload."""

    backend: str
    config: ServingConfig
    horizon_seconds: float
    records: List[QueryRecord]
    cost: CostReport
    peak_concurrent_queries: int
    peak_concurrent_workers: int
    channel_stats: ChannelStats = field(default_factory=ChannelStats)
    #: per-fault-class injection counts from the chaos injector (empty on a
    #: chaos-off replay).
    fault_counts: Dict[str, int] = field(default_factory=dict)
    #: structured per-query columns when the report came off a fast-path
    #: serve (:class:`~repro.serving.replaycore.ReportColumns`); aggregates
    #: below read the arrays directly instead of materialising records.
    columns: Optional[object] = field(default=None, repr=False, compare=False)
    #: which replay tier produced this report (``None``/"exact" for the
    #: event loop); only ``"fluid"`` changes the summary fingerprint.
    replay_mode: Optional[str] = field(default=None, compare=False)
    #: the :class:`~repro.telemetry.Tracer` that recorded this serve, when
    #: ``ServingConfig(telemetry=...)`` was set; ``None`` otherwise.
    telemetry: Optional[Tracer] = field(default=None, repr=False, compare=False)
    #: contention aggregates from an interleaved serve with a *bounded*
    #: :class:`~repro.concurrency.ContentionConfig` (interference totals plus
    #: per-resource-class utilization/backlog peaks); ``None`` on serialized
    #: serves and on unbounded interleaved serves, so those keep their
    #: historical summary fingerprints byte-for-byte.
    concurrency_stats: Optional[Dict[str, object]] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        # sorted-latency memo: (record count, ascending latency array); the
        # count keys invalidation, since records only ever change by length.
        self._latency_memo: Optional[Tuple[int, np.ndarray]] = None

    # -- aggregates -----------------------------------------------------------

    @property
    def num_queries(self) -> int:
        return len(self.records)

    @property
    def total_samples(self) -> int:
        if self.columns is not None:
            return int(self.columns.samples.sum())
        return sum(record.samples for record in self.records)

    @property
    def cold_start_count(self) -> int:
        if self.columns is not None:
            return int(self.columns.cold.sum())
        return sum(record.cold_starts for record in self.records)

    @property
    def warm_start_count(self) -> int:
        if self.columns is not None:
            return int(self.columns.warm.sum())
        return sum(record.warm_starts for record in self.records)

    @property
    def coalesced_query_count(self) -> int:
        """Queries that executed inside a merged batch."""
        if self.columns is not None:
            return 0  # the fast path never runs under a coalescing policy
        return sum(1 for record in self.records if record.was_coalesced)

    @property
    def execution_count(self) -> int:
        """Backend executions performed (merged batches count once)."""
        if self.columns is not None:
            return len(self.records)
        groups = {record.coalesced_group for record in self.records if record.was_coalesced}
        solo = sum(1 for record in self.records if not record.was_coalesced)
        return solo + len(groups)

    @property
    def makespan_seconds(self) -> float:
        """From the first arrival to the last completion."""
        if not self.records:
            return 0.0
        if self.columns is not None:
            return float(self.columns.finished.max() - self.columns.arrival.min())
        first = min(record.arrival_time for record in self.records)
        last = max(record.finished_at for record in self.records)
        return last - first

    def _latency_values(self) -> np.ndarray:
        if self.columns is not None:
            return self.columns.latencies
        return np.asarray([record.latency_seconds for record in self.records])

    def sorted_latencies(self) -> np.ndarray:
        """Ascending end-to-end latencies, memoised across percentile calls.

        The memo is keyed on the record count -- records are append-only
        value objects, so a length match means the distribution is unchanged
        and re-sorting (the old per-call cost) can be skipped safely.
        """
        count = len(self.records)
        memo = self._latency_memo
        if memo is not None and memo[0] == count:
            return memo[1]
        values = np.sort(self._latency_values())
        self._latency_memo = (count, values)
        return values

    def latency_percentile(self, percentile: float) -> float:
        """Latency percentile over all records; ``nan`` for an empty report.

        An empty replay has no latency distribution -- returning ``0.0``
        would be indistinguishable from a real zero-latency fingerprint, so
        callers that may serve empty workloads must handle the ``nan``
        (:meth:`summary` maps it to ``None``).
        """
        if not self.records:
            return float("nan")
        return float(np.percentile(self.sorted_latencies(), percentile))

    @property
    def p50_latency_seconds(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p95_latency_seconds(self) -> float:
        return self.latency_percentile(95.0)

    @property
    def p99_latency_seconds(self) -> float:
        return self.latency_percentile(99.0)

    # -- reliability ----------------------------------------------------------

    @property
    def completed_count(self) -> int:
        if self.columns is not None:
            return len(self.records)  # the fast path only runs chaos-free
        return sum(1 for record in self.records if record.outcome == "completed")

    @property
    def failed_count(self) -> int:
        if self.columns is not None:
            return 0
        return sum(1 for record in self.records if record.outcome == "failed")

    @property
    def shed_count(self) -> int:
        if self.columns is not None:
            return 0
        return sum(1 for record in self.records if record.outcome == "shed")

    def outcome_counts(self) -> Dict[str, int]:
        """Stable completed/shed/failed breakdown (all keys always present)."""
        return {
            "completed": self.completed_count,
            "shed": self.shed_count,
            "failed": self.failed_count,
        }

    @property
    def availability(self) -> Optional[float]:
        """Fraction of queries that completed; ``None`` for an empty replay."""
        if not self.records:
            return None
        return self.completed_count / len(self.records)

    @property
    def goodput_queries_per_hour(self) -> Optional[float]:
        """Completed queries per hour of makespan; ``None`` when degenerate."""
        span = self.makespan_seconds
        if span <= 0:
            return None
        return self.completed_count / (span / 3600.0)

    @property
    def retry_count(self) -> int:
        """Serving-level re-dispatches performed across all queries."""
        if self.columns is not None:
            return 0
        return sum(max(0, record.attempts - 1) for record in self.records)

    def failure_reasons(self) -> Dict[str, int]:
        """Structured reasons of every non-success outcome, with counts."""
        reasons: Dict[str, int] = {}
        for record in self.records:
            if record.failure_reason is not None:
                reasons[record.failure_reason] = reasons.get(record.failure_reason, 0) + 1
        return dict(sorted(reasons.items()))

    def deadline_violation_count(self, deadline_seconds: float) -> int:
        """Queries shed or finishing later than ``deadline_seconds`` after arrival."""
        return sum(
            1
            for record in self.records
            if record.outcome == "shed" or record.latency_seconds > deadline_seconds
        )

    def records_by_neurons(self) -> Dict[int, List[QueryRecord]]:
        grouped: Dict[int, List[QueryRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.neurons, []).append(record)
        return grouped

    def mean_cost_per_query_by_neurons(self) -> Dict[int, float]:
        """Average measured per-query cost per model size (Figure-4 input)."""
        return {
            neurons: sum(record.cost for record in records) / len(records)
            for neurons, records in self.records_by_neurons().items()
        }

    def records_by_tenant(self) -> Dict[Optional[str], List[QueryRecord]]:
        """Records grouped by tenant provenance (``None`` = untagged)."""
        grouped: Dict[Optional[str], List[QueryRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.tenant, []).append(record)
        return grouped

    def by_tenant(self) -> Dict[Optional[str], Dict[str, object]]:
        """Per-tenant pivot: cost, p50/p95 latency and cold-start fraction.

        Mixture scenarios interleave several tenants' arrivals on one
        timeline; this recovers each tenant's aggregate view so per-tenant
        SLOs can be checked against one shared replay.  Untagged queries are
        grouped under ``None``.  Latency percentiles are ``None`` (not a fake
        ``0.0``) when a tenant somehow has no records, mirroring
        :meth:`latency_percentile`.
        """
        pivot: Dict[Optional[str], Dict[str, object]] = {}
        for tenant, records in self.records_by_tenant().items():
            latencies = np.asarray([record.latency_seconds for record in records])
            cold = sum(record.cold_starts for record in records)
            warm = sum(record.warm_starts for record in records)
            starts = cold + warm
            pivot[tenant] = {
                "num_queries": len(records),
                "total_samples": sum(record.samples for record in records),
                "cost_total": sum(record.cost for record in records),
                "p50_latency_seconds": float(np.percentile(latencies, 50.0)) if records else None,
                "p95_latency_seconds": float(np.percentile(latencies, 95.0)) if records else None,
                "cold_start_count": cold,
                "warm_start_count": warm,
                "cold_start_fraction": (cold / starts) if starts else None,
            }
        return pivot

    def summary(self) -> Dict[str, object]:
        """Flat, JSON-friendly aggregate view (benchmark fingerprints).

        With no policies configured the keys and values are identical to the
        pre-policy serving layer; policy runs add a ``"policies"`` tag (and
        coalescing counters) so their fingerprints are never mistaken for
        policy-free ones.
        """

        def percentile_or_none(percentile: float) -> Optional[float]:
            value = self.latency_percentile(percentile)
            return None if math.isnan(value) else value

        summary: Dict[str, object] = {
            "backend": self.backend,
            "num_queries": self.num_queries,
            "total_samples": self.total_samples,
            "cost_total": self.cost.total,
            "p50_latency_seconds": percentile_or_none(50.0),
            "p95_latency_seconds": percentile_or_none(95.0),
            "p99_latency_seconds": percentile_or_none(99.0),
            "makespan_seconds": self.makespan_seconds,
            "cold_start_count": self.cold_start_count,
            "warm_start_count": self.warm_start_count,
            "peak_concurrent_queries": self.peak_concurrent_queries,
            "peak_concurrent_workers": self.peak_concurrent_workers,
        }
        if self.config.policies:
            summary["policies"] = [policy.describe() for policy in self.config.policies]
            summary["coalesced_query_count"] = self.coalesced_query_count
            summary["execution_count"] = self.execution_count
        # Fluid replays are approximate by construction: tag them so their
        # fingerprints can never shadow an exact one.  Exact and columnar
        # replays add nothing, keeping historical fingerprints bit-for-bit.
        if self.replay_mode == "fluid":
            summary["replay_mode"] = "fluid"
        # Tenant pivot only when the workload actually carries tenant tags, so
        # untagged workloads keep their historical fingerprints bit-for-bit.
        if self.columns is not None:
            has_tenants = self.columns.tenants is not None
        else:
            has_tenants = any(record.tenant is not None for record in self.records)
        if has_tenants:
            summary["tenants"] = {
                tenant if tenant is not None else "untagged": view
                for tenant, view in sorted(
                    self.by_tenant().items(), key=lambda item: (item[0] is None, item[0] or "")
                )
            }
        # Outcome breakdown only when some query did not complete (mirrors the
        # tenants-key rule: all-success replays keep historical fingerprints).
        if self.columns is None and any(
            record.outcome != "completed" for record in self.records
        ):
            summary["outcome_counts"] = self.outcome_counts()
        # Reliability block only on chaos-enabled serves.
        if self.config.chaos is not None:
            chaos_summary: Dict[str, object] = {
                "config": self.config.chaos.describe(),
                "availability": self.availability,
                "goodput_queries_per_hour": self.goodput_queries_per_hour,
                "retry_count": self.retry_count,
                "channel_retries": self.channel_stats.retries,
                "outcome_counts": self.outcome_counts(),
                "failure_reasons": self.failure_reasons(),
                "fault_counts": dict(sorted(self.fault_counts.items())),
            }
            deadline = self.config.chaos.deadline_seconds
            if deadline is not None:
                violations = self.deadline_violation_count(deadline)
                chaos_summary["deadline_violation_count"] = violations
                chaos_summary["deadline_violation_rate"] = (
                    violations / len(self.records) if self.records else None
                )
            summary["chaos"] = chaos_summary
        # Contention block only when an interleaved serve actually ran with a
        # bounded contention config -- unbounded interleaved serves add
        # nothing, by the byte-identity contract.
        if self.concurrency_stats is not None:
            summary["concurrency"] = self.concurrency_stats
        # Telemetry digest only on traced serves, so telemetry-off replays
        # keep every historical fingerprint byte-for-byte.
        if self.telemetry is not None:
            summary["telemetry"] = self.telemetry.summary()
        return summary

    def critical_path(self, query_id: int) -> List[Dict[str, object]]:
        """Per-query latency breakdown (queue/attempt/backoff/tail segments).

        Requires the serve to have been traced
        (``ServingConfig(telemetry=...)``); raises :class:`ValueError` when
        no trace was recorded.  Returns ``[]`` for an unknown query id.
        """
        if self.telemetry is None:
            raise ValueError(
                "no trace recorded: serve with ServingConfig(telemetry=TelemetryConfig())"
            )
        return _trace_critical_path(self.telemetry, query_id)


def _split_cost(total: float, queries: Tuple[InferenceQuery, ...]) -> List[float]:
    """Split an aborted-attempt cost over a unit's queries, by sample share.

    Same attribution rule as :func:`~repro.serving.backends.split_batch_outcome`:
    proportional to samples with the last query absorbing the floating-point
    remainder, so the shares sum exactly to ``total``.
    """
    if total == 0.0:
        return [0.0] * len(queries)
    total_samples = sum(query.samples for query in queries)
    shares: List[float] = []
    remaining = total
    for index, query in enumerate(queries):
        if index == len(queries) - 1:
            share = remaining
        elif total_samples > 0:
            share = total * query.samples / total_samples
        else:
            share = total / len(queries)
        remaining -= share
        shares.append(share)
    return shares


class InferenceServer:
    """Replays a sporadic workload through a backend on one shared timeline."""

    def __init__(self, backend: ServingBackend, config: Optional[ServingConfig] = None):
        self.backend = backend
        self.config = config or ServingConfig()

    def serve(self, workload: SporadicWorkload) -> ServingReport:
        """Replay every query of ``workload``.

        Dispatches to the vectorized replay core
        (:mod:`repro.serving.replaycore`) when the configuration opts in
        (``replay_mode`` other than ``"exact"``) *and* the event loop would
        degenerate to immediate admission -- no policies, no chaos, no
        concurrency bound.  Everything else (and the default) runs the exact
        event loop; chaos always does.
        """
        config = self.config
        if config.concurrency is not None:
            # Interleaved execution replaces the serialized loop wholesale;
            # imported lazily to keep repro.concurrency importable without
            # the serving layer.  Config validation already rejected chaos
            # and non-exact replay modes.
            from ..concurrency.interleave import interleaved_serve

            return interleaved_serve(self, workload)
        if (
            config.replay_mode != "exact"
            and config.chaos is None
            and not config.policies
            and config.max_concurrent_queries is None
        ):
            from . import replaycore

            if config.replay_mode == "fluid":
                report = replaycore.fluid_serve(self, workload)
            else:
                report = replaycore.columnar_serve(self, workload)
            if report is not None:
                return report
        return self._serve_exact(workload)

    def _serve_exact(self, workload: SporadicWorkload) -> ServingReport:
        """Replay every query of ``workload`` via the event loop.

        Events (completions, policy ticks, arrivals -- in that order at
        equal times) are drained from one heap.  Arrivals are either claimed
        by a policy (held for a coalescing window) or appended to the
        admission queue; after every event, as many queued units as the
        admission limit allows are executed at the current virtual time.
        Admission times are non-decreasing, so the FaaS warm pool observes a
        causally consistent request sequence.
        """
        chaos = self.config.chaos
        injector = None
        if chaos is not None:
            injector = chaos.build_injector(workload.horizon_seconds)
            self.backend.install_chaos(injector, chaos.channel_retry)
        # Telemetry mirrors the chaos mount: one tracer per serve, installed
        # on the backend's cloud before begin() so setup-phase channel ops
        # are captured too; every use below is gated on ``tracer is not
        # None`` so the untraced loop is byte-identical to before.
        tracer: Optional[Tracer] = None
        serve_span = None
        if self.config.telemetry is not None:
            tracer = self.config.telemetry.build_tracer()
            self.backend.install_telemetry(tracer)
            serve_span = tracer.begin_span(
                "serve", track="server", start=0.0, backend=self.backend.name
            )
        self.backend.begin(workload)
        # Tier-A outcome memoisation is opt-in and chaos is its hard
        # boundary: fault injection is time-positional, so a chaos serve
        # must re-simulate every execution.
        use_cache = self.config.outcome_cache and chaos is None
        if use_cache:
            self.backend.set_outcome_caching(True)
        policies = self.config.policies
        for policy in policies:
            policy.begin(workload)

        events: List[Tuple[float, int, int, Optional[InferenceQuery]]] = []
        seq = 0
        for query in workload.iter_trace():
            heapq.heappush(events, (query.arrival_time, _ARRIVAL, seq, query))
            seq += 1

        pending: Deque[Tuple[InferenceQuery, ...]] = deque()
        records: List[QueryRecord] = []
        channel_total = ChannelStats()
        in_flight = 0

        def current_limit() -> Optional[int]:
            limit = self.config.max_concurrent_queries
            for policy in policies:
                limit = policy.admission_limit(
                    limit, queue_depth=len(pending), in_flight=in_flight
                )
            return limit

        def run_resilient(unit: Tuple[InferenceQuery, ...], now: float) -> None:
            """Dispatch one unit under the chaos config: shed, retry, degrade.

            Whatever faults fire, the unit always ends as records with a
            structured outcome -- the serve loop itself never crashes.  A
            failed or completed dispatch occupies an admission slot until its
            completion event; a shed unit never takes a slot.
            """
            nonlocal in_flight, seq
            leader = unit[0]
            group = tuple(query.query_id for query in unit) if len(unit) > 1 else ()
            deadline = chaos.deadline_seconds

            if deadline is not None and now - leader.arrival_time > deadline:
                # Load shedding: the unit is already past its deadline before
                # dispatch, so drop it instead of burning backend capacity.
                for query in unit:
                    records.append(
                        QueryRecord(
                            query_id=query.query_id,
                            neurons=query.neurons,
                            samples=query.samples,
                            arrival_time=query.arrival_time,
                            started_at=now,
                            finished_at=now,
                            cost=0.0,
                            cold_starts=0,
                            warm_starts=0,
                            coalesced_group=group,
                            tenant=query.tenant,
                            outcome="shed",
                            attempts=0,
                            failure_reason="deadline_exceeded",
                        )
                    )
                if tracer is not None:
                    tracer.event(
                        "shed",
                        track="server",
                        t=now,
                        query_id=leader.query_id,
                        reason="deadline_exceeded",
                    )
                    for query in unit:
                        tracer.record_span(
                            "query",
                            track="queries",
                            start=query.arrival_time,
                            end=now,
                            parent=serve_span,
                            query_id=query.query_id,
                            neurons=query.neurons,
                            samples=query.samples,
                            outcome="shed",
                            attempts=0,
                        )
                return

            retry = chaos.retry
            attempt = 1
            dispatch_at = now
            aborted_cost = 0.0
            outcomes = None
            error: Optional[CloudError] = None
            while True:
                token = self.backend.attempt_begin()
                try:
                    outcomes = self.backend.execute_batch(list(unit), at_time=dispatch_at)
                    break
                except CloudError as caught:
                    # The aborted attempt's bills stay in the ledger; surface
                    # them on the records too (partial billing).
                    aborted_cost += self.backend.attempt_abort(token)
                    error = caught
                    if tracer is not None:
                        tracer.event(
                            "fault",
                            track="server",
                            t=dispatch_at,
                            query_id=leader.query_id,
                            error=type(caught).__name__,
                            attempt=attempt,
                        )
                    retry_at = None
                    if retry is not None and retry.should_retry(caught, attempt):
                        candidate = dispatch_at + retry.backoff_seconds(
                            attempt, token=leader.query_id
                        )
                        # Don't re-dispatch past the deadline: the retried
                        # query could never finish in time anyway.
                        if deadline is None or candidate - leader.arrival_time <= deadline:
                            retry_at = candidate
                    if retry_at is None:
                        break
                    if tracer is not None:
                        tracer.event(
                            "retry",
                            track="server",
                            t=retry_at,
                            query_id=leader.query_id,
                            attempt=attempt + 1,
                        )
                    dispatch_at = retry_at
                    attempt += 1

            shares = _split_cost(aborted_cost, unit)
            if outcomes is None:
                # Permanent failure: record it with the partial billing and
                # let the slot go through the normal completion event.
                assert error is not None
                reason = type(error).__name__
                for query, share in zip(unit, shares):
                    records.append(
                        QueryRecord(
                            query_id=query.query_id,
                            neurons=query.neurons,
                            samples=query.samples,
                            arrival_time=query.arrival_time,
                            started_at=now,
                            finished_at=dispatch_at,
                            cost=share,
                            cold_starts=0,
                            warm_starts=0,
                            coalesced_group=group,
                            tenant=query.tenant,
                            outcome="failed",
                            attempts=attempt,
                            failure_reason=reason,
                        )
                    )
                if tracer is not None:
                    for query in unit:
                        tracer.record_span(
                            "query",
                            track="queries",
                            start=query.arrival_time,
                            end=dispatch_at,
                            parent=serve_span,
                            query_id=query.query_id,
                            neurons=query.neurons,
                            samples=query.samples,
                            outcome="failed",
                            attempts=attempt,
                            failure_reason=reason,
                        )
                in_flight += 1
                heapq.heappush(events, (dispatch_at, _COMPLETION, seq, None))
                seq += 1
                return

            finished = dispatch_at + outcomes[0].latency_seconds
            for query, outcome, share in zip(unit, outcomes, shares):
                if outcome.channel_stats is not None:
                    channel_total.accumulate(outcome.channel_stats)
                records.append(
                    QueryRecord(
                        query_id=query.query_id,
                        neurons=query.neurons,
                        samples=query.samples,
                        arrival_time=query.arrival_time,
                        started_at=now,
                        finished_at=dispatch_at + outcome.latency_seconds,
                        cost=outcome.cost + share,
                        cold_starts=outcome.cold_starts,
                        warm_starts=outcome.warm_starts,
                        coalesced_group=group,
                        tenant=query.tenant,
                        outcome="completed",
                        attempts=attempt,
                    )
                )
            if tracer is not None:
                for query, outcome in zip(unit, outcomes):
                    query_span = tracer.record_span(
                        "query",
                        track="queries",
                        start=query.arrival_time,
                        end=dispatch_at + outcome.latency_seconds,
                        parent=serve_span,
                        query_id=query.query_id,
                        neurons=query.neurons,
                        samples=query.samples,
                        outcome="completed",
                        attempts=attempt,
                    )
                    tracer.record_span(
                        "attempt",
                        track="queries",
                        start=dispatch_at,
                        end=dispatch_at + outcome.latency_seconds,
                        parent=query_span,
                        attempt=attempt,
                        cold_starts=outcome.cold_starts,
                        warm_starts=outcome.warm_starts,
                    )
            in_flight += 1
            heapq.heappush(events, (finished, _COMPLETION, seq, None))
            seq += 1

        def admit(now: float) -> None:
            nonlocal in_flight, seq
            while pending:
                limit = current_limit()
                if limit is not None and in_flight >= limit:
                    break
                unit = pending.popleft()
                if chaos is not None:
                    run_resilient(unit, now)
                    continue
                outcomes = self.backend.execute_batch(list(unit), at_time=now)
                finished = now + outcomes[0].latency_seconds
                group = tuple(query.query_id for query in unit) if len(unit) > 1 else ()
                if tracer is not None and len(unit) > 1:
                    tracer.event(
                        "coalesced",
                        track="server",
                        t=now,
                        group=list(group),
                    )
                for query, outcome in zip(unit, outcomes):
                    if outcome.channel_stats is not None:
                        channel_total.accumulate(outcome.channel_stats)
                    records.append(
                        QueryRecord(
                            query_id=query.query_id,
                            neurons=query.neurons,
                            samples=query.samples,
                            arrival_time=query.arrival_time,
                            started_at=now,
                            finished_at=now + outcome.latency_seconds,
                            cost=outcome.cost,
                            cold_starts=outcome.cold_starts,
                            warm_starts=outcome.warm_starts,
                            coalesced_group=group,
                            tenant=query.tenant,
                        )
                    )
                    if tracer is not None:
                        query_span = tracer.record_span(
                            "query",
                            track="queries",
                            start=query.arrival_time,
                            end=now + outcome.latency_seconds,
                            parent=serve_span,
                            query_id=query.query_id,
                            neurons=query.neurons,
                            samples=query.samples,
                            outcome="completed",
                            attempts=1,
                        )
                        tracer.record_span(
                            "attempt",
                            track="queries",
                            start=now,
                            end=now + outcome.latency_seconds,
                            parent=query_span,
                            attempt=1,
                            cold_starts=outcome.cold_starts,
                            warm_starts=outcome.warm_starts,
                        )
                in_flight += 1
                heapq.heappush(events, (finished, _COMPLETION, seq, None))
                seq += 1

        try:
            while events:
                now, kind, _, payload = heapq.heappop(events)
                if kind == _ARRIVAL:
                    assert payload is not None
                    decision = None
                    for policy in policies:
                        decision = policy.on_arrival(payload, now)
                        if decision is not None:
                            break
                    if decision is None:
                        pending.append((payload,))
                    elif decision.tick_at is not None:
                        heapq.heappush(events, (decision.tick_at, _POLICY_TICK, seq, None))
                        seq += 1
                elif kind == _COMPLETION:
                    in_flight -= 1
                    for policy in policies:
                        policy.on_completion(
                            now, in_flight=in_flight, queue_depth=len(pending)
                        )
                else:  # policy tick
                    for policy in policies:
                        for unit in policy.on_tick(now):
                            if unit:
                                pending.append(tuple(unit))
                admit(now)
                if tracer is not None:
                    tracer.gauge_sample("server.queue_depth", float(len(pending)), now)
                    tracer.gauge_sample("server.in_flight", float(in_flight), now)

            cost = self.backend.finish()
        finally:
            if use_cache:
                self.backend.set_outcome_caching(False)
        if chaos is not None:
            self.backend.clear_chaos()
        if tracer is not None:
            serve_end = max((record.finished_at for record in records), default=0.0)
            tracer.end_span(serve_span, serve_end)
            self.backend.clear_telemetry()
        return ServingReport(
            backend=self.backend.name,
            config=self.config,
            horizon_seconds=workload.horizon_seconds,
            records=records,
            cost=cost,
            peak_concurrent_queries=peak_overlap(
                (record.started_at, record.finished_at) for record in records
            ),
            peak_concurrent_workers=peak_overlap(self.backend.worker_intervals()),
            channel_stats=channel_total,
            fault_counts=dict(injector.injected_counts) if injector is not None else {},
            telemetry=tracer,
        )

"""Declarative, picklable construction of backends and policy sets.

Two consumers need to build serving-layer objects from *plain data* instead
of ad-hoc closures:

* the deployment planner (:mod:`repro.planner`) searches a (backend x policy
  knob) space where every candidate's policy configuration is a serialized
  knob dict -- :func:`policies_from_knobs` is the one place that vocabulary
  is interpreted; and
* process-pool campaigns (``Campaign.run(executor="process")``) must pickle
  the cell dispatch, which rules out lambda factories -- the ``*BackendSpec``
  dataclasses below are named top-level callables that construct a fresh
  backend (with a private :class:`~repro.cloud.CloudEnvironment`) per call,
  so a campaign built from specs ships to worker processes unchanged.

The knob vocabulary (all keys optional; unknown keys are rejected):

========================================  =====================================
key                                       meaning
========================================  =====================================
``coalesce_window_seconds``               :class:`BatchCoalescingPolicy` window;
                                          absent or ``<= 0`` means no batching
                                          (a zero window is byte-identical to
                                          no policy, so none is constructed)
``coalesce_max_batch_queries``            cap on queries per merged batch
``coalesce_max_hold_seconds``             SLO cap on the leader's hold
``autoscale_max_limit``                   :class:`QueueDepthAutoscaler` upper
                                          limit; absent or ``None`` means no
                                          autoscaler
``autoscale_min_limit``                   autoscaler lower limit (default 1)
``autoscale_queries_per_slot``            queue depth per extra slot (default 2)
``autoscale_scale_down_lag_ticks``        scale-down hysteresis (default 0)
========================================  =====================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Optional, Tuple

from ..baselines import ServerMode
from ..cloud import CloudEnvironment, LatencyModel
from ..core import EngineConfig, Variant
from ..partitioning import HypergraphPartitioner
from .backends import (
    EndpointServingBackend,
    FSDServingBackend,
    HPCServingBackend,
    QueryWorkloadFactory,
    ServerServingBackend,
    ServingBackend,
)
from .policies import BatchCoalescingPolicy, QueueDepthAutoscaler, SchedulingPolicy

__all__ = [
    "KNOWN_POLICY_KNOBS",
    "compute_scaled_latency",
    "policies_from_knobs",
    "PolicySetSpec",
    "FSDBackendSpec",
    "ServerBackendSpec",
    "EndpointBackendSpec",
    "HPCBackendSpec",
]

#: every knob key :func:`policies_from_knobs` understands.
KNOWN_POLICY_KNOBS = frozenset(
    {
        "coalesce_window_seconds",
        "coalesce_max_batch_queries",
        "coalesce_max_hold_seconds",
        "autoscale_max_limit",
        "autoscale_min_limit",
        "autoscale_queries_per_slot",
        "autoscale_scale_down_lag_ticks",
    }
)


def policies_from_knobs(knobs: Mapping[str, object]) -> Tuple[SchedulingPolicy, ...]:
    """Build the scheduling-policy tuple a serialized knob dict describes.

    The mapping is *total*: every reachable knob combination maps to a valid
    policy tuple, and the degenerate values (zero coalescing window, ``None``
    autoscale limit) map to *no policy at all* rather than a policy in its
    identity configuration -- so a candidate with all knobs at their neutral
    values replays byte-identically to a policy-free serve (same summary,
    same fingerprint, no ``policies`` tag).
    """
    unknown = set(knobs) - KNOWN_POLICY_KNOBS
    if unknown:
        raise ValueError(
            f"unknown policy knobs {sorted(unknown)}; known knobs: "
            f"{sorted(KNOWN_POLICY_KNOBS)}"
        )
    policies: list[SchedulingPolicy] = []
    window = knobs.get("coalesce_window_seconds")
    if window is not None and float(window) > 0.0:
        policies.append(
            BatchCoalescingPolicy(
                window_seconds=float(window),
                max_batch_queries=_maybe_int(knobs.get("coalesce_max_batch_queries")),
                max_hold_seconds=_maybe_float(knobs.get("coalesce_max_hold_seconds")),
            )
        )
    max_limit = knobs.get("autoscale_max_limit")
    if max_limit is not None:
        policies.append(
            QueueDepthAutoscaler(
                min_limit=int(knobs.get("autoscale_min_limit", 1)),
                max_limit=int(max_limit),
                queries_per_slot=int(knobs.get("autoscale_queries_per_slot", 2)),
                scale_down_lag_ticks=int(knobs.get("autoscale_scale_down_lag_ticks", 0)),
            )
        )
    return tuple(policies)


def _maybe_int(value: object) -> Optional[int]:
    return None if value is None else int(value)  # type: ignore[arg-type]


def _maybe_float(value: object) -> Optional[float]:
    return None if value is None else float(value)  # type: ignore[arg-type]


@dataclass(frozen=True)
class PolicySetSpec:
    """A picklable policy-set factory: knob dict in, fresh policies out.

    Policies are stateful across one serve, so campaign policy-set factories
    must return *fresh* instances per call; this spec re-interprets its knobs
    on every call.  Knobs are stored as a sorted tuple of pairs so equal
    specs compare (and hash) equal regardless of construction order.
    """

    knobs: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        canonical = tuple(sorted(dict(self.knobs).items()))
        object.__setattr__(self, "knobs", canonical)
        policies_from_knobs(dict(canonical))  # validate eagerly

    @classmethod
    def from_knobs(cls, knobs: Mapping[str, object]) -> "PolicySetSpec":
        return cls(knobs=tuple(knobs.items()))

    @property
    def knob_dict(self) -> dict:
        return dict(self.knobs)

    def __call__(self) -> Tuple[SchedulingPolicy, ...]:
        return policies_from_knobs(self.knob_dict)


def compute_scaled_latency(compute_scale: Optional[float]) -> Optional[LatencyModel]:
    """A latency model with uniformly scaled compute throughputs.

    The benchmark harness's calibration trick (``benchmarks/common.py``
    delegates here): scaled-down workloads
    execute orders of magnitude less arithmetic than paper-scale ones, so
    scaling every platform's modelled per-core throughput by the same factor
    preserves the compute-to-communication ratio that decides where
    parallelism pays off.  ``None`` keeps the default model.
    """
    if compute_scale is None:
        return None
    base = LatencyModel()
    return replace(
        base,
        faas_flops_per_vcpu=base.faas_flops_per_vcpu * compute_scale,
        vm_flops_per_vcpu=base.vm_flops_per_vcpu * compute_scale,
        hpc_flops_per_core=base.hpc_flops_per_core * compute_scale,
        endpoint_flops_per_vcpu=base.endpoint_flops_per_vcpu * compute_scale,
    )


@dataclass(frozen=True)
class _WorkloadFactorySpec:
    """Shared :class:`QueryWorkloadFactory` parameters of the backend specs."""

    layers: int = 12
    nnz_per_row: Optional[int] = None
    model_seed: int = 7
    batch_seed: int = 11
    batch_density: float = 0.25
    #: uniform compute-throughput scale (``None`` = realistic throughputs).
    compute_scale: Optional[float] = None

    def _factory(self) -> QueryWorkloadFactory:
        return QueryWorkloadFactory(
            layers=self.layers,
            nnz_per_row=self.nnz_per_row,
            model_seed=self.model_seed,
            batch_seed=self.batch_seed,
            batch_density=self.batch_density,
        )

    def _cloud(self) -> CloudEnvironment:
        return CloudEnvironment(latency=compute_scaled_latency(self.compute_scale))


@dataclass(frozen=True)
class FSDBackendSpec(_WorkloadFactorySpec):
    """Named, picklable factory for :class:`FSDServingBackend`."""

    variant: str = Variant.QUEUE.value
    workers: int = 4
    worker_memory_mb: Optional[int] = None
    memory_overhead_mb: float = 0.0
    warm_keepalive_seconds: Optional[float] = 900.0
    partitioner_seed: int = 1

    def __post_init__(self) -> None:
        Variant(self.variant)  # validate eagerly; raises on unknown variants

    def __call__(self) -> ServingBackend:
        variant = Variant(self.variant)
        workers = 1 if variant is Variant.SERIAL else self.workers
        config = EngineConfig(
            variant=variant,
            workers=workers,
            worker_memory_mb=self.worker_memory_mb,
            memory_overhead_mb=self.memory_overhead_mb,
        )
        return FSDServingBackend(
            self._cloud(),
            self._factory(),
            config_for=lambda neurons: config,
            partitioner=HypergraphPartitioner(seed=self.partitioner_seed),
            warm_keepalive_seconds=self.warm_keepalive_seconds,
        )


@dataclass(frozen=True)
class ServerBackendSpec(_WorkloadFactorySpec):
    """Named, picklable factory for :class:`ServerServingBackend`."""

    mode: str = ServerMode.JOB_SCOPED.value
    instance_type: Optional[str] = None
    always_on_instances: int = 2

    def __post_init__(self) -> None:
        ServerMode(self.mode)

    def __call__(self) -> ServingBackend:
        return ServerServingBackend(
            self._cloud(),
            ServerMode(self.mode),
            self._factory(),
            instance_type=self.instance_type,
            always_on_instances=self.always_on_instances,
        )


@dataclass(frozen=True)
class EndpointBackendSpec(_WorkloadFactorySpec):
    """Named, picklable factory for :class:`EndpointServingBackend`."""

    def __call__(self) -> ServingBackend:
        return EndpointServingBackend(self._cloud(), self._factory())


@dataclass(frozen=True)
class HPCBackendSpec(_WorkloadFactorySpec):
    """Named, picklable factory for :class:`HPCServingBackend`."""

    ranks: int = 4
    partitioner_seed: int = 1

    def __call__(self) -> ServingBackend:
        return HPCServingBackend(
            self.ranks,
            self._factory(),
            latency=compute_scaled_latency(self.compute_scale),
            partitioner=HypergraphPartitioner(seed=self.partitioner_seed),
        )

"""Serving backends: one scheduler, interchangeable execution substrates.

The :class:`~repro.serving.server.InferenceServer` owns the shared timeline
(arrival replay, admission, concurrency bounds); a *backend* owns how a
single admitted query actually executes and what it costs.  Implementations
exist for every system the paper compares in its sporadic-workload analysis
(Section VI-C / Figure 4):

* :class:`FSDServingBackend` -- the FSD-Inference engine on the simulated
  serverless cloud, with per-model engine/plan/staging caches and warm
  execution-environment reuse across queries;
* :class:`ServerServingBackend` -- the Always-On and Job-Scoped EC2
  baselines;
* :class:`EndpointServingBackend` -- the managed serverless endpoint
  (Sage-SL-Inf);
* :class:`HPCServingBackend` -- the on-premise H-SpFF comparison point
  (latency only; the paper reports no cost for it).

Because every backend is driven by the identical scheduler, Figure-4-style
comparisons differ *only* in the execution substrate, never in arrival
handling.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from scipy import sparse

from ..baselines import (
    EndpointLimits,
    ServerMode,
    always_on_daily_cost,
    run_endpoint_query,
    run_hpc_query,
    run_server_query,
)
from ..cloud import CloudEnvironment, CostReport, LatencyModel
from ..comm import ChannelStats
from ..core import EngineConfig, FSDInference
from ..model import SparseDNN
from ..partitioning import HypergraphPartitioner, PartitionPlan, Partitioner
from ..workloads import (
    GraphChallengeConfig,
    InferenceQuery,
    SporadicWorkload,
    build_graph_challenge_model,
    generate_input_batch,
    merge_queries,
)
from .replaycore import OutcomeCacheMixin

__all__ = [
    "QueryWorkloadFactory",
    "QueryOutcome",
    "ServingBackend",
    "FSDServingBackend",
    "ServerServingBackend",
    "EndpointServingBackend",
    "HPCServingBackend",
    "split_batch_outcome",
]


class QueryWorkloadFactory:
    """Resolves an :class:`InferenceQuery` to the model and batch it runs over.

    A sporadic trace only names a neuron count and a sample count per query;
    the factory materialises (and caches) the concrete :class:`SparseDNN` per
    neuron count and the input batch per ``(neurons, samples)`` pair, so a
    day-long replay builds each model exactly once.  Custom builders let the
    benchmarks plug in their pre-built scaled workloads.
    """

    def __init__(
        self,
        model_builder: Optional[Callable[[int], SparseDNN]] = None,
        batch_builder: Optional[Callable[[int, int], sparse.csr_matrix]] = None,
        layers: int = 12,
        nnz_per_row: Optional[int] = None,
        model_seed: int = 7,
        batch_seed: int = 11,
        batch_density: float = 0.25,
    ):
        self._model_builder = model_builder or self._default_model
        self._batch_builder = batch_builder or self._default_batch
        self._layers = layers
        self._nnz_per_row = nnz_per_row
        self._model_seed = model_seed
        self._batch_seed = batch_seed
        self._batch_density = batch_density
        self._models: Dict[int, SparseDNN] = {}
        self._batches: Dict[Tuple[int, int], sparse.csr_matrix] = {}

    def _default_model(self, neurons: int) -> SparseDNN:
        nnz = self._nnz_per_row or min(32, max(8, neurons // 32))
        config = GraphChallengeConfig(
            neurons=neurons,
            layers=self._layers,
            nnz_per_row=nnz,
            num_communities=max(16, neurons // 32),
            seed=self._model_seed,
        )
        return build_graph_challenge_model(config)

    def _default_batch(self, neurons: int, samples: int) -> sparse.csr_matrix:
        return generate_input_batch(
            neurons, samples=samples, density=self._batch_density, seed=self._batch_seed
        )

    def model_for(self, neurons: int) -> SparseDNN:
        if neurons not in self._models:
            self._models[neurons] = self._model_builder(neurons)
        return self._models[neurons]

    def batch_for(self, query: InferenceQuery) -> sparse.csr_matrix:
        key = (query.neurons, query.samples)
        if key not in self._batches:
            self._batches[key] = self._batch_builder(query.neurons, query.samples)
        return self._batches[key]


@dataclass(frozen=True)
class QueryOutcome:
    """What one admitted query produced on a backend."""

    latency_seconds: float
    cost: float
    cold_starts: int = 0
    warm_starts: int = 0
    channel_stats: Optional[ChannelStats] = None
    #: backend-native result object (e.g. :class:`InferenceResult`).
    result: Any = None


def split_batch_outcome(
    outcome: QueryOutcome, queries: Sequence[InferenceQuery]
) -> List[QueryOutcome]:
    """Attribute a merged-batch outcome back onto its constituent queries.

    Every query observes the merged latency (the batch finishes as one
    inference); the cost is split proportionally to each query's sample
    count with the last query absorbing the floating-point remainder, so the
    per-query costs sum exactly to the batch cost.  Cold/warm starts, channel
    stats and the backend-native result describe the single merged execution,
    so they are attributed once -- to the first query -- to keep report
    aggregates equal to what actually happened on the platform.
    """
    total_samples = sum(query.samples for query in queries)
    outcomes: List[QueryOutcome] = []
    remaining_cost = outcome.cost
    for index, query in enumerate(queries):
        last = index == len(queries) - 1
        if last:
            share = remaining_cost
        elif total_samples > 0:
            share = outcome.cost * query.samples / total_samples
        else:
            # Degenerate all-empty batch: split the fixed charges evenly.
            share = outcome.cost / len(queries)
        remaining_cost -= share
        outcomes.append(
            replace(
                outcome,
                cost=share,
                cold_starts=outcome.cold_starts if index == 0 else 0,
                warm_starts=outcome.warm_starts if index == 0 else 0,
                channel_stats=outcome.channel_stats if index == 0 else None,
                result=outcome.result if index == 0 else None,
            )
        )
    return outcomes


class ServingBackend(ABC):
    """Execution substrate driven by the :class:`InferenceServer` scheduler."""

    name: str = "backend"
    factory: QueryWorkloadFactory
    #: True on backends mixing in Tier-A outcome memoisation
    #: (:class:`~repro.serving.replaycore.OutcomeCacheMixin`).
    supports_outcome_cache: bool = False

    def begin(self, workload: SporadicWorkload) -> None:
        """Called once before replay starts (checkpoints, standing bills)."""

    def set_outcome_caching(self, enabled: bool) -> None:
        """Toggle Tier-A outcome memoisation (no-op without the mixin)."""

    # -- chaos hooks ---------------------------------------------------------
    #
    # Backends running on a simulated cloud (``self.cloud``) arm/disarm that
    # environment's fault domain; substrate-free backends (HPC) are no-ops.

    def install_chaos(self, injector: Any, channel_retry: Any = None) -> None:
        """Arm the backend's cloud environment with a fault injector."""
        cloud = getattr(self, "cloud", None)
        if cloud is not None:
            cloud.install_chaos(injector, channel_retry)

    def clear_chaos(self) -> None:
        """Disarm fault injection on the backend's cloud environment."""
        cloud = getattr(self, "cloud", None)
        if cloud is not None:
            cloud.clear_chaos()

    # -- telemetry hooks -----------------------------------------------------
    #
    # Same shape as the chaos hooks: backends running on a simulated cloud
    # arm/disarm that environment's telemetry domain; substrate-free
    # backends (HPC) are no-ops and still trace at the server level.

    def install_telemetry(self, tracer: Any) -> None:
        """Arm the backend's cloud environment with a tracer."""
        cloud = getattr(self, "cloud", None)
        if cloud is not None:
            cloud.install_telemetry(tracer)

    def clear_telemetry(self) -> None:
        """Disarm telemetry on the backend's cloud environment."""
        cloud = getattr(self, "cloud", None)
        if cloud is not None:
            cloud.clear_telemetry()

    # -- contention hooks ----------------------------------------------------
    #
    # Same shape again: the interleaved serve loop mounts an op collector
    # around each unit's solo execution so the fair-share arbiter can stretch
    # overlapping timelines afterwards.  Substrate-free backends (HPC)
    # collect nothing and interleave without contention.

    def install_contention(self, collector: Any) -> None:
        """Arm the backend's cloud environment with a contention op collector."""
        cloud = getattr(self, "cloud", None)
        if cloud is not None:
            cloud.install_contention(collector)

    def clear_contention(self) -> None:
        """Disarm contention collection on the backend's cloud environment."""
        cloud = getattr(self, "cloud", None)
        if cloud is not None:
            cloud.clear_contention()

    def attempt_begin(self) -> Any:
        """Snapshot backend state before a dispatch that may fail mid-flight."""
        cloud = getattr(self, "cloud", None)
        return cloud.billing_checkpoint() if cloud is not None else None

    def attempt_abort(self, token: Any) -> float:
        """Recover after a failed dispatch; returns the cost it billed.

        The aborted attempt's charges stay in the ledger (a preempted
        invocation is still billed up to its kill time); the return value
        lets the scheduler surface that partial billing on the query record.
        """
        cloud = getattr(self, "cloud", None)
        if cloud is None or token is None:
            return 0.0
        return cloud.report_since(token).total

    @abstractmethod
    def _execute(
        self,
        query: InferenceQuery,
        model: SparseDNN,
        batch: sparse.csr_matrix,
        at_time: float,
    ) -> QueryOutcome:
        """Run the resolved ``(model, batch)`` starting at ``at_time``."""

    def execute(self, query: InferenceQuery, at_time: float) -> QueryOutcome:
        """Run ``query`` starting at ``at_time`` on the shared timeline."""
        model = self.factory.model_for(query.neurons)
        batch = self.factory.batch_for(query)
        return self._execute(query, model, batch, at_time)

    def execute_batch(
        self, queries: Sequence[InferenceQuery], at_time: float
    ) -> List[QueryOutcome]:
        """Run several same-model queries as one merged inference.

        The per-query factory batches are stacked along the sample axis
        (batches are ``(neurons, samples)``, so samples concatenate as
        columns), one inference runs over the merged batch, and the outcome
        is split back per query via :func:`split_batch_outcome`.  A
        single-query batch is exactly :meth:`execute`.
        """
        if not queries:
            raise ValueError("execute_batch needs at least one query")
        if len(queries) == 1:
            return [self.execute(queries[0], at_time)]
        merged = merge_queries(queries)
        model = self.factory.model_for(merged.neurons)
        batch = sparse.hstack(
            [self.factory.batch_for(query) for query in queries], format="csr"
        )
        outcome = self._execute(merged, model, batch, at_time)
        return split_batch_outcome(outcome, queries)

    def finish(self) -> CostReport:
        """Called once after replay; returns the cost scoped to this serve."""
        return CostReport()

    def worker_intervals(self) -> List[Tuple[float, float]]:
        """(start, end) spans of backend compute units active during the serve."""
        return []


class FSDServingBackend(OutcomeCacheMixin, ServingBackend):
    """FSD-Inference on the shared simulated cloud.

    Engines, partition plans and staged payloads are cached per neuron
    count, so only the first query of each model size pays planning; the
    FaaS warm pool (time-gated via ``warm_keepalive_seconds``) decides
    cold/warm starts from the actual gaps between invocations.  With the
    outcome cache enabled, whole executions replay from recorded deltas
    when their cold/warm claim pattern reproduces on the live pool
    (``cache_claims``).
    """

    cache_claims = True

    def __init__(
        self,
        cloud: CloudEnvironment,
        factory: Optional[QueryWorkloadFactory] = None,
        config_for: Optional[Callable[[int], EngineConfig]] = None,
        partitioner: Optional[Partitioner] = None,
        plan_for: Optional[Callable[[int, SparseDNN], PartitionPlan]] = None,
        warm_keepalive_seconds: Optional[float] = 900.0,
    ):
        self.cloud = cloud
        self.warm_keepalive_seconds = warm_keepalive_seconds
        self.factory = factory or QueryWorkloadFactory()
        self._config_for = config_for or (lambda neurons: EngineConfig())
        self._partitioner = partitioner or HypergraphPartitioner(seed=1)
        self._plan_for = plan_for
        self._engines: Dict[int, FSDInference] = {}
        self._plans: Dict[int, PartitionPlan] = {}
        self._ledger_checkpoint = 0
        self._records_checkpoint = 0
        self._saved_keepalive: Optional[float] = None
        self.name = "fsd"

    def _engine_for(self, neurons: int) -> FSDInference:
        if neurons not in self._engines:
            self._engines[neurons] = FSDInference(self.cloud, self._config_for(neurons))
        return self._engines[neurons]

    def _plan(self, neurons: int, model: SparseDNN, engine: FSDInference) -> PartitionPlan:
        if neurons not in self._plans:
            if self._plan_for is not None:
                self._plans[neurons] = self._plan_for(neurons, model)
            else:
                self._plans[neurons] = engine.partition(model, self._partitioner)
        return self._plans[neurons]

    def begin(self, workload: SporadicWorkload) -> None:
        self._ledger_checkpoint = self.cloud.billing_checkpoint()
        self._records_checkpoint = len(self.cloud.faas.invocation_records)
        # Opt the platform into time-gated warm reuse for the duration of the
        # serve: on a shared timeline a "warm" start only makes sense if an
        # environment actually sat idle for less than the keepalive.  A
        # keepalive the caller configured on the platform itself wins; the
        # previous setting is restored by :meth:`finish`, so direct
        # single-query ``infer`` calls outside a serve keep the legacy rule.
        self._saved_keepalive = self.cloud.faas.warm_keepalive_seconds
        if self.warm_keepalive_seconds is not None and self._saved_keepalive is None:
            self.cloud.faas.warm_keepalive_seconds = self.warm_keepalive_seconds

    def _execute_real(
        self,
        query: InferenceQuery,
        model: SparseDNN,
        batch: sparse.csr_matrix,
        at_time: float,
    ) -> QueryOutcome:
        engine = self._engine_for(query.neurons)
        if engine.config.variant.is_distributed:
            plan = self._plan(query.neurons, model, engine)
            result = engine.infer(model, batch, plan, at_time=at_time)
        else:
            result = engine.infer(model, batch, at_time=at_time)
        cold = sum(1 for worker in result.metrics.per_worker if worker.cold_start)
        warm = len(result.metrics.per_worker) - cold
        return QueryOutcome(
            latency_seconds=result.latency_seconds,
            cost=result.cost.total,
            cold_starts=cold,
            warm_starts=warm,
            channel_stats=result.channel_stats,
            result=result,
        )

    def attempt_begin(self) -> Any:
        return (self.cloud.billing_checkpoint(), self.cloud.faas.active_invocations)

    def attempt_abort(self, token: Any) -> float:
        """Release resources a crashed dispatch left behind on the engine.

        A dispatch failing mid-query (e.g. a worker invocation preempted
        before its siblings finished) leaves invocations counted as active
        and undelivered messages in the per-worker queues; both would corrupt
        every subsequent dispatch.  Clamp the concurrency count back to the
        pre-dispatch snapshot and purge the queues, then report what the
        attempt billed.
        """
        checkpoint, active_before = token
        self.cloud.faas.abandon_active_invocations(active_before)
        for name in self.cloud.queues.list_queues():
            self.cloud.queues.get_queue(name).purge()
        return self.cloud.report_since(checkpoint).total

    def finish(self) -> CostReport:
        self.cloud.faas.warm_keepalive_seconds = self._saved_keepalive
        return self.cloud.report_since(self._ledger_checkpoint)

    def worker_intervals(self) -> List[Tuple[float, float]]:
        records = self.cloud.faas.invocation_records[self._records_checkpoint:]
        return [(record.started_at, record.finished_at) for record in records]


class ServerServingBackend(OutcomeCacheMixin, ServingBackend):
    """The server baselines behind the shared scheduler.

    Job-scoped mode provisions (and bills) an instance per query; the
    always-on modes bill the standing fleet for the workload horizon once in
    :meth:`begin`, exactly like the paper's flat Figure-4 line.
    """

    def __init__(
        self,
        cloud: CloudEnvironment,
        mode: ServerMode,
        factory: Optional[QueryWorkloadFactory] = None,
        instance_type: Optional[str] = None,
        always_on_instances: int = 2,
    ):
        self.cloud = cloud
        self.mode = mode
        self.factory = factory or QueryWorkloadFactory()
        self.instance_type = instance_type
        self.always_on_instances = always_on_instances
        self._ledger_checkpoint = 0
        self._intervals: List[Tuple[float, float]] = []
        self.name = f"server-{mode.value}"

    def begin(self, workload: SporadicWorkload) -> None:
        self._ledger_checkpoint = self.cloud.billing_checkpoint()
        self._intervals = []
        if self.mode is not ServerMode.JOB_SCOPED:
            fleet_kwargs = {}
            if self.instance_type is not None:
                fleet_kwargs["instance_type"] = self.instance_type
            always_on_daily_cost(
                self.cloud,
                instances=self.always_on_instances,
                hours=workload.horizon_seconds / 3600.0,
                **fleet_kwargs,
            )

    def _on_cached_outcome(self, outcome: QueryOutcome, at_time: float) -> None:
        self._intervals.append((at_time, at_time + outcome.latency_seconds))

    def _execute_real(
        self,
        query: InferenceQuery,
        model: SparseDNN,
        batch: sparse.csr_matrix,
        at_time: float,
    ) -> QueryOutcome:
        result = run_server_query(
            self.cloud, model, batch, self.mode, self.instance_type, at_time=at_time
        )
        self._intervals.append((at_time, at_time + result.latency_seconds))
        # Cold means a fresh instance was actually booted for this query
        # (what run_server_query did), not merely that the model was not hot:
        # always-on-cold fleets reload the model but the instance was already
        # provisioned, so their queries are warm starts.
        cold = 1 if result.provisioned else 0
        return QueryOutcome(
            latency_seconds=result.latency_seconds,
            cost=result.cost,
            cold_starts=cold,
            warm_starts=1 - cold,
            result=result,
        )

    def finish(self) -> CostReport:
        return self.cloud.report_since(self._ledger_checkpoint)

    def worker_intervals(self) -> List[Tuple[float, float]]:
        return list(self._intervals)


class EndpointServingBackend(OutcomeCacheMixin, ServingBackend):
    """The managed serverless endpoint behind the shared scheduler."""

    def __init__(
        self,
        cloud: CloudEnvironment,
        factory: Optional[QueryWorkloadFactory] = None,
        limits: Optional[EndpointLimits] = None,
    ):
        self.cloud = cloud
        self.factory = factory or QueryWorkloadFactory()
        self.limits = limits
        self._ledger_checkpoint = 0
        self._intervals: List[Tuple[float, float]] = []
        self.name = "endpoint"

    def begin(self, workload: SporadicWorkload) -> None:
        self._ledger_checkpoint = self.cloud.billing_checkpoint()
        self._intervals = []

    def _on_cached_outcome(self, outcome: QueryOutcome, at_time: float) -> None:
        self._intervals.append((at_time, at_time + outcome.latency_seconds))

    def _execute_real(
        self,
        query: InferenceQuery,
        model: SparseDNN,
        batch: sparse.csr_matrix,
        at_time: float,
    ) -> QueryOutcome:
        result = run_endpoint_query(self.cloud, model, batch, self.limits, at_time=at_time)
        self._intervals.append((at_time, at_time + result.latency_seconds))
        return QueryOutcome(
            latency_seconds=result.latency_seconds,
            cost=result.cost,
            cold_starts=result.requests,
            result=result,
        )

    def finish(self) -> CostReport:
        return self.cloud.report_since(self._ledger_checkpoint)

    def worker_intervals(self) -> List[Tuple[float, float]]:
        return list(self._intervals)


class HPCServingBackend(OutcomeCacheMixin, ServingBackend):
    """H-SpFF on the shared scheduler (latency only; the paper has no cost)."""

    def __init__(
        self,
        ranks: int,
        factory: Optional[QueryWorkloadFactory] = None,
        latency: Optional[LatencyModel] = None,
        partitioner: Optional[Partitioner] = None,
    ):
        self.ranks = ranks
        self.factory = factory or QueryWorkloadFactory()
        self.latency = latency
        self._partitioner = partitioner or HypergraphPartitioner(seed=1)
        self._plans: Dict[int, PartitionPlan] = {}
        self._intervals: List[Tuple[float, float]] = []
        self.name = f"hpc-{ranks}"

    def begin(self, workload: SporadicWorkload) -> None:
        self._intervals = []

    def _on_cached_outcome(self, outcome: QueryOutcome, at_time: float) -> None:
        self._intervals.append((at_time, at_time + outcome.latency_seconds))

    def _execute_real(
        self,
        query: InferenceQuery,
        model: SparseDNN,
        batch: sparse.csr_matrix,
        at_time: float,
    ) -> QueryOutcome:
        plan = None
        if self.ranks > 1:
            if query.neurons not in self._plans:
                self._plans[query.neurons] = self._partitioner.partition(model, self.ranks)
            plan = self._plans[query.neurons]
        result = run_hpc_query(model, batch, self.ranks, latency=self.latency, plan=plan)
        self._intervals.append((at_time, at_time + result.latency_seconds))
        return QueryOutcome(latency_seconds=result.latency_seconds, cost=0.0, result=result)

    def worker_intervals(self) -> List[Tuple[float, float]]:
        return list(self._intervals)
